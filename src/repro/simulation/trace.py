"""Execution traces (Gantt charts) for debugging and examples.

The engine optionally records every firing as a :class:`TraceEntry`;
:func:`format_gantt` renders a compact textual Gantt chart per processor,
which the examples print and the tests use to assert mutual exclusion on
processors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List


@dataclass(frozen=True)
class TraceEntry:
    """One firing: who ran where, and when."""

    processor: str
    application: str
    actor: str
    start: float
    end: float

    @property
    def label(self) -> str:
        return f"{self.application}.{self.actor}"


def assert_mutual_exclusion(trace: Iterable[TraceEntry]) -> None:
    """Raise AssertionError when two firings overlap on one processor.

    Used by the test suite as a structural invariant of the engine: a
    non-preemptive processor executes at most one actor at a time.
    """
    by_processor: Dict[str, List[TraceEntry]] = {}
    for entry in trace:
        by_processor.setdefault(entry.processor, []).append(entry)
    for processor, entries in by_processor.items():
        entries.sort(key=lambda e: (e.start, e.end))
        for previous, current in zip(entries, entries[1:]):
            if current.start < previous.end - 1e-9:
                raise AssertionError(
                    f"processor {processor}: {current.label} starts at "
                    f"{current.start} before {previous.label} ends at "
                    f"{previous.end}"
                )


def format_gantt(
    trace: Iterable[TraceEntry],
    time_limit: float | None = None,
    width: int = 72,
) -> str:
    """Render the trace as one text lane per processor.

    Each lane shows firings as ``[label)`` segments scaled to ``width``
    characters.  Only intended for small examples; long traces should be
    truncated with ``time_limit``.
    """
    entries = [
        e for e in trace if time_limit is None or e.start < time_limit
    ]
    if not entries:
        return "(empty trace)"
    horizon = time_limit if time_limit is not None else max(
        e.end for e in entries
    )
    scale = width / horizon
    lanes: Dict[str, List[TraceEntry]] = {}
    for entry in entries:
        lanes.setdefault(entry.processor, []).append(entry)
    lines = []
    for processor in sorted(lanes):
        lane = [" "] * width
        for entry in sorted(lanes[processor], key=lambda e: e.start):
            start_col = min(width - 1, int(entry.start * scale))
            end_col = min(width, max(start_col + 1, int(entry.end * scale)))
            label = entry.label[: end_col - start_col]
            for i in range(start_col, end_col):
                lane[i] = "#"
            for i, ch in enumerate(label):
                lane[start_col + i] = ch
        lines.append(f"{processor:>8} |{''.join(lane)}|")
    lines.append(f"{'time':>8} |0{' ' * (width - 2)}{horizon:g}|")
    return "\n".join(lines)
