"""Optional numba-compiled stepping loop (the ``jit`` engine flavour).

Enabled by ``REPRO_SIM_JIT=1`` (see :data:`repro.simulation.engine.
JIT_ENV_VAR`) when numba — the ``jit`` packaging extra — is importable.
The kernel reproduces :mod:`repro.simulation.fastcore` on bare numpy
arrays in nopython-compatible style: a manual binary heap over
``(time, seq)``, CSR channel/membership tables, fixed-slot per-processor
queues, and a ``touched`` bitmask iterated in ascending processor order
(identical to CPython small-int set order, which is why the flavour is
gated to platforms with at most eight processors).

Everything below the ``run_jit`` wrapper is plain Python over numpy
arrays, so the kernel also runs *interpreted* — the differential suite
exercises it that way even when numba is not installed.  When numba is
available the module-level helpers are rebound to their ``njit``
versions before first use.

Gating (``jit_supported``): default :class:`TimeModel` only (no RNG in
nopython mode), no trace recording, ``target_iterations`` set, at most
eight processors.  Unsupported configurations silently use the ``numpy``
flavour; fixed-capacity overflows inside the kernel likewise fall back.
All flavours stay byte-identical.
"""

from __future__ import annotations

import time as _time
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import AnalysisError, DeadlockError
from repro.simulation.metrics import (
    EngineStats,
    SimulationResult,
    WaitingStatistics,
    metrics_from_completions,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simulation.engine import Simulator

try:  # pragma: no cover - exercised only with the jit extra installed
    import numba
except ImportError:  # pragma: no cover - the container default
    numba = None

_compiled = False

# ctr slots shared by the kernel helpers.
_EV = 0  # events allocated (== next sequence number)
_HLEN = 1  # heap length
_EVENTS = 2  # events dispatched
_STALE = 3  # stale (invalidated) events skipped
_PREEMPT = 4  # preemptions performed
_LEFT = 5  # applications still short of the target
_STATUS = 6  # 0 ok, 1 completions overflow, 3 bad duration, 4 max events
_BAD = 7  # actor id for status 3


def jit_available() -> bool:
    return numba is not None


def jit_supported(sim: "Simulator") -> bool:
    """Whether ``sim`` can run on the compiled kernel."""
    config = sim.config
    from repro.simulation.engine import TimeModel

    return (
        numba is not None
        and (config.time_model is None or type(config.time_model) is TimeModel)
        and not config.record_trace
        and config.target_iterations is not None
        and len(sim._members) <= 8
    )


def _heap_push(h_time, h_seq, ctr, t, s):
    i = ctr[_HLEN]
    ctr[_HLEN] = i + 1
    h_time[i] = t
    h_seq[i] = s
    while i > 0:
        parent = (i - 1) >> 1
        pt = h_time[parent]
        if pt < t or (pt == t and h_seq[parent] < s):
            break
        h_time[i] = pt
        h_seq[i] = h_seq[parent]
        i = parent
    h_time[i] = t
    h_seq[i] = s


def _heap_pop(h_time, h_seq, ctr):
    top_t = h_time[0]
    top_s = h_seq[0]
    last = ctr[_HLEN] - 1
    ctr[_HLEN] = last
    if last > 0:
        t = h_time[last]
        s = h_seq[last]
        i = 0
        half = last >> 1
        while i < half:
            child = 2 * i + 1
            right = child + 1
            if right < last and (
                h_time[right] < h_time[child]
                or (
                    h_time[right] == h_time[child]
                    and h_seq[right] < h_seq[child]
                )
            ):
                child = right
            ct = h_time[child]
            if t < ct or (t == ct and s < h_seq[child]):
                break
            h_time[i] = ct
            h_seq[i] = h_seq[child]
            i = child
        h_time[i] = t
        h_seq[i] = s
    return top_t, top_s


def _qinsert(q_k1, q_k2, q_k3, q_aid, q_len, base, p, k1, k2, k3, aid):
    """Sorted insert of ``(k1, k2, k3)`` into processor ``p``'s slots."""
    lo = q_len[p]
    while lo > 0:
        j = base + lo - 1
        a = q_k1[j]
        if a < k1:
            break
        if a == k1:
            b = q_k2[j]
            if b < k2:
                break
            if b == k2 and q_k3[j] <= k3:
                break
        q_k1[j + 1] = a
        q_k2[j + 1] = q_k2[j]
        q_k3[j + 1] = q_k3[j]
        q_aid[j + 1] = q_aid[j]
        lo -= 1
    q_k1[base + lo] = k1
    q_k2[base + lo] = k2
    q_k3[base + lo] = k3
    q_aid[base + lo] = aid
    q_len[p] = q_len[p] + 1


def _enqueue(aid, now, policy, prio, rank_of, proc_of,
             q_k1, q_k2, q_k3, q_aid, q_len, mem_ptr,
             in_q, qcount):
    p = proc_of[aid]
    if policy == 0:
        _qinsert(
            q_k1, q_k2, q_k3, q_aid, q_len, mem_ptr[p], p,
            now, float(aid), 0.0, aid,
        )
    elif policy == 3:
        _qinsert(
            q_k1, q_k2, q_k3, q_aid, q_len, mem_ptr[p], p,
            -prio[aid], float(rank_of[aid]), 0.0, aid,
        )
    elif policy == 4:
        _qinsert(
            q_k1, q_k2, q_k3, q_aid, q_len, mem_ptr[p], p,
            -prio[aid], now, float(aid), aid,
        )
    else:
        if not in_q[aid]:
            in_q[aid] = 1
            qcount[p] += 1


def _start_proc(tp, now, policy,
                q_k1, q_k2, q_k3, q_aid, q_len,
                mem_ptr, mem_ids, in_q, qcount, position, credit, weight,
                state, busy, running, request_time,
                waiting_total, waiting_max, waiting_count,
                rem_flag, rem_val, tau, scheduled_end,
                in_ptr, in_cid, cons, tokens,
                busy_time, generation,
                ev_actor, ev_gen, h_time, h_seq, ctr):
    """Grant processor ``tp`` to its next queued actor, if any."""
    if busy[tp]:
        return 0
    aid = -1
    if policy == 0 or policy == 3 or policy == 4:
        if q_len[tp] > 0:
            base = mem_ptr[tp]
            aid = q_aid[base]
            left = q_len[tp] - 1
            q_len[tp] = left
            for j in range(left):
                q_k1[base + j] = q_k1[base + j + 1]
                q_k2[base + j] = q_k2[base + j + 1]
                q_k3[base + j] = q_k3[base + j + 1]
                q_aid[base + j] = q_aid[base + j + 1]
    elif qcount[tp] > 0:
        base = mem_ptr[tp]
        nm = mem_ptr[tp + 1] - base
        if policy == 1:
            pos = position[tp]
            for off in range(nm):
                idx = pos + off
                if idx >= nm:
                    idx -= nm
                cand = mem_ids[base + idx]
                if in_q[cand]:
                    in_q[cand] = 0
                    qcount[tp] -= 1
                    idx += 1
                    position[tp] = idx if idx < nm else 0
                    aid = cand
                    break
        else:
            for _ in range(nm + 1):
                pos = position[tp]
                cand = mem_ids[base + pos]
                if credit[tp] > 0 and in_q[cand]:
                    in_q[cand] = 0
                    qcount[tp] -= 1
                    credit[tp] -= 1
                    if credit[tp] == 0:
                        pos += 1
                        if pos >= nm:
                            pos = 0
                        position[tp] = pos
                        credit[tp] = weight[mem_ids[base + pos]]
                    aid = cand
                    break
                pos += 1
                if pos >= nm:
                    pos = 0
                position[tp] = pos
                credit[tp] = weight[mem_ids[base + pos]]
    if aid < 0:
        return 0
    state[aid] = 2
    busy[tp] = 1
    running[tp] = aid
    waited = now - request_time[aid]
    waiting_total[aid] += waited
    if waited > waiting_max[aid]:
        waiting_max[aid] = waited
    if policy == 4 and rem_flag[aid]:
        duration = rem_val[aid]
        rem_flag[aid] = 0
    else:
        waiting_count[aid] += 1
        for j in range(in_ptr[aid], in_ptr[aid + 1]):
            cid = in_cid[j]
            tokens[cid] -= cons[cid]
        duration = tau[aid]
        if duration <= 0:
            ctr[_STATUS] = 3
            ctr[_BAD] = aid
            return 3
    end = now + duration
    busy_time[tp] += duration
    if policy == 4:
        scheduled_end[aid] = end
    seq = ctr[_EV]
    ctr[_EV] = seq + 1
    ev_actor[seq] = aid
    ev_gen[seq] = generation[aid]
    _heap_push(h_time, h_seq, ctr, end, seq)
    return 0


def _preempt(p2, now, policy, prio,
             q_k1, q_k2, q_k3, q_aid, q_len,
             mem_ptr, mem_ids, in_q, qcount, position, credit, weight,
             state, busy, running, request_time,
             waiting_total, waiting_max, waiting_count,
             rem_flag, rem_val, tau, scheduled_end,
             in_ptr, in_cid, cons, tokens,
             busy_time, generation,
             ev_actor, ev_gen, h_time, h_seq, ctr):
    """Preempt the actor running on ``p2`` if the queue head outranks it."""
    victim = running[p2]
    if q_len[p2] == 0 or -q_k1[mem_ptr[p2]] <= prio[victim]:
        return 0
    leftover = scheduled_end[victim] - now
    if leftover <= 0:
        return 0
    ctr[_PREEMPT] += 1
    generation[victim] += 1
    rem_flag[victim] = 1
    rem_val[victim] = leftover
    busy_time[p2] -= leftover
    state[victim] = 1
    request_time[victim] = now
    _qinsert(
        q_k1, q_k2, q_k3, q_aid, q_len, mem_ptr[p2], p2,
        -prio[victim], now, float(victim), victim,
    )
    busy[p2] = 0
    running[p2] = -1
    return _start_proc(
        p2, now, policy,
        q_k1, q_k2, q_k3, q_aid, q_len,
        mem_ptr, mem_ids, in_q, qcount, position, credit, weight,
        state, busy, running, request_time,
        waiting_total, waiting_max, waiting_count,
        rem_flag, rem_val, tau, scheduled_end,
        in_ptr, in_cid, cons, tokens,
        busy_time, generation,
        ev_actor, ev_gen, h_time, h_seq, ctr,
    )


def _step_kernel(policy, n, n_proc, n_apps,
                 tau, proc_of, app_of, quota, prio, weight,
                 in_ptr, in_cid, out_ptr, out_cid,
                 cons, prod, dst, tokens,
                 mem_ptr, mem_ids, rank_of,
                 app_ptr, app_actor,
                 target, horizon, max_events, comp_cap,
                 busy_time, waiting_total, waiting_max, waiting_count,
                 done, comp_count, comp_times, ctr, fstate):
    """The full stepping loop; scalar results return through ``ctr`` /
    ``fstate`` (``fstate[0]``: end time, ``fstate[1]``: 1.0 when the heap
    drained before the target — the deadlock case)."""
    state = np.zeros(n, np.uint8)
    busy = np.zeros(n_proc, np.uint8)
    running = np.full(n_proc, -1, np.int64)
    request_time = np.zeros(n, np.float64)
    generation = np.zeros(n, np.int64)
    rem_flag = np.zeros(n, np.uint8)
    rem_val = np.zeros(n, np.float64)
    scheduled_end = np.zeros(n, np.float64)

    q_k1 = np.zeros(n, np.float64)
    q_k2 = np.zeros(n, np.float64)
    q_k3 = np.zeros(n, np.float64)
    q_aid = np.zeros(n, np.int64)
    q_len = np.zeros(n_proc, np.int64)
    in_q = np.zeros(n, np.uint8)
    qcount = np.zeros(n_proc, np.int64)
    position = np.zeros(n_proc, np.int64)
    credit = np.zeros(n_proc, np.int64)
    for p in range(n_proc):
        if mem_ptr[p + 1] > mem_ptr[p]:
            credit[p] = weight[mem_ids[mem_ptr[p]]]

    fires = np.zeros(n, np.int64)
    iters = np.zeros(n, np.int64)
    app_min = np.zeros(n_apps, np.int64)
    app_at_min = np.zeros(n_apps, np.int64)
    for ai in range(n_apps):
        app_at_min[ai] = app_ptr[ai + 1] - app_ptr[ai]
    ctr[_LEFT] = n_apps

    cap = 1 << 16
    ev_actor = np.zeros(cap, np.int64)
    ev_gen = np.zeros(cap, np.int64)
    h_time = np.zeros(cap, np.float64)
    h_seq = np.zeros(cap, np.int64)

    # Priming at time zero; touched procs served in ascending order
    # (== CPython small-int set iteration order; n_proc <= 8 is gated).
    touched = 0
    for aid in range(n):
        ok = True
        for j in range(in_ptr[aid], in_ptr[aid + 1]):
            cid = in_cid[j]
            if tokens[cid] < cons[cid]:
                ok = False
                break
        if ok:
            state[aid] = 1
            _enqueue(aid, 0.0, policy, prio, rank_of, proc_of,
                     q_k1, q_k2, q_k3, q_aid, q_len, mem_ptr,
                     in_q, qcount)
            touched |= 1 << proc_of[aid]
    for p in range(n_proc):
        if touched & (1 << p):
            if _start_proc(
                p, 0.0, policy,
                q_k1, q_k2, q_k3, q_aid, q_len,
                mem_ptr, mem_ids, in_q, qcount, position, credit, weight,
                state, busy, running, request_time,
                waiting_total, waiting_max, waiting_count,
                rem_flag, rem_val, tau, scheduled_end,
                in_ptr, in_cid, cons, tokens,
                busy_time, generation,
                ev_actor, ev_gen, h_time, h_seq, ctr,
            ):
                return

    end_time = 0.0
    stop = False
    broke = False
    while ctr[_HLEN] > 0:
        # Grow the SoA calendar while a full service round still fits.
        if ctr[_EV] + n + n_proc + 2 >= cap:
            cap *= 2
            new_actor = np.zeros(cap, np.int64)
            new_actor[: ctr[_EV]] = ev_actor[: ctr[_EV]]
            ev_actor = new_actor
            new_gen = np.zeros(cap, np.int64)
            new_gen[: ctr[_EV]] = ev_gen[: ctr[_EV]]
            ev_gen = new_gen
            new_time = np.zeros(cap, np.float64)
            new_time[: ctr[_HLEN]] = h_time[: ctr[_HLEN]]
            h_time = new_time
            new_seq = np.zeros(cap, np.int64)
            new_seq[: ctr[_HLEN]] = h_seq[: ctr[_HLEN]]
            h_seq = new_seq
        now, seq = _heap_pop(h_time, h_seq, ctr)
        if now > horizon:
            broke = True
            break
        while True:
            ctr[_EVENTS] += 1
            if ctr[_EVENTS] > max_events:
                ctr[_STATUS] = 4
                return
            aid = ev_actor[seq]
            if policy == 4 and ev_gen[seq] != generation[aid]:
                ctr[_STALE] += 1
            else:
                end_time = now
                state[aid] = 0
                p = proc_of[aid]
                busy[p] = 0
                running[p] = -1
                f = fires[aid] + 1
                fires[aid] = f
                if f % quota[aid] == 0:
                    it = iters[aid] + 1
                    iters[aid] = it
                    ai = app_of[aid]
                    if it - 1 == app_min[ai]:
                        c = app_at_min[ai] - 1
                        if c:
                            app_at_min[ai] = c
                        else:
                            app_min[ai] = it
                            k = comp_count[ai]
                            if k >= comp_cap:
                                ctr[_STATUS] = 1
                                return
                            comp_times[ai, k] = now
                            comp_count[ai] = k + 1
                            c = 0
                            for j in range(app_ptr[ai], app_ptr[ai + 1]):
                                if iters[app_actor[j]] == it:
                                    c += 1
                            app_at_min[ai] = c
                            if not done[ai] and it >= target:
                                done[ai] = 1
                                ctr[_LEFT] -= 1
                                if ctr[_LEFT] == 0:
                                    stop = True
                                    break
                touched = 0
                for j in range(out_ptr[aid], out_ptr[aid + 1]):
                    cid = out_cid[j]
                    tokens[cid] += prod[cid]
                    d = dst[cid]
                    if state[d] == 0:
                        ok = True
                        for jj in range(in_ptr[d], in_ptr[d + 1]):
                            cid2 = in_cid[jj]
                            if tokens[cid2] < cons[cid2]:
                                ok = False
                                break
                        if ok:
                            state[d] = 1
                            request_time[d] = now
                            p2 = proc_of[d]
                            _enqueue(d, now, policy, prio, rank_of, proc_of,
                                     q_k1, q_k2, q_k3, q_aid, q_len, mem_ptr,
                                     in_q, qcount)
                            touched |= 1 << p2
                            if policy == 4 and busy[p2]:
                                if _preempt(
                                    p2, now, policy, prio,
                                    q_k1, q_k2, q_k3, q_aid, q_len,
                                    mem_ptr, mem_ids, in_q, qcount,
                                    position, credit, weight,
                                    state, busy, running, request_time,
                                    waiting_total, waiting_max,
                                    waiting_count,
                                    rem_flag, rem_val, tau, scheduled_end,
                                    in_ptr, in_cid, cons, tokens,
                                    busy_time, generation,
                                    ev_actor, ev_gen, h_time, h_seq, ctr,
                                ):
                                    return
                if state[aid] == 0:
                    ok = True
                    for jj in range(in_ptr[aid], in_ptr[aid + 1]):
                        cid2 = in_cid[jj]
                        if tokens[cid2] < cons[cid2]:
                            ok = False
                            break
                    if ok:
                        state[aid] = 1
                        request_time[aid] = now
                        _enqueue(aid, now, policy, prio, rank_of, proc_of,
                                 q_k1, q_k2, q_k3, q_aid, q_len, mem_ptr,
                                 in_q, qcount)
                        touched |= 1 << p
                        if policy == 4 and busy[p]:
                            if _preempt(
                                p, now, policy, prio,
                                q_k1, q_k2, q_k3, q_aid, q_len,
                                mem_ptr, mem_ids, in_q, qcount,
                                position, credit, weight,
                                state, busy, running, request_time,
                                waiting_total, waiting_max, waiting_count,
                                rem_flag, rem_val, tau, scheduled_end,
                                in_ptr, in_cid, cons, tokens,
                                busy_time, generation,
                                ev_actor, ev_gen, h_time, h_seq, ctr,
                            ):
                                return
                touched |= 1 << p
                for tp in range(n_proc):
                    if touched & (1 << tp):
                        if _start_proc(
                            tp, now, policy,
                            q_k1, q_k2, q_k3, q_aid, q_len,
                            mem_ptr, mem_ids, in_q, qcount,
                            position, credit, weight,
                            state, busy, running, request_time,
                            waiting_total, waiting_max, waiting_count,
                            rem_flag, rem_val, tau, scheduled_end,
                            in_ptr, in_cid, cons, tokens,
                            busy_time, generation,
                            ev_actor, ev_gen, h_time, h_seq, ctr,
                        ):
                            return
            if ctr[_HLEN] > 0 and h_time[0] == now:
                now, seq = _heap_pop(h_time, h_seq, ctr)
                continue
            break
        if stop:
            broke = True
            break
    fstate[0] = end_time
    if not broke and ctr[_LEFT] > 0:
        fstate[1] = 1.0


def _ensure_compiled() -> None:
    """Rebind the kernel helpers to their numba-compiled versions."""
    global _compiled, _heap_push, _heap_pop, _qinsert, _enqueue
    global _start_proc, _preempt, _step_kernel
    if _compiled or numba is None:
        _compiled = True
        return
    jit = numba.njit(cache=False)
    _heap_push = jit(_heap_push)
    _heap_pop = jit(_heap_pop)
    _qinsert = jit(_qinsert)
    _enqueue = jit(_enqueue)
    _start_proc = jit(_start_proc)
    _preempt = jit(_preempt)
    _step_kernel = jit(_step_kernel)
    _compiled = True


def run_jit(
    sim: "Simulator", _force_interpreted: bool = False
) -> Optional[SimulationResult]:
    """Run ``sim`` on the JIT kernel; None means "fall back to numpy".

    ``_force_interpreted`` runs the kernel uncompiled (test hook).
    """
    t_setup = _time.perf_counter()
    config = sim.config
    from repro.core.registry import ARBITERS
    from repro.simulation.fastcore import POLICY_CODES

    policy = POLICY_CODES[ARBITERS.get(config.arbitration).name]
    context = sim._arbiter_context()
    n = len(sim._app_of)
    n_proc = len(sim._members)
    n_apps = len(sim.graphs)
    prio_list = [context.priority_of(a) for a in range(n)]
    weight_list = [context.weight_of(a) for a in range(n)]
    if policy == 2:
        from repro.exceptions import MappingError
        from repro.wcrt.weighted_round_robin import validate_weights

        for member_list in sim._members:
            validate_weights(
                {a: weight_list[a] for a in member_list}, error=MappingError
            )

    tau = np.asarray(sim._tau, np.float64)
    proc_of = np.asarray(sim._proc_of, np.int64)
    prio = np.asarray(prio_list, np.float64)
    weight = np.asarray(weight_list, np.int64)
    n_chan = len(sim._chan_src)
    cons = np.asarray(sim._chan_cons, np.int64).reshape(n_chan)
    prod = np.asarray(sim._chan_prod, np.int64).reshape(n_chan)
    dst = np.asarray(sim._chan_dst, np.int64).reshape(n_chan)
    tokens = np.asarray(sim._chan_tokens, np.int64).reshape(n_chan)

    def csr(lists: List[List[int]]) -> Tuple[np.ndarray, np.ndarray]:
        ptr = np.zeros(len(lists) + 1, np.int64)
        flat: List[int] = []
        for i, items in enumerate(lists):
            flat.extend(items)
            ptr[i + 1] = len(flat)
        return ptr, np.asarray(flat, np.int64).reshape(len(flat))

    in_ptr, in_cid = csr(sim._in_channels)
    out_ptr, out_cid = csr(sim._out_channels)
    mem_ptr, mem_ids = csr(sim._members)
    rank_of = np.zeros(n, np.int64)
    for p in range(n_proc):
        for rank, aid in enumerate(sim._members[p]):
            rank_of[aid] = rank

    quota = np.zeros(n, np.int64)
    app_of = np.zeros(n, np.int64)
    app_lists: List[List[int]] = []
    for ai, graph in enumerate(sim.graphs):
        quotas = sim._trackers[graph.name]._quotas
        actors = []
        for actor in graph.actors:
            aid = sim._id_of[(graph.name, actor.name)]
            quota[aid] = quotas[actor.name]
            app_of[aid] = ai
            actors.append(aid)
        app_lists.append(actors)
    app_ptr, app_actor = csr(app_lists)

    target = int(config.target_iterations)
    horizon = np.inf if config.horizon is None else float(config.horizon)
    comp_cap = max(1024, 4 * target)

    busy_time = np.zeros(n_proc, np.float64)
    waiting_total = np.zeros(n, np.float64)
    waiting_max = np.zeros(n, np.float64)
    waiting_count = np.zeros(n, np.int64)
    done = np.zeros(n_apps, np.uint8)
    comp_count = np.zeros(n_apps, np.int64)
    comp_times = np.zeros((n_apps, comp_cap), np.float64)
    ctr = np.zeros(8, np.int64)
    fstate = np.zeros(2, np.float64)

    if not _force_interpreted:
        _ensure_compiled()
    t_step = _time.perf_counter()
    _step_kernel(
        policy, n, n_proc, n_apps,
        tau, proc_of, app_of, quota, prio, weight,
        in_ptr, in_cid, out_ptr, out_cid,
        cons, prod, dst, tokens,
        mem_ptr, mem_ids, rank_of,
        app_ptr, app_actor,
        target, horizon, int(config.max_events), comp_cap,
        busy_time, waiting_total, waiting_max, waiting_count,
        done, comp_count, comp_times, ctr, fstate,
    )
    t_collect = _time.perf_counter()

    status = int(ctr[_STATUS])
    if status == 1:
        return None  # completion buffer overflow: redo on fastcore
    if status == 3:
        aid = int(ctr[_BAD])
        duration = sim._tau[aid]
        raise AnalysisError(
            "time model produced a non-positive execution time "
            f"({duration}) for {sim._app_of[aid]}.{sim._name_of[aid]}"
        )
    if status == 4:
        raise AnalysisError(
            f"simulation exceeded {config.max_events} events; "
            "lower target_iterations or set a horizon"
        )
    if fstate[1]:
        stuck = [
            sim.graphs[ai].name for ai in range(n_apps) if not done[ai]
        ]
        raise DeadlockError(
            f"simulation ran out of events before applications "
            f"{stuck!r} reached {target} iterations"
        )

    end_time = float(fstate[0])
    metrics = {
        graph.name: metrics_from_completions(
            graph.name,
            [float(t) for t in comp_times[ai, : comp_count[ai]]],
            warmup_fraction=config.warmup_fraction,
        )
        for ai, graph in enumerate(sim.graphs)
    }
    processor_names = sim._processor_names
    utilization: Dict[str, float] = {}
    if end_time > 0:
        for p, pname in enumerate(processor_names):
            utilization[pname] = min(1.0, float(busy_time[p]) / end_time)
    else:  # pragma: no cover - zero-length run
        utilization = {pname: 0.0 for pname in processor_names}
    waiting: Dict[Tuple[str, str], WaitingStatistics] = {}
    for aid in range(n):
        count = int(waiting_count[aid])
        if not count:
            continue
        waiting[(sim._app_of[aid], sim._name_of[aid])] = WaitingStatistics(
            mean=float(waiting_total[aid]) / count,
            maximum=float(waiting_max[aid]),
            samples=count,
        )
    sim._last_stats = EngineStats(
        flavour="jit",
        events_dispatched=int(ctr[_EVENTS]),
        stale_events=int(ctr[_STALE]),
        preemptions=int(ctr[_PREEMPT]),
        phase_seconds={
            "setup": t_step - t_setup,
            "step": t_collect - t_step,
            "collect": _time.perf_counter() - t_collect,
        },
    )
    return SimulationResult(
        metrics=metrics,
        end_time=end_time,
        events_processed=int(ctr[_EVENTS]),
        trace=None,
        processor_utilization=utilization,
        waiting=waiting,
    )
