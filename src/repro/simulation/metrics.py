"""Measurement of application performance during simulation.

The paper's reference numbers are per-application *periods* (average time
per graph iteration, Definition 3) measured from long simulations, plus
the worst iteration observed ("Simulated Worst Case" in Figure 5).  An
iteration of application ``A`` completes when every actor ``a`` has
completed ``q(a)`` further firings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exceptions import AnalysisError


class IterationTracker:
    """Counts completed iterations of one application online.

    Firing completions stream in; the tracker maintains
    ``min_a floor(fires(a) / q(a))`` incrementally and records the
    completion time whenever the minimum advances.
    """

    def __init__(self, quotas: Dict[str, int]) -> None:
        if not quotas:
            raise AnalysisError("iteration tracker needs at least one actor")
        self._quotas = dict(quotas)
        self._fires: Dict[str, int] = {name: 0 for name in quotas}
        self.completion_times: List[float] = []

    def record_firing(self, actor: str, time: float) -> None:
        """Register a completed firing of ``actor`` at ``time``."""
        self._fires[actor] += 1
        completed = self.iterations_completed
        if completed > len(self.completion_times):
            # The minimum can only advance by one per firing of the
            # binding actor, but guard against quota-1 multi-advances.
            while len(self.completion_times) < completed:
                self.completion_times.append(time)

    @property
    def iterations_completed(self) -> int:
        return min(
            self._fires[name] // quota
            for name, quota in self._quotas.items()
        )


@dataclass
class ApplicationMetrics:
    """Steady-state performance of one application in one simulation.

    Attributes
    ----------
    application:
        Application name.
    iterations:
        Iterations completed over the whole run.
    average_period:
        Mean time per iteration over the measurement window (after
        ``warmup_iterations`` are discarded).
    worst_period:
        Longest single iteration in the measurement window — the
        "Simulated Worst Case" series of the paper's Figure 5.
    best_period:
        Shortest single iteration in the window (used by tests as a
        sanity lower bound).
    warmup_iterations:
        Iterations excluded from the window.
    """

    application: str
    iterations: int
    average_period: float
    worst_period: float
    best_period: float
    warmup_iterations: int

    @property
    def average_throughput(self) -> float:
        """Iterations per time unit (inverse period)."""
        return 1.0 / self.average_period


def metrics_from_completions(
    application: str,
    completion_times: List[float],
    warmup_fraction: float = 0.25,
    min_measured: int = 4,
) -> ApplicationMetrics:
    """Summarize iteration completion times into steady-state metrics.

    The first ``warmup_fraction`` of iterations (at least one, to drop the
    time-zero transient) is excluded; at least ``min_measured``
    measured iterations are required for a meaningful average.
    """
    total = len(completion_times)
    if total < min_measured + 1:
        raise AnalysisError(
            f"application {application!r} completed only {total} "
            f"iterations; need at least {min_measured + 1} to measure a "
            "period (raise the horizon or iteration target)"
        )
    warmup = max(1, int(total * warmup_fraction))
    if total - warmup < min_measured:
        warmup = total - min_measured
    window = completion_times[warmup - 1:]
    # window[0] is the *end* of the last warmup iteration: it anchors the
    # measurement without contributing its own duration.
    gaps = [b - a for a, b in zip(window, window[1:])]
    pattern = _steady_pattern(gaps)
    if pattern is not None:
        # Deterministic self-timed execution is eventually periodic; when
        # the tail of the gap sequence repeats with cycle length L, the
        # exact steady-state period is the mean over one cycle.  This
        # removes the O(1/window) bias of endpoint averaging when the
        # window holds a non-integer number of cycles.
        average = sum(pattern) / len(pattern)
    else:
        average = (window[-1] - window[0]) / len(gaps)
    return ApplicationMetrics(
        application=application,
        iterations=total,
        average_period=average,
        worst_period=max(gaps),
        best_period=min(gaps),
        warmup_iterations=warmup,
    )


def _steady_pattern(
    gaps: List[float], tolerance: float = 1e-9
) -> Optional[List[float]]:
    """The repeating tail cycle of ``gaps``, or None.

    Looks for the smallest cycle length ``L`` whose last three
    repetitions match element-wise (two when the window only holds two).
    Matching three repetitions makes an accidental match in noisy
    (contended) gap sequences very unlikely.
    """
    n = len(gaps)
    for length in range(1, n // 2 + 1):
        repetitions = min(3, n // length)
        if repetitions < 2:
            break
        candidate = gaps[n - length:]
        matched = True
        for repetition in range(1, repetitions):
            offset = n - (repetition + 1) * length
            for i in range(length):
                if abs(gaps[offset + i] - candidate[i]) > tolerance * max(
                    1.0, abs(candidate[i])
                ):
                    matched = False
                    break
            if not matched:
                break
        if matched:
            return candidate
    return None


@dataclass
class EngineStats:
    """Lightweight profile of one engine run (``Simulator.stats()``).

    Counts are exact; ``phase_seconds`` holds wall time per phase
    (``setup``: flattening + arbitration tables, ``step``: priming and
    the event loop, ``collect``: metrics/result assembly).  Cheap enough
    to be always on — no cProfile needed to compare engine flavours.
    """

    flavour: str
    events_dispatched: int
    stale_events: int
    preemptions: int
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    def merge(self, other: "EngineStats") -> None:
        """Accumulate ``other`` into this record (for suite totals).

        Totals are only meaningful per engine flavour — pooling a numpy
        run into a python profile would silently misattribute phase
        times — so mixed-flavour merges are refused loudly.
        """
        if other.flavour != self.flavour:
            raise AnalysisError(
                f"cannot merge EngineStats of flavour {other.flavour!r} "
                f"into {self.flavour!r}; pool per-flavour profiles "
                "separately (profiles are keyed by the loop that ran)"
            )
        self.events_dispatched += other.events_dispatched
        self.stale_events += other.stale_events
        self.preemptions += other.preemptions
        for phase, seconds in other.phase_seconds.items():
            self.phase_seconds[phase] = (
                self.phase_seconds.get(phase, 0.0) + seconds
            )

    def format_table(self) -> str:
        lines = [
            f"{'flavour':>18}  {self.flavour}",
            f"{'events dispatched':>18}  {self.events_dispatched}",
            f"{'stale events':>18}  {self.stale_events}",
            f"{'preemptions':>18}  {self.preemptions}",
        ]
        total = sum(self.phase_seconds.values())
        for phase in sorted(self.phase_seconds):
            seconds = self.phase_seconds[phase]
            share = (100.0 * seconds / total) if total > 0 else 0.0
            lines.append(
                f"{'phase ' + phase:>18}  {seconds * 1e3:10.3f} ms"
                f"  ({share:5.1f}%)"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class WaitingStatistics:
    """Observed queueing delay of one actor over a simulation run.

    The empirical counterpart of the paper's estimated ``t_wait``: the
    time between an actor's request (tokens available) and its grant.
    """

    mean: float
    maximum: float
    samples: int


@dataclass
class SimulationResult:
    """Outcome of one multi-application simulation run.

    ``processor_utilization`` maps processor name to the fraction of the
    run it spent executing firings — the empirical counterpart of the
    summed blocking probabilities on the node.  ``waiting`` maps
    ``(application, actor)`` to observed queueing-delay statistics — the
    empirical counterpart of the estimated waiting times.
    """

    metrics: Dict[str, ApplicationMetrics]
    end_time: float
    events_processed: int
    trace: Optional[List] = None
    processor_utilization: Dict[str, float] = field(default_factory=dict)
    waiting: Dict[Tuple[str, str], "WaitingStatistics"] = field(
        default_factory=dict
    )

    def period_of(self, application: str) -> float:
        try:
            return self.metrics[application].average_period
        except KeyError:
            raise AnalysisError(
                f"no metrics recorded for application {application!r}"
            ) from None

    def throughput_of(self, application: str) -> float:
        return 1.0 / self.period_of(application)

    def worst_period_of(self, application: str) -> float:
        try:
            return self.metrics[application].worst_period
        except KeyError:
            raise AnalysisError(
                f"no metrics recorded for application {application!r}"
            ) from None
