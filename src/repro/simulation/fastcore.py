"""Flat structure-of-arrays (SoA) fast path of the DES engine.

This module is the ``numpy``-flavour stepping loop behind
:meth:`repro.simulation.engine.Simulator.run`.  It replays *exactly* the
semantics of the reference loop (``Simulator._run_reference``) on a flat
data layout and must stay byte-identical to it: traces, metrics, waiting
statistics, utilization, event counts and error messages are all
compared bit-for-bit by the differential test suite.

SoA event calendar — invariants
-------------------------------
* The heap holds bare ``(time, seq)`` 2-tuples; the per-event payload
  lives in append-only parallel lists ``ev_actor[seq]`` / ``ev_gen[seq]``
  indexed by the sequence number.  Sequence numbers are allocated in
  start order, so heap ties on ``time`` break exactly like the reference
  loop's ``(time, sequence, ...)`` tuples.
* Generation-counter invalidation is kept: preempting an actor bumps
  ``generation[actor]`` so its in-flight completion event goes stale and
  is skipped (and counted) on pop.  Non-preemptive policies never bump a
  generation and skip the bookkeeping entirely (``ev_gen`` stays empty).
* Stepping is event-horizon batched: all events that share the current
  timestamp are retired in one pass before the clock advances.  Because
  execution times are strictly positive, retiring an event can never
  schedule another event at the *same* timestamp, so the batch is closed
  under processing.  Within a batch, events retire strictly in sequence
  order — identical to the reference loop's one-at-a-time pops.
* Arbitration is dispatched on a precomputed integer policy code with
  per-processor flat queues (sorted lists for fcfs/priority flavours,
  membership bitmaps plus rotation cursors for the round-robin
  flavours); pick/enqueue outcomes are the same as the pluggable
  arbiter objects for every builtin policy.
* ``touched`` processor collections remain real Python ``set``s built
  with the reference loop's exact insertion sequence: set iteration
  order determines start order (and therefore sequence-number
  assignment) at shared timestamps, and for processor indices >= 8
  CPython's open addressing makes that order insertion-dependent, so no
  recomputed ordering (ascending, bitmask, ...) is byte-safe on larger
  platforms.  The JIT kernel *does* use an ascending bitmask, which is
  why it is additionally gated to platforms with at most eight
  processors — there every small-int index sits in its own slot and set
  order provably is ascending.

Only builtin arbitration policies are supported; the engine falls back
to the reference loop for third-party arbiters.
"""

from __future__ import annotations

import random
import time as _time
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.exceptions import AnalysisError, DeadlockError
from repro.simulation.metrics import (
    EngineStats,
    SimulationResult,
    WaitingStatistics,
    metrics_from_completions,
)
from repro.simulation.trace import TraceEntry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simulation.engine import Simulator

#: Integer dispatch codes for the builtin policies (canonical names).
POLICY_CODES: Dict[str, int] = {
    "fcfs": 0,
    "round_robin": 1,
    "weighted_round_robin": 2,
    "priority": 3,
    "priority_preemptive": 4,
}


def run_fast(sim: "Simulator", flavour: str = "numpy") -> SimulationResult:
    """Run ``sim`` on the flat SoA core; result matches the reference loop."""
    t_setup = _time.perf_counter()
    config = sim.config
    from repro.core.registry import ARBITERS

    policy = POLICY_CODES[ARBITERS.get(config.arbitration).name]
    preemptive = policy == 4

    rng = random.Random(config.seed)
    time_model = config.time_model
    if time_model is None:
        default_time = True
        sample = None
    else:
        from repro.simulation.engine import TimeModel

        # The base TimeModel returns the nominal time untouched, so the
        # tau lookup below is bit-identical and skips the call + RNG.
        default_time = type(time_model) is TimeModel
        sample = time_model.sample

    n = len(sim._app_of)
    n_proc = len(sim._members)
    app_str = sim._app_of
    name_of = sim._name_of
    tau = sim._tau
    proc_of = sim._proc_of
    context = sim._arbiter_context()
    prio = [context.priority_of(a) for a in range(n)]
    weight_of = [context.weight_of(a) for a in range(n)]
    if policy == 2:
        # Same per-member validation the arbiter constructor performs.
        from repro.exceptions import MappingError
        from repro.wcrt.weighted_round_robin import validate_weights

        for member_list in sim._members:
            validate_weights(
                {a: weight_of[a] for a in member_list}, error=MappingError
            )

    in_pairs: List[Tuple[Tuple[int, int], ...]] = [
        tuple((cid, sim._chan_cons[cid]) for cid in sim._in_channels[a])
        for a in range(n)
    ]
    out_trip: List[Tuple[Tuple[int, int, int], ...]] = [
        tuple(
            (cid, sim._chan_prod[cid], sim._chan_dst[cid])
            for cid in sim._out_channels[a]
        )
        for a in range(n)
    ]
    members = sim._members

    apps = [g.name for g in sim.graphs]
    n_apps = len(apps)
    quota = [0] * n
    app_of = [0] * n
    app_actors: List[List[int]] = [[] for _ in apps]
    for ai, graph in enumerate(sim.graphs):
        quotas = sim._trackers[graph.name]._quotas
        for actor in graph.actors:
            aid = sim._id_of[(graph.name, actor.name)]
            quota[aid] = quotas[actor.name]
            app_of[aid] = ai
            app_actors[ai].append(aid)

    tokens = list(sim._chan_tokens)
    # state: 0 = idle, 1 = queued, 2 = executing (reference loop's two
    # boolean arrays folded into one).
    state = [0] * n
    busy = [False] * n_proc
    running = [-1] * n_proc
    busy_time = [0.0] * n_proc
    request_time = [0.0] * n
    waiting_total = [0.0] * n
    waiting_max = [0.0] * n
    waiting_count = [0] * n
    generation = [0] * n
    remaining: List[Optional[float]] = [None] * n
    scheduled_end = [0.0] * n

    # Per-policy queues.  fcfs: (time, aid); priority: (-prio, rank,
    # aid) kept sorted so pop(0) is the arbiter's min(); preemptive:
    # (-prio, time, aid).  rr/wrr: in_q bitmap + per-proc counters.
    queues: List[List] = [[] for _ in range(n_proc)]
    in_q = [False] * n
    qcount = [0] * n_proc
    position = [0] * n_proc
    credit = [
        (weight_of[members[p][0]] if members[p] else 0) for p in range(n_proc)
    ]
    rank_of = [0] * n
    for p in range(n_proc):
        for rank, aid in enumerate(members[p]):
            rank_of[aid] = rank

    # O(1)-amortized iteration tracking: per-app minimum iteration count
    # plus how many actors currently sit at that minimum.
    fires = [0] * n
    iters = [0] * n
    app_min = [0] * n_apps
    app_at_min = [len(a) for a in app_actors]
    completion_times: List[List[float]] = [[] for _ in apps]
    target = config.target_iterations
    done = [False] * n_apps
    apps_left = n_apps

    heap: List[Tuple[float, int]] = []
    ev_actor: List[int] = []
    ev_gen: List[int] = []

    record = config.record_trace
    trace_slot = [-1] * n
    tr_aid: List[int] = []
    tr_start: List[float] = []
    tr_end: List[float] = []

    events = 0
    stale = 0
    preemptions = 0
    end_time = 0.0
    max_events = config.max_events
    horizon = config.horizon

    # ------------------------------------------------------------------
    def enqueue(aid: int, now: float) -> None:
        p = proc_of[aid]
        if policy == 0:
            q = queues[p]
            entry = (now, aid)
            lo = len(q)
            while lo > 0 and q[lo - 1] > entry:
                lo -= 1
            q.insert(lo, entry)
        elif policy == 3:
            q = queues[p]
            entry = (-prio[aid], rank_of[aid], aid)
            lo = len(q)
            while lo > 0 and q[lo - 1] > entry:
                lo -= 1
            q.insert(lo, entry)
        elif policy == 4:
            q = queues[p]
            entry = (-prio[aid], now, aid)
            lo = len(q)
            while lo > 0 and q[lo - 1] > entry:
                lo -= 1
            q.insert(lo, entry)
        else:  # round-robin flavours
            if not in_q[aid]:
                in_q[aid] = True
                qcount[p] += 1

    def pick(tp: int) -> int:
        """Remove and return the next actor for ``tp`` (or -1)."""
        if policy == 0:
            q = queues[tp]
            return q.pop(0)[1] if q else -1
        if policy == 3 or policy == 4:
            q = queues[tp]
            return q.pop(0)[2] if q else -1
        if not qcount[tp]:
            return -1
        ms = members[tp]
        nm = len(ms)
        if policy == 1:
            pos = position[tp]
            for off in range(nm):
                idx = pos + off
                if idx >= nm:
                    idx -= nm
                cand = ms[idx]
                if in_q[cand]:
                    in_q[cand] = False
                    qcount[tp] -= 1
                    idx += 1
                    position[tp] = idx if idx < nm else 0
                    return cand
            return -1  # pragma: no cover - queued subset of members
        for _ in range(nm + 1):
            pos = position[tp]
            cand = ms[pos]
            if credit[tp] > 0 and in_q[cand]:
                in_q[cand] = False
                qcount[tp] -= 1
                credit[tp] -= 1
                if credit[tp] == 0:
                    pos += 1
                    if pos >= nm:
                        pos = 0
                    position[tp] = pos
                    credit[tp] = weight_of[ms[pos]]
                return cand
            pos += 1
            if pos >= nm:
                pos = 0
            position[tp] = pos
            credit[tp] = weight_of[ms[pos]]
        return -1  # pragma: no cover - queued subset of members

    def start_next(tp: int, now: float) -> None:
        """Cold-path start (priming, post-preemption); the event loop
        inlines an identical block."""
        if busy[tp]:
            return
        aid = pick(tp)
        if aid < 0:
            return
        state[aid] = 2
        busy[tp] = True
        running[tp] = aid
        waited = now - request_time[aid]
        waiting_total[aid] += waited
        if waited > waiting_max[aid]:
            waiting_max[aid] = waited
        resumed_for = remaining[aid] if preemptive else None
        if resumed_for is not None:
            remaining[aid] = None
            duration = resumed_for
        else:
            waiting_count[aid] += 1
            for cid, cons in in_pairs[aid]:
                tokens[cid] -= cons
            if default_time:
                duration = tau[aid]
            else:
                duration = sample(app_str[aid], name_of[aid], tau[aid], rng)
            if duration <= 0:
                raise AnalysisError(
                    "time model produced a non-positive execution time "
                    f"({duration}) for {app_str[aid]}.{name_of[aid]}"
                )
        end = now + duration
        busy_time[tp] += duration
        if preemptive:
            scheduled_end[aid] = end
        seq = len(ev_actor)
        ev_actor.append(aid)
        if preemptive:
            ev_gen.append(generation[aid])
        heappush(heap, (end, seq))
        if record:
            trace_slot[aid] = len(tr_aid)
            tr_aid.append(aid)
            tr_start.append(now)
            tr_end.append(end)

    def do_preempt(p2: int, now: float) -> None:
        """Suspend the running actor of ``p2``; the caller has already
        checked that the queue head outranks it."""
        nonlocal preemptions
        victim = running[p2]
        q = queues[p2]
        leftover = scheduled_end[victim] - now
        if leftover <= 0:
            # Completion is due at this very instant; let it finish.
            return
        preemptions += 1
        generation[victim] += 1
        remaining[victim] = leftover
        busy_time[p2] -= leftover
        state[victim] = 1
        request_time[victim] = now
        entry = (-prio[victim], now, victim)
        lo = len(q)
        while lo > 0 and q[lo - 1] > entry:
            lo -= 1
        q.insert(lo, entry)
        busy[p2] = False
        running[p2] = -1
        if record:
            tr_end[trace_slot[victim]] = now
        start_next(p2, now)

    # ------------------------------------------------------------------
    t_step = _time.perf_counter()
    touched: set = set()
    for aid in range(n):
        if state[aid]:
            continue
        ok = True
        for cid, cons in in_pairs[aid]:
            if tokens[cid] < cons:
                ok = False
                break
        if ok:
            state[aid] = 1
            request_time[aid] = 0.0
            enqueue(aid, 0.0)
            touched.add(proc_of[aid])
    for p in touched:
        start_next(p, 0.0)

    negp = [-x for x in prio]
    stop = False
    broke = False
    hpush = heappush
    hpop = heappop
    ev_append = ev_actor.append
    gen_append = ev_gen.append
    tr_aid_append = tr_aid.append
    tr_start_append = tr_start.append
    tr_end_append = tr_end.append
    # Event times are finite, so an infinite sentinel makes the horizon
    # check branch-free when no horizon is configured.
    horizon_f = float("inf") if horizon is None else horizon
    while heap:
        now, seq = hpop(heap)
        if now > horizon_f:
            broke = True
            break
        while True:
            events += 1
            if events > max_events:
                raise AnalysisError(
                    f"simulation exceeded {max_events} events; "
                    "lower target_iterations or set a horizon"
                )
            aid = ev_actor[seq]
            if preemptive and ev_gen[seq] != generation[aid]:
                stale += 1
            else:
                end_time = now
                state[aid] = 0
                p = proc_of[aid]
                busy[p] = False
                running[p] = -1
                f = fires[aid] + 1
                fires[aid] = f
                if not f % quota[aid]:
                    it = iters[aid] + 1
                    iters[aid] = it
                    ai = app_of[aid]
                    if it - 1 == app_min[ai]:
                        c = app_at_min[ai] - 1
                        if c:
                            app_at_min[ai] = c
                        else:
                            app_min[ai] = it
                            completion_times[ai].append(now)
                            c = 0
                            for a2 in app_actors[ai]:
                                if iters[a2] == it:
                                    c += 1
                            app_at_min[ai] = c
                            if (
                                target is not None
                                and not done[ai]
                                and it >= target
                            ):
                                done[ai] = True
                                apps_left -= 1
                                if not apps_left:
                                    stop = True
                                    break
                # Token production + requests; enqueue is inlined per
                # policy — keep in lockstep with the closure above.
                touched = set()
                for cid, prod, dst in out_trip[aid]:
                    tokens[cid] += prod
                    if not state[dst]:
                        ok = True
                        for cid2, cons in in_pairs[dst]:
                            if tokens[cid2] < cons:
                                ok = False
                                break
                        if ok:
                            state[dst] = 1
                            request_time[dst] = now
                            p2 = proc_of[dst]
                            touched.add(p2)
                            if policy == 0:
                                q = queues[p2]
                                entry = (now, dst)
                                lo = len(q)
                                while lo > 0 and q[lo - 1] > entry:
                                    lo -= 1
                                q.insert(lo, entry)
                            elif policy == 3:
                                q = queues[p2]
                                entry = (negp[dst], rank_of[dst], dst)
                                lo = len(q)
                                while lo > 0 and q[lo - 1] > entry:
                                    lo -= 1
                                q.insert(lo, entry)
                            elif policy == 4:
                                q = queues[p2]
                                entry = (negp[dst], now, dst)
                                lo = len(q)
                                while lo > 0 and q[lo - 1] > entry:
                                    lo -= 1
                                q.insert(lo, entry)
                                if busy[p2] and q[0][0] < negp[running[p2]]:
                                    do_preempt(p2, now)
                            elif not in_q[dst]:
                                in_q[dst] = True
                                qcount[p2] += 1
                if not state[aid]:
                    ok = True
                    for cid2, cons in in_pairs[aid]:
                        if tokens[cid2] < cons:
                            ok = False
                            break
                    if ok:
                        state[aid] = 1
                        request_time[aid] = now
                        touched.add(p)
                        if policy == 0:
                            q = queues[p]
                            entry = (now, aid)
                            lo = len(q)
                            while lo > 0 and q[lo - 1] > entry:
                                lo -= 1
                            q.insert(lo, entry)
                        elif policy == 3:
                            q = queues[p]
                            entry = (negp[aid], rank_of[aid], aid)
                            lo = len(q)
                            while lo > 0 and q[lo - 1] > entry:
                                lo -= 1
                            q.insert(lo, entry)
                        elif policy == 4:
                            q = queues[p]
                            entry = (negp[aid], now, aid)
                            lo = len(q)
                            while lo > 0 and q[lo - 1] > entry:
                                lo -= 1
                            q.insert(lo, entry)
                            if busy[p] and q[0][0] < negp[running[p]]:
                                do_preempt(p, now)
                        elif not in_q[aid]:
                            in_q[aid] = True
                            qcount[p] += 1
                touched.add(p)
                # Inlined start_next (hot path) — keep in lockstep with
                # the closure above.
                for tp in touched:
                    if busy[tp]:
                        continue
                    if policy == 0:
                        q = queues[tp]
                        if not q:
                            continue
                        aid2 = q.pop(0)[1]
                    elif policy > 2:
                        q = queues[tp]
                        if not q:
                            continue
                        aid2 = q.pop(0)[2]
                    elif not qcount[tp]:
                        continue
                    elif policy == 1:
                        # qcount > 0 guarantees the rotation scan finds a
                        # queued member, so the walk needs no bound.
                        ms = members[tp]
                        nm = len(ms)
                        idx = position[tp]
                        while True:
                            aid2 = ms[idx]
                            idx += 1
                            if idx >= nm:
                                idx = 0
                            if in_q[aid2]:
                                in_q[aid2] = False
                                qcount[tp] -= 1
                                position[tp] = idx
                                break
                    else:
                        ms = members[tp]
                        nm = len(ms)
                        pos = position[tp]
                        cr = credit[tp]
                        while True:
                            aid2 = ms[pos]
                            if cr > 0 and in_q[aid2]:
                                in_q[aid2] = False
                                qcount[tp] -= 1
                                cr -= 1
                                if cr == 0:
                                    pos += 1
                                    if pos >= nm:
                                        pos = 0
                                    cr = weight_of[ms[pos]]
                                position[tp] = pos
                                credit[tp] = cr
                                break
                            pos += 1
                            if pos >= nm:
                                pos = 0
                            cr = weight_of[ms[pos]]
                    state[aid2] = 2
                    busy[tp] = True
                    running[tp] = aid2
                    waited = now - request_time[aid2]
                    waiting_total[aid2] += waited
                    if waited > waiting_max[aid2]:
                        waiting_max[aid2] = waited
                    if preemptive and remaining[aid2] is not None:
                        duration = remaining[aid2]
                        remaining[aid2] = None
                    else:
                        waiting_count[aid2] += 1
                        for cid2, cons in in_pairs[aid2]:
                            tokens[cid2] -= cons
                        if default_time:
                            duration = tau[aid2]
                        else:
                            duration = sample(
                                app_str[aid2], name_of[aid2], tau[aid2], rng
                            )
                        if duration <= 0:
                            raise AnalysisError(
                                "time model produced a non-positive "
                                f"execution time ({duration}) for "
                                f"{app_str[aid2]}.{name_of[aid2]}"
                            )
                    end = now + duration
                    busy_time[tp] += duration
                    if preemptive:
                        scheduled_end[aid2] = end
                    seq2 = len(ev_actor)
                    ev_append(aid2)
                    if preemptive:
                        gen_append(generation[aid2])
                    hpush(heap, (end, seq2))
                    if record:
                        trace_slot[aid2] = len(tr_aid)
                        tr_aid_append(aid2)
                        tr_start_append(now)
                        tr_end_append(end)
            if heap and heap[0][0] == now:
                seq = hpop(heap)[1]
                continue
            break
        if stop:
            broke = True
            break
    # The reference loop streams every firing into the per-application
    # IterationTrackers; the fast loop counts in flat arrays instead, so
    # rebuild the trackers' observable state before any late error can
    # surface — callers (and tests) inspect ``sim._trackers`` after
    # deadlocked or horizon-cut runs too.
    for ai in range(n_apps):
        tracker = sim._trackers[apps[ai]]
        for aid in app_actors[ai]:
            tracker._fires[name_of[aid]] = fires[aid]
        tracker.completion_times = list(completion_times[ai])

    if not broke and target is not None and apps_left:
        stuck = [apps[ai] for ai in range(n_apps) if not done[ai]]
        raise DeadlockError(
            f"simulation ran out of events before applications "
            f"{stuck!r} reached {target} iterations"
        )

    # ------------------------------------------------------------------
    t_collect = _time.perf_counter()
    metrics = {
        apps[ai]: metrics_from_completions(
            apps[ai],
            completion_times[ai],
            warmup_fraction=config.warmup_fraction,
        )
        for ai in range(n_apps)
    }
    processor_names = sim._processor_names
    utilization: Dict[str, float] = {}
    if end_time > 0:
        for p, pname in enumerate(processor_names):
            utilization[pname] = min(1.0, busy_time[p] / end_time)
    else:  # pragma: no cover - zero-length run
        utilization = {pname: 0.0 for pname in processor_names}
    waiting: Dict[Tuple[str, str], WaitingStatistics] = {}
    for aid in range(n):
        if not waiting_count[aid]:
            continue
        waiting[(app_str[aid], name_of[aid])] = WaitingStatistics(
            mean=waiting_total[aid] / waiting_count[aid],
            maximum=waiting_max[aid],
            samples=waiting_count[aid],
        )
    trace: Optional[List[TraceEntry]] = None
    if record:
        trace = [
            TraceEntry(
                processor=processor_names[proc_of[a]],
                application=app_str[a],
                actor=name_of[a],
                start=s,
                end=e,
            )
            for a, s, e in zip(tr_aid, tr_start, tr_end)
        ]
    t_done = _time.perf_counter()
    sim._last_stats = EngineStats(
        flavour=flavour,
        events_dispatched=events,
        stale_events=stale,
        preemptions=preemptions,
        phase_seconds={
            "setup": t_step - t_setup,
            "step": t_collect - t_step,
            "collect": t_done - t_collect,
        },
    )
    return SimulationResult(
        metrics=metrics,
        end_time=end_time,
        events_processed=events,
        trace=trace,
        processor_utilization=utilization,
        waiting=waiting,
    )
