"""Discrete-event simulation of concurrent SDF applications on shared
non-preemptive processors.

This package plays the role POOSL (reference [18]) plays in the paper: it
produces the *reference* performance numbers the probabilistic estimates
are judged against.  The engine executes every active application
self-timed; actors whose input tokens are available request their
processor and an :class:`~repro.simulation.arbiter.Arbiter` (FCFS by
default, matching the paper's contention model) decides who runs next.
"""

from repro.simulation.arbiter import (
    Arbiter,
    ArbiterContext,
    FCFSArbiter,
    PreemptivePriorityArbiter,
    PriorityArbiter,
    RoundRobinArbiter,
    WeightedRoundRobinArbiter,
    make_arbiter,
)
from repro.simulation.engine import (
    JIT_ENV_VAR,
    SimulationConfig,
    Simulator,
    simulate,
)
from repro.simulation.metrics import (
    ApplicationMetrics,
    EngineStats,
    SimulationResult,
)
from repro.simulation.trace import TraceEntry, format_gantt

__all__ = [
    "ApplicationMetrics",
    "EngineStats",
    "JIT_ENV_VAR",
    "Arbiter",
    "ArbiterContext",
    "FCFSArbiter",
    "PreemptivePriorityArbiter",
    "PriorityArbiter",
    "RoundRobinArbiter",
    "SimulationConfig",
    "SimulationResult",
    "Simulator",
    "TraceEntry",
    "WeightedRoundRobinArbiter",
    "format_gantt",
    "make_arbiter",
    "simulate",
]
