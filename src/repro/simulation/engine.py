"""Discrete-event engine: concurrent SDF applications on shared processors.

Semantics (matching the paper's system model, Section 3):

* Every actor of every active application is bound to one processor of
  the platform (the :class:`~repro.platform.mapping.Mapping`).
* An actor *requests* its processor as soon as (a) the tokens for one
  firing are present on all its input channels and (b) it is not already
  executing or queued — software tasks issue one request at a time.
* Processors are **non-preemptive** under the paper's policies: once
  granted, the actor holds the processor for its whole execution time.
  Arbiters registered as *preemptive* (``priority_preemptive``) extend
  the model: a strictly higher-priority request suspends the running
  actor, which resumes later with its remaining execution time (tokens
  are not re-consumed; the suspended actor re-enters the queue).
* The processor's arbiter (FCFS by default) picks among queued requests
  whenever the processor becomes free.
* Tokens are consumed when execution *starts* and produced when it
  *completes*.

The engine is deterministic: equal-time events are processed in insertion
order and queue ties break on actor id, so repeated runs give identical
traces.  Execution times may be randomized through a
:class:`TimeModel` (the paper's stochastic extension); the RNG is seeded.

Engine flavours
---------------
The stepping loop is selected through the same :class:`~repro.backend.
ArrayBackend` dispatch the estimator uses (explicit ``backend=``
argument, then ``REPRO_BACKEND``, then auto-detection):

* ``python`` — the reference loop below (:meth:`Simulator.
  _run_reference`): pluggable arbiter objects, heap of event tuples.
  Always used when the resolved backend is not vectorized, or when a
  third-party arbitration policy is registered.
* ``numpy`` — the flat structure-of-arrays core
  (:mod:`repro.simulation.fastcore`): a ``(time, seq)`` event calendar
  with per-field payload lists, precomputed per-arbiter dispatch
  tables, and batched same-timestamp retirement.  Byte-identical to the
  reference loop — traces, metrics, waiting statistics, utilization and
  error messages all match bit-for-bit (enforced by the differential
  test suite).
* ``jit`` — opt-in via ``REPRO_SIM_JIT=1`` with the ``jit`` extra
  (numba) installed: the inner stepping loop compiled in nopython mode
  (:mod:`repro.simulation.jit`).  Falls back to ``numpy`` silently when
  numba is missing or the configuration is unsupported; results remain
  byte-identical.

Every run records an :class:`~repro.simulation.metrics.EngineStats`
profile, retrievable through :meth:`Simulator.stats`.
"""

from __future__ import annotations

import heapq
import os
import random
import time as _time
from dataclasses import dataclass
from typing import Dict, List, Mapping as TMapping, Optional, Sequence, Tuple

from repro.backend import ArrayBackend, get_backend
from repro.exceptions import AnalysisError, DeadlockError, MappingError
from repro.platform.mapping import Mapping, index_mapping
from repro.sdf.graph import SDFGraph
from repro.sdf.liveness import assert_live
from repro.sdf.repetition import repetition_vector
from repro.simulation.arbiter import ArbiterContext, make_arbiter
from repro.wcrt.weighted_round_robin import validate_weights
from repro.simulation.fastcore import POLICY_CODES, run_fast
from repro.simulation.metrics import (
    EngineStats,
    IterationTracker,
    SimulationResult,
    WaitingStatistics,
    metrics_from_completions,
)
from repro.simulation.trace import TraceEntry
from repro.telemetry import get_registry

#: Environment opt-in for the numba-compiled stepping loop.
JIT_ENV_VAR = "REPRO_SIM_JIT"


def record_engine_stats(stats: EngineStats) -> None:
    """Fold one run's :class:`EngineStats` into the global registry.

    Counters are labelled by engine flavour and created ``always=True``:
    the per-flavour profile (``repro conformance --profile``) is keyed
    off these shared counters, and — like ``EngineStats`` itself — they
    are cheap enough to stay on regardless of ``REPRO_TELEMETRY``.
    """
    registry = get_registry()
    registry.counter(
        "repro_sim_runs_total",
        "Simulation runs by engine flavour",
        always=True,
        flavour=stats.flavour,
    ).inc()
    registry.counter(
        "repro_sim_events_dispatched_total",
        "DES events dispatched by engine flavour",
        always=True,
        flavour=stats.flavour,
    ).inc(stats.events_dispatched)
    registry.counter(
        "repro_sim_stale_events_total",
        "Stale (superseded) DES events by engine flavour",
        always=True,
        flavour=stats.flavour,
    ).inc(stats.stale_events)
    registry.counter(
        "repro_sim_preemptions_total",
        "Preemptions performed by engine flavour",
        always=True,
        flavour=stats.flavour,
    ).inc(stats.preemptions)
    for phase, seconds in stats.phase_seconds.items():
        registry.counter(
            "repro_sim_phase_seconds_total",
            "Wall-clock seconds per engine phase and flavour",
            always=True,
            flavour=stats.flavour,
            phase=phase,
        ).inc(seconds)


def _jit_requested() -> bool:
    return os.environ.get(JIT_ENV_VAR, "").strip().lower() in {
        "1",
        "true",
        "yes",
        "on",
    }


class TimeModel:
    """Execution-time model: returns the duration of each firing.

    The default implementation returns the actor's fixed execution time;
    subclasses (see :mod:`repro.core.distributions`) may draw from a
    distribution, enabling the paper's "varying execution times"
    extension.
    """

    def sample(
        self, application: str, actor: str, nominal: float, rng: random.Random
    ) -> float:
        return nominal


@dataclass
class SimulationConfig:
    """Tunable parameters of a simulation run.

    Attributes
    ----------
    arbitration:
        Processor arbitration policy — any name registered in
        :data:`repro.core.registry.ARBITERS`: ``"fcfs"`` (paper),
        ``"round_robin"``, ``"weighted_round_robin"``, ``"priority"``
        or ``"priority_preemptive"``.
    arbitration_params:
        Policy parameters; currently ``{"weights": {application:
        slices}}`` for the weighted round-robin policy (priorities ride
        on the mapping instead, next to the bindings they annotate).
    target_iterations:
        Stop once every application completed this many iterations
        (``None``: run until ``horizon``).
    horizon:
        Optional time limit; events beyond it are not processed.
    warmup_fraction:
        Fraction of iterations discarded before measuring periods.
    record_trace:
        Keep a Gantt trace of all firings (memory-heavy; for examples
        and invariants tests).
    seed:
        Seed for the execution-time RNG (only relevant with a stochastic
        :class:`TimeModel`).
    time_model:
        Execution-time model; default is the deterministic one.
    max_events:
        Hard bound on processed events, a guard against misconfiguration.
    """

    arbitration: str = "fcfs"
    arbitration_params: Optional[TMapping[str, object]] = None
    target_iterations: Optional[int] = 100
    horizon: Optional[float] = None
    warmup_fraction: float = 0.25
    record_trace: bool = False
    seed: int = 0
    time_model: Optional[TimeModel] = None
    max_events: int = 50_000_000

    def __post_init__(self) -> None:
        if self.target_iterations is None and self.horizon is None:
            raise AnalysisError(
                "simulation needs a target_iterations or a horizon"
            )
        if self.target_iterations is not None and self.target_iterations < 5:
            raise AnalysisError(
                "target_iterations must be at least 5 to measure a period"
            )


class Simulator:
    """One configured simulation of a use-case.

    Parameters
    ----------
    graphs:
        The active applications (each consistent and live).
    mapping:
        Actor bindings; defaults to the paper's index mapping.
    config:
        See :class:`SimulationConfig`.
    backend:
        Engine-flavour selector (see the module docstring): an
        :class:`~repro.backend.ArrayBackend`, a backend name, or None
        for the usual resolution order (``REPRO_BACKEND``, then auto).
    """

    def __init__(
        self,
        graphs: Sequence[SDFGraph],
        mapping: Optional[Mapping] = None,
        config: Optional[SimulationConfig] = None,
        backend: "ArrayBackend | str | None" = None,
    ) -> None:
        if not graphs:
            raise AnalysisError("simulation needs at least one application")
        names = [g.name for g in graphs]
        if len(set(names)) != len(names):
            raise AnalysisError(f"duplicate application names: {names!r}")
        self.graphs = list(graphs)
        self.mapping = mapping if mapping is not None else index_mapping(graphs)
        self.config = config if config is not None else SimulationConfig()
        self.backend = get_backend(backend)
        self._last_stats: Optional[EngineStats] = None
        for graph in self.graphs:
            assert_live(graph)
        self.mapping.validate_against(self.graphs)
        self._build()
        self.flavour = self._resolve_flavour()

    # ------------------------------------------------------------------
    def _resolve_flavour(self) -> str:
        """Pick the stepping loop: ``python``, ``numpy`` or ``jit``."""
        if not self.backend.vectorized:
            return "python"
        from repro.core.registry import ARBITERS

        try:
            info = ARBITERS.get(self.config.arbitration)
        except Exception:
            # Unknown policy: keep the reference loop so the error
            # surfaces at run() time exactly as it always did.
            return "python"
        if info.name not in POLICY_CODES:
            # Third-party arbiter: only the reference loop can drive it.
            return "python"
        if _jit_requested():
            from repro.simulation.jit import jit_supported

            if jit_supported(self):
                return "jit"
        return "numpy"

    # ------------------------------------------------------------------
    def stats(self) -> Optional[EngineStats]:
        """Profile of the most recent :meth:`run` (None before any)."""
        return self._last_stats

    # ------------------------------------------------------------------
    def _build(self) -> None:
        """Flatten (application, actor) pairs into integer ids."""
        self._app_of: List[str] = []
        self._name_of: List[str] = []
        self._tau: List[float] = []
        self._proc_of: List[int] = []
        self._priority_of: List[float] = []
        self._id_of: Dict[Tuple[str, str], int] = {}

        processor_names = self.mapping.platform.processor_names
        proc_index = {name: i for i, name in enumerate(processor_names)}

        for graph in self.graphs:
            for actor in graph.actors:
                actor_id = len(self._app_of)
                self._id_of[(graph.name, actor.name)] = actor_id
                self._app_of.append(graph.name)
                self._name_of.append(actor.name)
                self._tau.append(actor.execution_time)
                self._priority_of.append(
                    self.mapping.priority_of(graph.name, actor.name)
                )
                processor = self.mapping.processor_of(graph.name, actor.name)
                self._proc_of.append(proc_index[processor])
        self._processor_names = processor_names

        # Channels, flattened across applications.
        self._chan_src: List[int] = []
        self._chan_dst: List[int] = []
        self._chan_prod: List[int] = []
        self._chan_cons: List[int] = []
        self._chan_tokens: List[int] = []
        self._in_channels: List[List[int]] = [[] for _ in self._app_of]
        self._out_channels: List[List[int]] = [[] for _ in self._app_of]
        for graph in self.graphs:
            for channel in graph.channels:
                cid = len(self._chan_src)
                src = self._id_of[(graph.name, channel.source)]
                dst = self._id_of[(graph.name, channel.target)]
                self._chan_src.append(src)
                self._chan_dst.append(dst)
                self._chan_prod.append(channel.production_rate)
                self._chan_cons.append(channel.consumption_rate)
                self._chan_tokens.append(channel.initial_tokens)
                self._out_channels[src].append(cid)
                self._in_channels[dst].append(cid)

        # Per-processor membership (deterministic order = id order).
        members: List[List[int]] = [[] for _ in processor_names]
        for actor_id, proc in enumerate(self._proc_of):
            members[proc].append(actor_id)
        self._members = members

        self._trackers: Dict[str, IterationTracker] = {
            graph.name: IterationTracker(repetition_vector(graph))
            for graph in self.graphs
        }

    # ------------------------------------------------------------------
    def _arbiter_context(self) -> ArbiterContext:
        """Per-actor scheduling metadata for the arbiters.

        Priorities come from the mapping; weights from
        ``config.arbitration_params["weights"]`` (per application,
        resolved to every actor of the application).
        """
        params = dict(self.config.arbitration_params or {})
        raw_weights = params.pop("weights", None)
        if params:
            raise MappingError(
                f"unknown arbitration_params keys {sorted(params)!r}; "
                "supported: 'weights'"
            )
        weights: Dict[int, int] = {}
        if raw_weights is not None:
            # Weights for a policy that does not consume them would be
            # silently ignored — the misconfiguration must fail loudly
            # (the policy's parameter schema says what it reads).
            from repro.core.registry import ARBITERS

            policy = ARBITERS.get(self.config.arbitration)
            if "weights" not in policy.parameters:
                raise MappingError(
                    f"arbitration policy {policy.name!r} does not "
                    "consume arbitration_params['weights']; use "
                    "'weighted_round_robin' or drop the weights"
                )
            if not isinstance(raw_weights, dict):
                raise MappingError(
                    "arbitration_params['weights'] must map "
                    "application names to integer slice counts"
                )
            known = {g.name for g in self.graphs}
            unknown = sorted(set(raw_weights) - known)
            if unknown:
                raise MappingError(
                    f"arbitration weights name unknown applications "
                    f"{unknown!r}"
                )
            validate_weights(raw_weights, error=MappingError)
            for actor_id, app in enumerate(self._app_of):
                if app in raw_weights:
                    weights[actor_id] = raw_weights[app]
        priorities = {
            actor_id: priority
            for actor_id, priority in enumerate(self._priority_of)
            if priority != 0.0
        }
        return ArbiterContext(priorities=priorities, weights=weights)

    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Execute the simulation and return measured metrics.

        Dispatches to the flavour resolved at construction time; all
        flavours produce byte-identical results.  Every run folds its
        :class:`EngineStats` into the global metrics registry (per
        flavour, always on) — the conformance ``--profile`` table and
        the telemetry exposition read those shared counters.
        """
        result = self._dispatch()
        if self._last_stats is not None:
            record_engine_stats(self._last_stats)
        return result

    def _dispatch(self) -> SimulationResult:
        if self.flavour == "jit":
            from repro.simulation.jit import run_jit

            result = run_jit(self)
            if result is not None:
                return result
            # Capacity overflow in the fixed-size JIT buffers: redo the
            # run on the interpreted SoA core (identical results).
            return run_fast(self, flavour="numpy")
        if self.flavour == "numpy":
            return run_fast(self)
        return self._run_reference()

    # ------------------------------------------------------------------
    def _run_reference(self) -> SimulationResult:
        """The reference (``python`` flavour) stepping loop."""
        t_setup = _time.perf_counter()
        config = self.config
        rng = random.Random(config.seed)
        time_model = config.time_model or TimeModel()

        tokens = list(self._chan_tokens)
        executing = [False] * len(self._app_of)
        queued = [False] * len(self._app_of)
        busy = [False] * len(self._members)
        context = self._arbiter_context()
        arbiters = [
            make_arbiter(config.arbitration, member_list, context)
            for member_list in self._members
        ]

        # Heap entries carry a per-actor generation counter: preempting
        # an actor invalidates its scheduled completion (the stale event
        # is skipped on pop).  Non-preemptive runs never bump a
        # generation, so their event stream is untouched.
        heap: List[Tuple[float, int, int, int]] = []
        sequence = 0
        busy_time = [0.0] * len(self._members)
        request_time = [0.0] * len(self._app_of)
        waiting_total = [0.0] * len(self._app_of)
        waiting_max = [0.0] * len(self._app_of)
        waiting_count = [0] * len(self._app_of)
        running: List[Optional[int]] = [None] * len(self._members)
        generation = [0] * len(self._app_of)
        remaining: List[Optional[float]] = [None] * len(self._app_of)
        scheduled_end = [0.0] * len(self._app_of)
        trace_slot = [-1] * len(self._app_of)
        trace: Optional[List[TraceEntry]] = (
            [] if config.record_trace else None
        )
        iterations_done: Dict[str, bool] = {
            g.name: False for g in self.graphs
        }
        target = config.target_iterations

        def ready(actor_id: int) -> bool:
            if executing[actor_id] or queued[actor_id]:
                return False
            in_list = self._in_channels[actor_id]
            for cid in in_list:
                if tokens[cid] < self._chan_cons[cid]:
                    return False
            return True

        def try_enqueue(actor_id: int, now: float, touched: set) -> None:
            if ready(actor_id):
                queued[actor_id] = True
                request_time[actor_id] = now
                proc = self._proc_of[actor_id]
                arbiters[proc].enqueue(actor_id, now)
                touched.add(proc)
                maybe_preempt(proc, now)

        def start_next(proc: int, now: float) -> None:
            nonlocal sequence
            if busy[proc]:
                return
            actor_id = arbiters[proc].pick()
            if actor_id is None:
                return
            queued[actor_id] = False
            executing[actor_id] = True
            busy[proc] = True
            running[proc] = actor_id
            waited = now - request_time[actor_id]
            waiting_total[actor_id] += waited
            if waited > waiting_max[actor_id]:
                waiting_max[actor_id] = waited
            resumed_for = remaining[actor_id]
            if resumed_for is not None:
                # Resuming a preempted firing: tokens were consumed at
                # the original start; only the leftover work runs.
                remaining[actor_id] = None
                duration = resumed_for
            else:
                waiting_count[actor_id] += 1
                for cid in self._in_channels[actor_id]:
                    tokens[cid] -= self._chan_cons[cid]
                duration = time_model.sample(
                    self._app_of[actor_id],
                    self._name_of[actor_id],
                    self._tau[actor_id],
                    rng,
                )
                if duration <= 0:
                    raise AnalysisError(
                        "time model produced a non-positive execution time "
                        f"({duration}) for {self._app_of[actor_id]}."
                        f"{self._name_of[actor_id]}"
                    )
            sequence += 1
            busy_time[proc] += duration
            scheduled_end[actor_id] = now + duration
            heapq.heappush(
                heap,
                (now + duration, sequence, actor_id, generation[actor_id]),
            )
            if trace is not None:
                trace_slot[actor_id] = len(trace)
                trace.append(
                    TraceEntry(
                        processor=self._processor_names[proc],
                        application=self._app_of[actor_id],
                        actor=self._name_of[actor_id],
                        start=now,
                        end=now + duration,
                    )
                )

        def maybe_preempt(proc: int, now: float) -> None:
            """Suspend the running actor when the arbiter demands it.

            Only preemptive arbiters ever do; the victim's completion
            event is invalidated through its generation counter and the
            leftover work is re-queued (no token re-consumption).
            """
            nonlocal preemptions
            arbiter = arbiters[proc]
            if not arbiter.preemptive or not busy[proc]:
                return
            victim = running[proc]
            if victim is None or not arbiter.preempts(victim):
                return
            leftover = scheduled_end[victim] - now
            if leftover <= 0:
                # Completion is due at this very instant; let it finish.
                return
            preemptions += 1
            generation[victim] += 1
            remaining[victim] = leftover
            busy_time[proc] -= leftover
            executing[victim] = False
            queued[victim] = True
            request_time[victim] = now
            arbiter.enqueue(victim, now)
            busy[proc] = False
            running[proc] = None
            if trace is not None:
                slot = trace_slot[victim]
                opened = trace[slot]
                trace[slot] = TraceEntry(
                    processor=opened.processor,
                    application=opened.application,
                    actor=opened.actor,
                    start=opened.start,
                    end=now,
                )
            start_next(proc, now)

        preemptions = 0
        stale = 0
        t_step = _time.perf_counter()
        # Prime the system at time zero.
        touched: set = set()
        for actor_id in range(len(self._app_of)):
            try_enqueue(actor_id, 0.0, touched)
        for proc in touched:
            start_next(proc, 0.0)

        events = 0
        end_time = 0.0
        while heap:
            now, _, actor_id, event_generation = heapq.heappop(heap)
            if config.horizon is not None and now > config.horizon:
                break
            events += 1
            if events > config.max_events:
                raise AnalysisError(
                    f"simulation exceeded {config.max_events} events; "
                    "lower target_iterations or set a horizon"
                )
            if event_generation != generation[actor_id]:
                # Stale completion of a firing that was preempted.
                stale += 1
                continue
            end_time = now
            # Complete the firing.
            executing[actor_id] = False
            proc = self._proc_of[actor_id]
            busy[proc] = False
            running[proc] = None
            app = self._app_of[actor_id]
            tracker = self._trackers[app]
            tracker.record_firing(self._name_of[actor_id], now)
            if (
                target is not None
                and not iterations_done[app]
                and tracker.iterations_completed >= target
            ):
                iterations_done[app] = True
                if all(iterations_done.values()):
                    break

            touched = set()
            for cid in self._out_channels[actor_id]:
                tokens[cid] += self._chan_prod[cid]
                try_enqueue(self._chan_dst[cid], now, touched)
            try_enqueue(actor_id, now, touched)
            touched.add(proc)
            for touched_proc in touched:
                start_next(touched_proc, now)
        else:
            if target is not None and not all(iterations_done.values()):
                stuck = [a for a, done in iterations_done.items() if not done]
                raise DeadlockError(
                    f"simulation ran out of events before applications "
                    f"{stuck!r} reached {target} iterations"
                )

        t_collect = _time.perf_counter()
        metrics = {
            graph.name: metrics_from_completions(
                graph.name,
                self._trackers[graph.name].completion_times,
                warmup_fraction=config.warmup_fraction,
            )
            for graph in self.graphs
        }
        utilization = {}
        if end_time > 0:
            for proc, name in enumerate(self._processor_names):
                # Busy time of firings still in flight past end_time is
                # clipped so utilization never exceeds 1.
                utilization[name] = min(
                    1.0, busy_time[proc] / end_time
                )
        else:  # pragma: no cover - zero-length run
            utilization = {name: 0.0 for name in self._processor_names}
        waiting = {}
        for actor_id in range(len(self._app_of)):
            if waiting_count[actor_id] == 0:
                continue
            key = (self._app_of[actor_id], self._name_of[actor_id])
            waiting[key] = WaitingStatistics(
                mean=waiting_total[actor_id] / waiting_count[actor_id],
                maximum=waiting_max[actor_id],
                samples=waiting_count[actor_id],
            )
        self._last_stats = EngineStats(
            flavour="python",
            events_dispatched=events,
            stale_events=stale,
            preemptions=preemptions,
            phase_seconds={
                "setup": t_step - t_setup,
                "step": t_collect - t_step,
                "collect": _time.perf_counter() - t_collect,
            },
        )
        return SimulationResult(
            metrics=metrics,
            end_time=end_time,
            events_processed=events,
            trace=trace,
            processor_utilization=utilization,
            waiting=waiting,
        )


def simulate(
    graphs: Sequence[SDFGraph],
    mapping: Optional[Mapping] = None,
    config: Optional[SimulationConfig] = None,
    backend: "ArrayBackend | str | None" = None,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`Simulator` and run it."""
    return Simulator(graphs, mapping, config, backend=backend).run()
