"""Processor arbitration policies.

An arbiter owns the request queue of one processor.  Actors *request* the
processor when their tokens arrive; the arbiter picks which queued request
runs when the processor is free.  The paper's analysis assumes
arrival-order service (its waiting-time derivation queues actors behind
whoever arrived first), which is :class:`FCFSArbiter`; the
worst-case baseline of reference [6] assumes round-robin
(:class:`RoundRobinArbiter`); :class:`WeightedRoundRobinArbiter`
generalizes it with per-member slice weights;
:class:`PriorityArbiter` (static, non-preemptive) and
:class:`PreemptivePriorityArbiter` (static, preemptive — the engine
suspends the running actor when a strictly higher-priority request
arrives) cover priority scheduling.

Policies are registered in :data:`repro.core.registry.ARBITERS` with
metadata (preemptive flag, parameter schema); :func:`make_arbiter`
resolves names through that registry, so third-party policies plug into
``SimulationConfig.arbitration`` without touching the engine.
Per-member priorities and weights reach the arbiter through an
:class:`ArbiterContext`, which the engine assembles from the mapping's
priorities and ``SimulationConfig.arbitration_params``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.registry import ARBITERS, ArbiterInfo
from repro.exceptions import MappingError
from repro.wcrt.weighted_round_robin import validate_weights

# A request is the integer id of the requesting actor instance; ids are
# assigned by the engine in deterministic (use-case order, actor order).
Request = int


@dataclass(frozen=True)
class ArbiterContext:
    """Per-member scheduling metadata handed to arbiter factories.

    ``priorities`` (larger = more urgent) come from the mapping;
    ``weights`` (round-robin slices per rotation) from
    ``SimulationConfig.arbitration_params``.  Members absent from
    either mapping get priority 0 / weight 1, so an empty context
    reproduces the historical unparameterized policies.
    """

    priorities: Mapping[Request, float] = field(default_factory=dict)
    weights: Mapping[Request, int] = field(default_factory=dict)

    def priority_of(self, member: Request) -> float:
        return self.priorities.get(member, 0.0)

    def weight_of(self, member: Request) -> int:
        return self.weights.get(member, 1)


class Arbiter:
    """Interface: one instance per processor per simulation."""

    #: Preemptive policies additionally implement :meth:`preempts`; the
    #: engine only suspends running actors for arbiters that set this.
    preemptive: bool = False

    def __init__(self, members: Sequence[Request]) -> None:
        """``members`` lists every actor id that may ever request this
        processor, in deterministic order (used by order-sensitive
        policies)."""
        self.members = tuple(members)

    def enqueue(self, actor_id: Request, time: float) -> None:
        """Record that ``actor_id`` requested the processor at ``time``."""
        raise NotImplementedError

    def pick(self) -> Optional[Request]:
        """Remove and return the next actor to run, or None if idle."""
        raise NotImplementedError

    def pending(self) -> int:
        """Number of queued requests."""
        raise NotImplementedError

    def preempts(self, running: Request) -> bool:
        """Whether a queued request should preempt ``running`` now.

        Only consulted when :attr:`preemptive` is True.
        """
        return False


class FCFSArbiter(Arbiter):
    """First-come first-served; ties broken by actor id (deterministic).

    Requests arriving at the same instant are ordered by the engine's
    deterministic processing order, then by id, so repeated runs are
    bit-identical.
    """

    def __init__(self, members: Sequence[Request]) -> None:
        super().__init__(members)
        self._queue: List[Tuple[float, Request]] = []

    def enqueue(self, actor_id: Request, time: float) -> None:
        # Insertion keeps (time, id) order; queues are short (one request
        # per co-mapped actor at most), so linear insertion is fine and
        # avoids heap bookkeeping.
        entry = (time, actor_id)
        position = len(self._queue)
        while position > 0 and self._queue[position - 1] > entry:
            position -= 1
        self._queue.insert(position, entry)

    def pick(self) -> Optional[Request]:
        if not self._queue:
            return None
        return self._queue.pop(0)[1]

    def pending(self) -> int:
        return len(self._queue)


class RoundRobinArbiter(Arbiter):
    """Serve requesters in a fixed circular order, skipping absentees.

    This is the arbitration the worst-case baseline (reference [6])
    analyses: between two firings of an actor, every other member can run
    at most once.
    """

    def __init__(self, members: Sequence[Request]) -> None:
        super().__init__(members)
        self._queued: Set[Request] = set()
        self._position = 0

    def enqueue(self, actor_id: Request, time: float) -> None:
        if actor_id not in self.members:
            raise MappingError(
                f"actor {actor_id} is not a member of this processor"
            )
        self._queued.add(actor_id)

    def pick(self) -> Optional[Request]:
        if not self._queued:
            return None
        n = len(self.members)
        for offset in range(n):
            candidate = self.members[(self._position + offset) % n]
            if candidate in self._queued:
                self._queued.discard(candidate)
                self._position = (
                    self.members.index(candidate) + 1
                ) % n
                return candidate
        return None  # pragma: no cover - unreachable, _queued subset members

    def pending(self) -> int:
        return len(self._queued)


class WeightedRoundRobinArbiter(Arbiter):
    """Round-robin with per-member slice weights.

    The rotation pauses on each member for up to ``weight`` consecutive
    grants (a member that stops requesting mid-allocation forfeits the
    rest — slots do not accumulate), then advances.  All weights 1
    reproduces :class:`RoundRobinArbiter`'s guarantees; the matching
    analytic bound is :class:`~repro.wcrt.weighted_round_robin.
    WeightedRRWaitingModel`.
    """

    def __init__(
        self,
        members: Sequence[Request],
        context: Optional[ArbiterContext] = None,
    ) -> None:
        super().__init__(members)
        context = context if context is not None else ArbiterContext()
        # Shared weight rule (repro.wcrt.weighted_round_robin) with this
        # layer's error type; keys are member ids here, not app names.
        self._weight: Dict[Request, int] = validate_weights(
            {
                member: context.weight_of(member)
                for member in self.members
            },
            error=MappingError,
        )
        self._queued: Set[Request] = set()
        self._position = 0
        self._credit = (
            self._weight[self.members[0]] if self.members else 0
        )

    def _advance(self) -> None:
        self._position = (self._position + 1) % len(self.members)
        self._credit = self._weight[self.members[self._position]]

    def enqueue(self, actor_id: Request, time: float) -> None:
        if actor_id not in self.members:
            raise MappingError(
                f"actor {actor_id} is not a member of this processor"
            )
        self._queued.add(actor_id)

    def pick(self) -> Optional[Request]:
        if not self._queued:
            return None
        for _ in range(len(self.members) + 1):
            candidate = self.members[self._position]
            if self._credit > 0 and candidate in self._queued:
                self._queued.discard(candidate)
                self._credit -= 1
                if self._credit == 0:
                    self._advance()
                return candidate
            self._advance()
        return None  # pragma: no cover - unreachable, _queued subset members

    def pending(self) -> int:
        return len(self._queued)


class PriorityArbiter(Arbiter):
    """Static priority, non-preemptive.

    The queued member with the highest context priority wins; ties fall
    back to member-list order, so without assigned priorities (all 0)
    the policy behaves exactly as it always did — earliest member in
    the member list first.
    """

    def __init__(
        self,
        members: Sequence[Request],
        context: Optional[ArbiterContext] = None,
    ) -> None:
        super().__init__(members)
        context = context if context is not None else ArbiterContext()
        self._rank: Dict[Request, Tuple[float, int]] = {
            actor_id: (-context.priority_of(actor_id), rank)
            for rank, actor_id in enumerate(members)
        }
        self._queued: List[Request] = []

    def enqueue(self, actor_id: Request, time: float) -> None:
        self._queued.append(actor_id)

    def pick(self) -> Optional[Request]:
        if not self._queued:
            return None
        fallback = (0.0, len(self._rank))
        best = min(
            self._queued, key=lambda a: self._rank.get(a, fallback)
        )
        self._queued.remove(best)
        return best

    def pending(self) -> int:
        return len(self._queued)


class PreemptivePriorityArbiter(Arbiter):
    """Static priority, preemptive.

    The queued member with the highest priority wins; ties break on
    request time then id, so among equal priorities service is
    arrival-ordered (FCFS) — with uniform priorities the policy *is*
    FCFS and never preempts.  A strictly higher-priority request
    suspends the running actor (the engine re-queues it with its
    remaining execution time).
    """

    preemptive = True

    def __init__(
        self,
        members: Sequence[Request],
        context: Optional[ArbiterContext] = None,
    ) -> None:
        super().__init__(members)
        context = context if context is not None else ArbiterContext()
        self._priority: Dict[Request, float] = {
            member: context.priority_of(member) for member in members
        }
        self._queue: List[Tuple[float, float, Request]] = []

    def _key(self, actor_id: Request, time: float):
        # Sort ascending: higher priority first, then earlier request,
        # then smaller id.
        return (-self._priority.get(actor_id, 0.0), time, actor_id)

    def enqueue(self, actor_id: Request, time: float) -> None:
        entry = self._key(actor_id, time)
        position = len(self._queue)
        while position > 0 and self._queue[position - 1] > entry:
            position -= 1
        self._queue.insert(position, entry)

    def pick(self) -> Optional[Request]:
        if not self._queue:
            return None
        return self._queue.pop(0)[2]

    def pending(self) -> int:
        return len(self._queue)

    def preempts(self, running: Request) -> bool:
        if not self._queue:
            return False
        return -self._queue[0][0] > self._priority.get(running, 0.0)


_BUILTIN_ARBITERS = (
    ArbiterInfo(
        name="fcfs",
        factory=lambda members, context: FCFSArbiter(members),
        summary="arrival order, ties by actor id (the paper's model)",
    ),
    ArbiterInfo(
        name="round_robin",
        factory=lambda members, context: RoundRobinArbiter(members),
        summary="fixed rotation, skipping absentees (reference [6])",
    ),
    ArbiterInfo(
        name="weighted_round_robin",
        factory=WeightedRoundRobinArbiter,
        summary="rotation with per-member slice weights",
        parameters={
            "weights": (
                "per-application grants per rotation "
                "(SimulationConfig.arbitration_params['weights'])"
            )
        },
        aliases=("wrr",),
    ),
    ArbiterInfo(
        name="priority",
        factory=PriorityArbiter,
        summary="static priority, non-preemptive",
        parameters={"priorities": "per-actor, from the mapping"},
    ),
    ArbiterInfo(
        name="priority_preemptive",
        factory=PreemptivePriorityArbiter,
        summary="static priority, preemptive at arrival instants",
        preemptive=True,
        parameters={"priorities": "per-actor, from the mapping"},
    ),
)

for _info in _BUILTIN_ARBITERS:
    if _info.name not in ARBITERS:
        ARBITERS.register(_info)
del _info


def make_arbiter(
    policy: str,
    members: Sequence[Request],
    context: Optional[ArbiterContext] = None,
) -> Arbiter:
    """Instantiate a registered arbiter by policy name.

    Builtin names: ``"fcfs"``, ``"round_robin"``,
    ``"weighted_round_robin"`` (alias ``"wrr"``), ``"priority"``,
    ``"priority_preemptive"``.  Unknown names raise
    :class:`~repro.exceptions.MappingError` listing every registered
    policy.
    """
    info = ARBITERS.get(policy)
    arbiter = info.factory(
        members, context if context is not None else ArbiterContext()
    )
    return arbiter
