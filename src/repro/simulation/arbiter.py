"""Processor arbitration policies.

An arbiter owns the request queue of one processor.  Actors *request* the
processor when their tokens arrive; the arbiter picks which queued request
runs when the processor is free.  The paper's analysis assumes
arrival-order service (its waiting-time derivation queues actors behind
whoever arrived first), which is :class:`FCFSArbiter`; the
worst-case baseline of reference [6] assumes round-robin
(:class:`RoundRobinArbiter`); :class:`PriorityArbiter` (static order) is
included for the ablation on arbitration policy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import MappingError

# A request is the integer id of the requesting actor instance; ids are
# assigned by the engine in deterministic (use-case order, actor order).
Request = int


class Arbiter:
    """Interface: one instance per processor per simulation."""

    def __init__(self, members: Sequence[Request]) -> None:
        """``members`` lists every actor id that may ever request this
        processor, in deterministic order (used by order-sensitive
        policies)."""
        self.members = tuple(members)

    def enqueue(self, actor_id: Request, time: float) -> None:
        """Record that ``actor_id`` requested the processor at ``time``."""
        raise NotImplementedError

    def pick(self) -> Optional[Request]:
        """Remove and return the next actor to run, or None if idle."""
        raise NotImplementedError

    def pending(self) -> int:
        """Number of queued requests."""
        raise NotImplementedError


class FCFSArbiter(Arbiter):
    """First-come first-served; ties broken by actor id (deterministic).

    Requests arriving at the same instant are ordered by the engine's
    deterministic processing order, then by id, so repeated runs are
    bit-identical.
    """

    def __init__(self, members: Sequence[Request]) -> None:
        super().__init__(members)
        self._queue: List[Tuple[float, Request]] = []

    def enqueue(self, actor_id: Request, time: float) -> None:
        # Insertion keeps (time, id) order; queues are short (one request
        # per co-mapped actor at most), so linear insertion is fine and
        # avoids heap bookkeeping.
        entry = (time, actor_id)
        position = len(self._queue)
        while position > 0 and self._queue[position - 1] > entry:
            position -= 1
        self._queue.insert(position, entry)

    def pick(self) -> Optional[Request]:
        if not self._queue:
            return None
        return self._queue.pop(0)[1]

    def pending(self) -> int:
        return len(self._queue)


class RoundRobinArbiter(Arbiter):
    """Serve requesters in a fixed circular order, skipping absentees.

    This is the arbitration the worst-case baseline (reference [6])
    analyses: between two firings of an actor, every other member can run
    at most once.
    """

    def __init__(self, members: Sequence[Request]) -> None:
        super().__init__(members)
        self._queued: set = set()
        self._position = 0

    def enqueue(self, actor_id: Request, time: float) -> None:
        if actor_id not in self.members:
            raise MappingError(
                f"actor {actor_id} is not a member of this processor"
            )
        self._queued.add(actor_id)

    def pick(self) -> Optional[Request]:
        if not self._queued:
            return None
        n = len(self.members)
        for offset in range(n):
            candidate = self.members[(self._position + offset) % n]
            if candidate in self._queued:
                self._queued.discard(candidate)
                self._position = (
                    self.members.index(candidate) + 1
                ) % n
                return candidate
        return None  # pragma: no cover - unreachable, _queued subset members

    def pending(self) -> int:
        return len(self._queued)


class PriorityArbiter(Arbiter):
    """Static priority: the earliest member in the member list wins."""

    def __init__(self, members: Sequence[Request]) -> None:
        super().__init__(members)
        self._rank: Dict[Request, int] = {
            actor_id: rank for rank, actor_id in enumerate(members)
        }
        self._queued: List[Request] = []

    def enqueue(self, actor_id: Request, time: float) -> None:
        self._queued.append(actor_id)

    def pick(self) -> Optional[Request]:
        if not self._queued:
            return None
        best = min(self._queued, key=lambda a: self._rank.get(a, len(self._rank)))
        self._queued.remove(best)
        return best

    def pending(self) -> int:
        return len(self._queued)


_ARBITERS = {
    "fcfs": FCFSArbiter,
    "round_robin": RoundRobinArbiter,
    "priority": PriorityArbiter,
}


def make_arbiter(policy: str, members: Sequence[Request]) -> Arbiter:
    """Instantiate an arbiter by policy name.

    Valid names: ``"fcfs"``, ``"round_robin"``, ``"priority"``.
    """
    try:
        factory = _ARBITERS[policy]
    except KeyError:
        raise MappingError(
            f"unknown arbitration policy {policy!r}; expected one of "
            f"{sorted(_ARBITERS)}"
        ) from None
    return factory(members)
