"""Wire protocol of the estimation service: JSON objects, one per line.

The service speaks newline-delimited JSON over any byte stream — a TCP
connection or a stdin/stdout pipe — so clients need nothing beyond a
socket and ``json``.  Every request carries an ``op`` and an ``id`` the
response echoes back; the estimate payload names a reproducible gallery
(the :class:`~repro.runtime.service.GallerySpec` recipe, exactly like
the sweep service's result store), a use-case, a waiting model and an
analysis method, so a query is a *value* — cacheable, batchable and
deduplicatable across clients.

Requests::

    {"id": 1, "op": "ping"}
    {"id": 2, "op": "estimate", "gallery": {"kind": "paper", "seed":
     2007, "applications": 8}, "use_case": ["A0", "A3"],
     "model": "second_order", "method": "mcr"}
    {"id": 3, "op": "stats"}
    {"id": 4, "op": "invalidate", "gallery": {...}}
    {"id": 5, "op": "shutdown"}
    {"id": 6, "op": "metrics"}
    {"id": 7, "op": "place", "gallery": {...}, "strategy": "greedy",
     "model": "wrr", "objective": "total_period", "seed": 0,
     "slack": 4.5}
    {"id": 8, "op": "estimate_batch", "gallery": {...},
     "use_cases": [["A0"], ["A0", "A3"]], "model": "second_order",
     "method": "mcr"}
    {"id": 9, "op": "cache_export", "galleries": ["paper:2007:8"],
     "limit": 256}
    {"id": 10, "op": "cache_import", "entries": [[[...key...],
     {...payload...}], ...]}

``estimate_batch`` asks one gallery several use-case questions in a
single framed message — the router's micro-batcher coalesces same-
gallery queries from many client connections into one of these per
shard hop.  ``cache_export``/``cache_import`` move warm cached answers
between shards: the resharding hand-off that warms a joining shard and
the ring-neighbour replication that survives a shard death both ride
on them.  The router additionally understands ``join``/``leave`` admin
verbs (``{"op": "join", "shard": "host:port"}``) for live resharding.

Requests may carry an optional ``trace`` field (an opaque string or
integer): the server stamps it on every span the request produces and
echoes it inside the result payload, so a pipelined client can correlate
its questions with the server-side timeline.

Responses::

    {"id": 2, "ok": true, "result": {"periods": {...}, ...}}
    {"id": 2, "ok": false, "error": "..."}
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.registry import validate_model_spec
from repro.exceptions import ServiceError
from repro.experiments.setup import DEFAULT_SEED
from repro.platform.usecase import UseCase
from repro.runtime.service import GallerySpec, ResultStore
from repro.sdf.analysis import AnalysisMethod

#: Protocol revision, reported by ``ping`` and ``stats``.
#: 2: ``estimate_batch``, ``cache_export``/``cache_import`` and the
#: router's ``join``/``leave`` elasticity verbs.
PROTOCOL_VERSION = 2

#: Upper bound on one encoded message; a malformed client that streams
#: an unterminated line must not grow the server's buffer unboundedly.
MAX_MESSAGE_BYTES = 1 << 20

#: Operations the server understands.
OPERATIONS: Tuple[str, ...] = (
    "ping",
    "estimate",
    "estimate_batch",
    "place",
    "stats",
    "metrics",
    "invalidate",
    "cache_export",
    "cache_import",
    "shutdown",
)

#: Router-only admin verbs (live resharding), on top of OPERATIONS.
ROUTER_OPERATIONS: Tuple[str, ...] = ("join", "leave")

#: Upper bound on use-cases one ``estimate_batch`` message may carry —
#: a framed batch must stay well inside ``MAX_MESSAGE_BYTES``.
MAX_BATCH_USE_CASES = 1024

#: Bound on the optional request-scoped ``trace`` id; it travels through
#: span records and exporter output, so a hostile client must not be able
#: to inflate them arbitrarily.
MAX_TRACE_ID_LENGTH = 128


def encode_message(payload: Dict[str, object]) -> bytes:
    """One protocol message: compact JSON plus the line terminator."""
    line = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    data = line.encode("utf-8") + b"\n"
    if len(data) > MAX_MESSAGE_BYTES:
        raise ServiceError(
            f"message of {len(data)} bytes exceeds the protocol bound "
            f"of {MAX_MESSAGE_BYTES}"
        )
    return data


def decode_message(line: bytes) -> Dict[str, object]:
    """Parse one received line into a payload dict (loud on garbage)."""
    if len(line) > MAX_MESSAGE_BYTES:
        raise ServiceError(
            f"message of {len(line)} bytes exceeds the protocol bound "
            f"of {MAX_MESSAGE_BYTES}"
        )
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ServiceError(f"undecodable message: {error}") from None
    if not isinstance(payload, dict):
        raise ServiceError(f"expected a JSON object, got {type(payload).__name__}")
    return payload


def parse_gallery(data: object) -> GallerySpec:
    """Build the gallery recipe named by an ``estimate``/``invalidate``
    payload.  ``applications`` mirrors the CLI's ``--suite N``;
    ``application_count`` is accepted as the dataclass-field spelling."""
    if not isinstance(data, dict):
        raise ServiceError(
            "estimate needs a 'gallery' object, e.g. "
            '{"kind": "paper", "seed": 2007, "applications": 8}'
        )
    known = {"kind", "seed", "applications", "application_count"}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ServiceError(f"unknown gallery fields: {unknown!r}")
    count = data.get("applications", data.get("application_count", 8))
    try:
        return GallerySpec(
            kind=str(data.get("kind", "paper")),
            seed=int(data.get("seed", DEFAULT_SEED)),
            application_count=int(count),
        )
    except (TypeError, ValueError) as error:
        raise ServiceError(f"bad gallery recipe: {error}") from None


@dataclass(frozen=True)
class Query:
    """One estimation question, normalized for batching and caching."""

    gallery: GallerySpec
    use_case: UseCase
    model: str
    method: AnalysisMethod

    @property
    def key(self) -> Tuple[str, str, str, str]:
        """Cache key — the :class:`~repro.runtime.service.ResultStore`
        convention, so service cache entries and sweep store lines name
        results identically."""
        return ResultStore.key(self.gallery, self.use_case, self.model, self.method)

    @property
    def group(self) -> Tuple[str, str, str]:
        """Micro-batch group: queries sharing gallery, model and method
        are answered by one :meth:`estimate_many` call."""
        return (self.gallery.label(), self.model, self.method.value)

    def degraded(self, model: str) -> "Query":
        """The same question under a cheaper waiting model (shedding)."""
        return Query(
            gallery=self.gallery,
            use_case=self.use_case,
            model=model,
            method=self.method,
        )


def _parse_use_case(raw_use_case: object, gallery: GallerySpec) -> UseCase:
    """One validated use-case of ``gallery`` (shared by both estimate
    spellings, so single and batched queries reject identically)."""
    if not isinstance(raw_use_case, (list, tuple)) or not raw_use_case:
        raise ServiceError(
            "estimate needs a non-empty 'use_case' list of "
            "application names"
        )
    names = tuple(str(name) for name in raw_use_case)
    known = set(gallery.application_names())
    unknown = sorted(set(names) - known)
    if unknown:
        raise ServiceError(
            f"use-case references applications {unknown!r} outside "
            f"gallery {gallery.label()!r}"
        )
    try:
        return UseCase(names)
    except Exception as error:
        raise ServiceError(f"bad use-case: {error}") from None


def _parse_model_and_method(
    payload: Dict[str, object], gallery: GallerySpec
) -> Tuple[str, AnalysisMethod]:
    model = str(payload.get("model", "second_order"))
    try:
        # One registry round-trip covers unknown names (the error
        # lists the registered catalogue), bad arguments ('order:x',
        # 'wrr:A=0') and per-app parameters naming apps outside the
        # gallery ('wrr:Z=2') — rejected at the protocol edge rather
        # than inside the solver worker.
        validate_model_spec(model, gallery.application_names())
    except Exception as error:
        raise ServiceError(f"bad waiting model: {error}") from None
    method_value = str(payload.get("method", "mcr"))
    try:
        method = AnalysisMethod(method_value)
    except ValueError:
        choices = ", ".join(m.value for m in AnalysisMethod)
        raise ServiceError(
            f"unknown analysis method {method_value!r} "
            f"(choose from {choices})"
        ) from None
    return model, method


def parse_estimate(payload: Dict[str, object]) -> Query:
    """Validate an ``estimate`` payload into a :class:`Query`."""
    gallery = parse_gallery(payload.get("gallery"))
    use_case = _parse_use_case(payload.get("use_case"), gallery)
    model, method = _parse_model_and_method(payload, gallery)
    return Query(gallery=gallery, use_case=use_case, model=model, method=method)


def parse_estimate_batch(payload: Dict[str, object]) -> List[Query]:
    """Validate an ``estimate_batch`` payload into its queries.

    One gallery, model and method; several use-cases, answered in
    request order.  This is the router micro-batcher's framing: many
    client questions, one message per shard hop.
    """
    gallery = parse_gallery(payload.get("gallery"))
    raw_use_cases = payload.get("use_cases")
    if not isinstance(raw_use_cases, (list, tuple)) or not raw_use_cases:
        raise ServiceError(
            "estimate_batch needs a non-empty 'use_cases' list of "
            "use-case lists"
        )
    if len(raw_use_cases) > MAX_BATCH_USE_CASES:
        raise ServiceError(
            f"estimate_batch carries {len(raw_use_cases)} use-cases, "
            f"more than the protocol bound of {MAX_BATCH_USE_CASES}"
        )
    model, method = _parse_model_and_method(payload, gallery)
    return [
        Query(
            gallery=gallery,
            use_case=_parse_use_case(raw, gallery),
            model=model,
            method=method,
        )
        for raw in raw_use_cases
    ]


def parse_cache_entries(
    payload: Dict[str, object],
) -> List[Tuple[Tuple[str, str, str, str], Dict[str, object]]]:
    """Validate a ``cache_import`` payload's ``entries`` list.

    Each entry is ``[key, payload]`` with a 4-element string key (the
    :class:`~repro.runtime.service.ResultStore` convention) and a JSON
    object payload — exactly what ``cache_export`` emits.
    """
    raw_entries = payload.get("entries")
    if not isinstance(raw_entries, (list, tuple)):
        raise ServiceError(
            "cache_import needs an 'entries' list of [key, payload] "
            "pairs"
        )
    entries: List[Tuple[Tuple[str, str, str, str], Dict[str, object]]] = []
    for raw in raw_entries:
        if (
            not isinstance(raw, (list, tuple))
            or len(raw) != 2
            or not isinstance(raw[0], (list, tuple))
            or len(raw[0]) != 4
            or not isinstance(raw[1], dict)
        ):
            raise ServiceError(
                "cache entry must be [key, payload] with a 4-element "
                "key and an object payload"
            )
        key = tuple(str(part) for part in raw[0])
        entries.append((key, dict(raw[1])))  # type: ignore[arg-type]
    return entries


def parse_cache_export(payload: Dict[str, object]) -> Tuple[
    Optional[List[str]], Optional[int]
]:
    """Validate a ``cache_export`` payload: which galleries (``None``
    means every cached gallery) and the per-gallery entry ``limit``."""
    raw_galleries = payload.get("galleries")
    galleries: Optional[List[str]] = None
    if raw_galleries is not None:
        if not isinstance(raw_galleries, (list, tuple)):
            raise ServiceError(
                "cache_export 'galleries' must be a list of gallery "
                "labels or null"
            )
        galleries = [str(label) for label in raw_galleries]
    raw_limit = payload.get("limit")
    limit: Optional[int] = None
    if raw_limit is not None:
        try:
            limit = int(raw_limit)  # type: ignore[arg-type]
        except (TypeError, ValueError) as error:
            raise ServiceError(f"bad cache_export limit: {error}") from None
        if limit < 0:
            raise ServiceError(f"limit must be >= 0, got {limit}")
    return galleries, limit


@dataclass(frozen=True)
class PlaceQuery:
    """One placement question, normalized at the protocol edge.

    The search itself is deterministic (seeded strategies, no
    wall-clock in the result), so a ``place`` request is idempotent:
    the router may retry it on any shard and a client may compare the
    returned ``PlacementResult`` JSON byte-for-byte with a local run.
    """

    gallery: GallerySpec
    strategy: str
    model: str
    objective: str
    seed: int
    slack: float
    targets: Optional[Dict[str, float]]
    mappings: Tuple[str, ...]
    weights: Optional[Tuple[int, ...]]
    priority_levels: Optional[Tuple[float, ...]]
    method: AnalysisMethod

    @property
    def group(self) -> Tuple[str, str, str]:
        """Shard-affinity key — same convention as estimate queries, so
        a gallery's placements land on the shard holding its warm
        engines."""
        return (self.gallery.label(), self.model, self.method.value)


def parse_place(payload: Dict[str, object]) -> PlaceQuery:
    """Validate a ``place`` payload into a :class:`PlaceQuery`.

    Everything user-controlled fails here, at the protocol edge:
    unknown strategies/objectives, bad model specs (including per-app
    parameters naming applications outside the gallery — the shared
    eager path of :func:`~repro.core.registry.validate_model_spec`),
    targets for unknown applications, and malformed axis lists.
    """
    from repro.search.objective import OBJECTIVES
    from repro.search.space import MAPPING_BUILDERS
    from repro.search.strategies import STRATEGIES

    gallery = parse_gallery(payload.get("gallery"))
    applications = gallery.application_names()
    strategy = str(payload.get("strategy", "greedy"))
    if strategy not in STRATEGIES:
        raise ServiceError(
            f"unknown strategy {strategy!r} "
            f"(choose from {', '.join(sorted(STRATEGIES))})"
        )
    objective = str(payload.get("objective", "total_period"))
    if objective not in OBJECTIVES:
        raise ServiceError(
            f"unknown objective {objective!r} "
            f"(choose from {', '.join(OBJECTIVES)})"
        )
    model = str(payload.get("model", "wrr"))
    try:
        validate_model_spec(model, applications)
    except Exception as error:
        raise ServiceError(f"bad waiting model: {error}") from None
    raw_targets = payload.get("targets")
    targets: Optional[Dict[str, float]] = None
    if raw_targets is not None:
        if not isinstance(raw_targets, dict):
            raise ServiceError(
                "place 'targets' must be an object of APP: PERIOD"
            )
        unknown = sorted(set(raw_targets) - set(applications))
        if unknown:
            raise ServiceError(
                f"targets reference applications {unknown!r} outside "
                f"gallery {gallery.label()!r}"
            )
        try:
            targets = {
                str(app): float(value)
                for app, value in raw_targets.items()
            }
        except (TypeError, ValueError) as error:
            raise ServiceError(f"bad target period: {error}") from None
    raw_mappings = payload.get("mappings", ["index", "spread", "modulo"])
    if not isinstance(raw_mappings, (list, tuple)) or not raw_mappings:
        raise ServiceError("place 'mappings' must be a non-empty list")
    mappings = tuple(str(name) for name in raw_mappings)
    unknown = sorted(set(mappings) - set(MAPPING_BUILDERS))
    if unknown:
        raise ServiceError(
            f"unknown mappings {unknown!r} "
            f"(choose from {', '.join(sorted(MAPPING_BUILDERS))})"
        )
    raw_weights = payload.get("weights", [1, 2])
    weights: Optional[Tuple[int, ...]] = None
    if raw_weights is not None:
        if not isinstance(raw_weights, (list, tuple)):
            raise ServiceError(
                "place 'weights' must be a list of integers or null"
            )
        try:
            weights = tuple(int(value) for value in raw_weights)
        except (TypeError, ValueError) as error:
            raise ServiceError(f"bad weight choice: {error}") from None
    raw_levels = payload.get("priority_levels")
    levels: Optional[Tuple[float, ...]] = None
    if raw_levels is not None:
        if not isinstance(raw_levels, (list, tuple)):
            raise ServiceError(
                "place 'priority_levels' must be a list of numbers "
                "or null"
            )
        try:
            levels = tuple(float(value) for value in raw_levels)
        except (TypeError, ValueError) as error:
            raise ServiceError(f"bad priority level: {error}") from None
    method_value = str(payload.get("method", "mcr"))
    try:
        method = AnalysisMethod(method_value)
    except ValueError:
        choices = ", ".join(m.value for m in AnalysisMethod)
        raise ServiceError(
            f"unknown analysis method {method_value!r} "
            f"(choose from {choices})"
        ) from None
    try:
        seed = int(payload.get("seed", 0))
        slack = float(payload.get("slack", 2.5))
    except (TypeError, ValueError) as error:
        raise ServiceError(f"bad place parameter: {error}") from None
    if targets is None and slack <= 1.0:
        raise ServiceError(
            f"slack must exceed 1.0 (isolation is the floor), "
            f"got {slack}"
        )
    return PlaceQuery(
        gallery=gallery,
        strategy=strategy,
        model=model,
        objective=objective,
        seed=seed,
        slack=slack,
        targets=targets,
        mappings=mappings,
        weights=weights,
        priority_levels=levels,
        method=method,
    )


def error_response(request_id: object, message: str) -> Dict[str, object]:
    return {"id": request_id, "ok": False, "error": message}


def ok_response(request_id: object, result: object) -> Dict[str, object]:
    return {"id": request_id, "ok": True, "result": result}


def raise_for_response(response: Dict[str, object]) -> Dict[str, object]:
    """Client-side helper: unwrap ``result`` or raise the ``error``."""
    if response.get("ok"):
        result = response.get("result")
        return result if isinstance(result, dict) else {"value": result}
    raise ServiceError(str(response.get("error", "unknown error")))


def resolve_request_id(payload: Dict[str, object]) -> Optional[object]:
    """The echoed ``id`` — any JSON scalar; ``None`` when absent."""
    request_id = payload.get("id")
    if request_id is not None and not isinstance(request_id, (str, int, float, bool)):
        raise ServiceError("request 'id' must be a JSON scalar")
    return request_id


def resolve_trace_id(payload: Dict[str, object]) -> Optional[str]:
    """The optional request-scoped ``trace`` id — an opaque client
    string stamped on every span the request produces and echoed inside
    the result payload.  Deliberately *not* part of :class:`Query`:
    identical questions from differently-traced clients must still
    deduplicate and share cache entries."""
    value = payload.get("trace")
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (str, int)):
        raise ServiceError("request 'trace' must be a string or integer")
    trace_id = str(value)
    if not trace_id:
        raise ServiceError("request 'trace' must not be empty")
    if len(trace_id) > MAX_TRACE_ID_LENGTH:
        raise ServiceError(
            f"request 'trace' exceeds {MAX_TRACE_ID_LENGTH} characters"
        )
    return trace_id
