"""Warm estimator pools: one set of analysis engines per gallery.

The expensive part of answering an estimation query is structural —
building the gallery's graphs, expanding them to HSDF, factoring the
MCR problems — and none of it depends on the query.  :class:`EnginePool`
keeps that work alive between requests: per gallery recipe it holds the
built suite and, per analysis method, one shared
:func:`~repro.analysis_engine.build_engines` set; estimators (one per
waiting model) attach to those engines, so every query the server
answers is a warm, weight-only solve exactly like the sweep paths of
PR 1–3.

Galleries are evicted least-recently-used once ``max_galleries`` is
reached — a long-lived server asked about many one-off galleries must
not hoard every expansion forever.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.analysis_engine import AnalysisEngine, build_engines
from repro.core.estimator import ProbabilisticEstimator
from repro.exceptions import ServiceError
from repro.runtime.service import GallerySpec
from repro.sdf.analysis import AnalysisMethod
from repro.telemetry import MetricsRegistry, get_registry


@dataclass
class PoolStats:
    """Observability counters for the server's ``stats`` op."""

    gallery_builds: int = 0
    gallery_evictions: int = 0
    estimator_builds: int = 0


@dataclass
class _GalleryEntry:
    """Everything warm about one gallery."""

    spec: GallerySpec
    graphs: list
    mapping: object
    engines: Dict[AnalysisMethod, Dict[str, AnalysisEngine]] = field(
        default_factory=dict
    )
    estimators: Dict[Tuple[str, str], ProbabilisticEstimator] = field(
        default_factory=dict
    )


class EnginePool:
    """LRU-bounded map of gallery recipes to warm estimators.

    Parameters
    ----------
    max_galleries:
        How many galleries stay warm at once; the least recently used
        entry (suite, engines and estimators together) is dropped when
        a new recipe would exceed the bound.
    backend:
        Array-backend selection forwarded to every estimator built by
        the pool (same values as :func:`repro.backend.get_backend`).
    """

    def __init__(
        self,
        max_galleries: int = 8,
        backend: Optional[object] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_galleries < 1:
            raise ServiceError(f"max_galleries must be >= 1, got {max_galleries}")
        self.max_galleries = max_galleries
        self.backend = backend
        self.stats = PoolStats()
        self._galleries: "OrderedDict[str, _GalleryEntry]" = OrderedDict()
        registry = registry if registry is not None else get_registry()
        self._metric_builds = registry.counter(
            "repro_pool_gallery_builds_total",
            "Gallery suites built (cold structural work) by the engine pool",
        )
        self._metric_evictions = registry.counter(
            "repro_pool_gallery_evictions_total",
            "Warm galleries dropped by the pool's LRU bound",
        )
        self._metric_estimators = registry.counter(
            "repro_pool_estimator_builds_total",
            "Estimators attached to warm engine sets",
        )

    def __len__(self) -> int:
        return len(self._galleries)

    # ------------------------------------------------------------------
    def _entry(self, spec: GallerySpec) -> _GalleryEntry:
        label = spec.label()
        entry = self._galleries.get(label)
        if entry is None:
            suite = spec.build()
            entry = _GalleryEntry(
                spec=spec,
                graphs=list(suite.graphs),
                mapping=suite.mapping,
            )
            self.stats.gallery_builds += 1
            self._metric_builds.inc()
            self._galleries[label] = entry
            while len(self._galleries) > self.max_galleries:
                self._galleries.popitem(last=False)
                self.stats.gallery_evictions += 1
                self._metric_evictions.inc()
        self._galleries.move_to_end(label)
        return entry

    def estimator(
        self, spec: GallerySpec, model: str, method: AnalysisMethod
    ) -> ProbabilisticEstimator:
        """The warm estimator answering ``(gallery, model, method)``.

        Estimators of different waiting models share one engine set per
        (gallery, method): the HSDF expansions and memo caches are per
        graph, not per model, so a mixed-model query stream still pays
        the structural cost once.
        """
        entry = self._entry(spec)
        estimator = entry.estimators.get((model, method.value))
        if estimator is None:
            engines = entry.engines.get(method)
            if engines is None:
                engines = build_engines(entry.graphs, method=method)
                entry.engines[method] = engines
            estimator = ProbabilisticEstimator(
                entry.graphs,
                mapping=entry.mapping,
                waiting_model=model,
                analysis_method=method,
                engines=engines,
                backend=self.backend,
            )
            self.stats.estimator_builds += 1
            self._metric_estimators.inc()
            entry.estimators[(model, method.value)] = estimator
        return estimator

    def invalidate(self, spec: GallerySpec) -> bool:
        """Drop a gallery's warm state (its graphs/qualities changed).

        Returns whether anything was actually held for the recipe.  The
        server pairs this with the result cache's invalidation so stale
        engines and stale cached periods disappear together.
        """
        return self._galleries.pop(spec.label(), None) is not None

    def snapshot(self) -> Dict[str, object]:
        """Pool state for the ``stats`` response (JSON-serializable)."""
        engine_solves = 0
        engine_hits = 0
        for entry in self._galleries.values():
            for engines in entry.engines.values():
                for engine in engines.values():
                    engine_solves += engine.stats.solves
                    engine_hits += engine.stats.cache_hits
        return {
            "galleries": list(self._galleries),
            "gallery_builds": self.stats.gallery_builds,
            "gallery_evictions": self.stats.gallery_evictions,
            "estimator_builds": self.stats.estimator_builds,
            "engine_solves": engine_solves,
            "engine_cache_hits": engine_hits,
        }
