"""LRU result cache of the estimation server.

Keys follow the :class:`~repro.runtime.service.ResultStore` convention
— ``(gallery label, use-case label, waiting model, analysis method)`` —
so a cached service answer names exactly what a sweep-store line names.
Unlike the store this cache is bounded and invalidatable: a gallery
whose graphs or quality ladders changed can be dropped wholesale while
every other gallery's entries stay warm.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.exceptions import ServiceError
from repro.telemetry import MetricsRegistry, get_registry

#: ``(gallery, use_case, model, method)`` — see ``ResultStore.key``.
CacheKey = Tuple[str, str, str, str]


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0


class ResultCache:
    """Bounded LRU map of query keys to response payloads.

    ``max_entries=0`` disables caching entirely (every lookup misses,
    nothing is stored) — the benchmark uses that to measure pure
    micro-batching throughput.
    """

    def __init__(
        self,
        max_entries: int = 4096,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_entries < 0:
            raise ServiceError(f"max_entries must be >= 0, got {max_entries}")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: "OrderedDict[CacheKey, Dict[str, object]]" = (OrderedDict())
        registry = registry if registry is not None else get_registry()
        self._metric_hits = registry.counter(
            "repro_result_cache_hits_total",
            "Estimation queries answered from the service result cache",
        )
        self._metric_misses = registry.counter(
            "repro_result_cache_misses_total",
            "Estimation queries that missed the service result cache",
        )
        self._metric_evictions = registry.counter(
            "repro_result_cache_evictions_total",
            "Cached results dropped by the LRU bound",
        )
        self._metric_invalidations = registry.counter(
            "repro_result_cache_invalidations_total",
            "Cached results dropped by gallery invalidation",
        )

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: CacheKey) -> Optional[Dict[str, object]]:
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            self._metric_misses.inc()
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        self._metric_hits.inc()
        return entry

    def put(self, key: CacheKey, value: Dict[str, object]) -> None:
        if self.max_entries == 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            self._metric_evictions.inc()

    def invalidate_gallery(self, gallery_label: str) -> int:
        """Drop every entry of one gallery; returns how many fell."""
        stale = [key for key in self._entries if key[0] == gallery_label]
        for key in stale:
            del self._entries[key]
        self.stats.invalidations += len(stale)
        self._metric_invalidations.inc(len(stale))
        return len(stale)

    def snapshot(self) -> Dict[str, object]:
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.stats.hits,
            "misses": self.stats.misses,
            "evictions": self.stats.evictions,
            "invalidations": self.stats.invalidations,
        }
