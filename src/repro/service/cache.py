"""LRU result cache of the estimation server.

Keys follow the :class:`~repro.runtime.service.ResultStore` convention
— ``(gallery label, use-case label, waiting model, analysis method)`` —
so a cached service answer names exactly what a sweep-store line names.
Unlike the store this cache is bounded and invalidatable: a gallery
whose graphs or quality ladders changed can be dropped wholesale while
every other gallery's entries stay warm.

The cache is also the unit of fleet *mobility*: one gallery's entries
can be exported as ``(key, payload)`` pairs and imported into another
shard's cache — the router's live-resharding hand-off and cross-shard
replication both move warm answers this way (the ``cache_export`` /
``cache_import`` protocol ops).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ServiceError
from repro.telemetry import MetricsRegistry, get_registry

#: ``(gallery, use_case, model, method)`` — see ``ResultStore.key``.
CacheKey = Tuple[str, str, str, str]


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    imports: int = 0


class ResultCache:
    """Bounded LRU map of query keys to response payloads.

    ``max_entries=0`` disables caching entirely (every lookup misses,
    nothing is stored) — the benchmark uses that to measure pure
    micro-batching throughput.
    """

    def __init__(
        self,
        max_entries: int = 4096,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_entries < 0:
            raise ServiceError(f"max_entries must be >= 0, got {max_entries}")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: "OrderedDict[CacheKey, Dict[str, object]]" = (OrderedDict())
        registry = registry if registry is not None else get_registry()
        self._metric_hits = registry.counter(
            "repro_result_cache_hits_total",
            "Estimation queries answered from the service result cache",
        )
        self._metric_misses = registry.counter(
            "repro_result_cache_misses_total",
            "Estimation queries that missed the service result cache",
        )
        self._metric_evictions = registry.counter(
            "repro_result_cache_evictions_total",
            "Cached results dropped by the LRU bound",
        )
        self._metric_invalidations = registry.counter(
            "repro_result_cache_invalidations_total",
            "Cached results dropped by gallery invalidation",
        )
        self._metric_imports = registry.counter(
            "repro_result_cache_imports_total",
            "Cached results imported from another shard "
            "(resharding hand-off or replication)",
        )

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: CacheKey) -> Optional[Dict[str, object]]:
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            self._metric_misses.inc()
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        self._metric_hits.inc()
        return entry

    def put(self, key: CacheKey, value: Dict[str, object]) -> None:
        if self.max_entries == 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            self._metric_evictions.inc()

    def invalidate_gallery(self, gallery_label: str) -> int:
        """Drop every entry of one gallery; returns how many fell."""
        stale = [key for key in self._entries if key[0] == gallery_label]
        for key in stale:
            del self._entries[key]
        self.stats.invalidations += len(stale)
        self._metric_invalidations.inc(len(stale))
        return len(stale)

    # -- fleet mobility -------------------------------------------------
    def gallery_labels(self) -> List[str]:
        """Every gallery with at least one cached answer (sorted)."""
        return sorted({key[0] for key in self._entries})

    def export_gallery(
        self, gallery_label: str, limit: Optional[int] = None
    ) -> List[Tuple[CacheKey, Dict[str, object]]]:
        """One gallery's entries as portable ``(key, payload)`` pairs.

        Most-recently-used entries first, so a bounded hand-off ships
        the answers most likely to be asked again.  Export does not
        touch LRU order — a resharding sweep must not look like a
        client storm to the eviction policy.
        """
        pairs = [
            (key, value)
            for key, value in reversed(self._entries.items())
            if key[0] == gallery_label
        ]
        return pairs if limit is None else pairs[:limit]

    def import_entries(
        self, entries: "Sequence[Tuple[CacheKey, Dict[str, object]]]"
    ) -> int:
        """Install exported entries (hand-off or replication target).

        Returns how many were stored; a disabled cache
        (``max_entries=0``) imports nothing and reports zero, so the
        caller can tell a hand-off landed on a cache-less shard.
        """
        stored = 0
        for key, payload in entries:
            if self.max_entries == 0:
                break
            self.put(tuple(key), dict(payload))
            stored += 1
        self.stats.imports += stored
        self._metric_imports.inc(stored)
        return stored

    def snapshot(self) -> Dict[str, object]:
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "galleries": self.gallery_labels(),
            "hits": self.stats.hits,
            "misses": self.stats.misses,
            "evictions": self.stats.evictions,
            "invalidations": self.stats.invalidations,
            "imports": self.stats.imports,
        }
