"""The estimation server: concurrent queries in, micro-batched solves out.

:class:`EstimationServer` is the long-lived serving layer over the
library's batched estimation stack.  Clients connect over TCP (or a
stdin/stdout pipe) and ask single-use-case questions; the server does
*not* answer them one by one.  Queries land in a pending queue, and a
batcher coroutine drains whatever has accumulated — while one batch is
being solved in a worker thread, new arrivals pile up into the next —
groups it by ``(gallery, model, method)``, deduplicates identical
questions, and feeds each group to
:meth:`~repro.core.estimator.ProbabilisticEstimator.estimate_many` on
the warm :class:`~repro.service.pool.EnginePool` estimators.  With a
vectorized backend that is the PR-3 array pipeline — one waiting-kernel
evaluation per processor and one
:meth:`~repro.analysis_engine.AnalysisEngine.period_for` call per
application for the *whole batch* — so N concurrent clients cost about
one batched solve instead of N scalar ones.

On top of the batcher sit:

* a bounded LRU :class:`~repro.service.cache.ResultCache` keyed like
  the sweep service's result store, with per-gallery invalidation (the
  ``invalidate`` op drops cached answers *and* the gallery's warm
  engines together, for when graphs or quality ladders change);
* a load-shedding hook reusing the runtime layer's QoS policy
  vocabulary (:func:`~repro.runtime.manager.make_qos_policy`): when the
  pending queue exceeds ``max_pending``, ``reject`` refuses the
  newcomer, ``evict`` sheds the *oldest* pending query instead, and
  ``downgrade`` serves the newcomer under a cheaper waiting model,
  marked as degraded in the response;
* graceful shutdown: a ``shutdown`` request (or :meth:`aclose`) stops
  accepting work, drains every pending query to a real answer, and
  only then tears the loop down.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.backend import get_backend
from repro.exceptions import ReproError, ServiceError
from repro.runtime.service import GallerySpec
from repro.runtime.manager import (
    DowngradePolicy,
    EvictLowestPriorityPolicy,
    QoSPolicy,
    RejectPolicy,
    make_qos_policy,
)
from repro.service.cache import ResultCache
from repro.service.pool import EnginePool
from repro.service.workers import DEFAULT_SPLIT_THRESHOLD, SolverPool
from repro.service.protocol import (
    OPERATIONS,
    PROTOCOL_VERSION,
    PlaceQuery,
    Query,
    decode_message,
    encode_message,
    error_response,
    ok_response,
    parse_cache_entries,
    parse_cache_export,
    parse_estimate,
    parse_estimate_batch,
    parse_gallery,
    parse_place,
    resolve_request_id,
    resolve_trace_id,
)
from repro.telemetry import (
    COUNT_BUCKETS,
    MetricsRegistry,
    Tracer,
    get_registry,
    render_merged,
    snapshot_merged,
)

#: Waiting model served under the ``downgrade`` shedding policy — the
#: cheap direct-composition technique (Eq. 6/7), batch-capable like the
#: default model, so degraded traffic still micro-batches.
DEFAULT_DEGRADED_MODEL = "composability"


class ServerStats:
    """Counters behind the ``stats`` op (all since server start).

    A *view* over the server's metrics registry: every counter is a
    registry instrument (visible in the ``metrics`` exposition), and the
    ``stats`` response reads the very same instruments — the two
    surfaces cannot drift.  Instruments are created ``always=True`` so
    the byte-compatible ``stats`` contract holds even when telemetry is
    disabled via ``REPRO_TELEMETRY=0``.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        counter = registry.counter
        self._requests = counter(
            "repro_service_requests_total",
            "Requests received, any operation",
            always=True,
        )
        self._estimate_requests = counter(
            "repro_service_estimate_requests_total",
            "Estimate requests received",
            always=True,
        )
        self._solved_queries = counter(
            "repro_service_solved_queries_total",
            "Deduplicated queries answered by a batched solve",
            always=True,
        )
        self._batches = counter(
            "repro_service_batches_total",
            "Micro-batches drained by the batcher",
            always=True,
        )
        self._batched_queries = counter(
            "repro_service_batched_queries_total",
            "Pending queries drained into micro-batches",
            always=True,
        )
        self._shed = counter(
            "repro_service_shed_total",
            "Queries refused by the overload policy",
            always=True,
        )
        self._evicted = counter(
            "repro_service_evicted_total",
            "Pending queries evicted by newer arrivals under overload",
            always=True,
        )
        self._degraded = counter(
            "repro_service_degraded_total",
            "Queries downgraded to the cheaper waiting model",
            always=True,
        )
        self._errors = counter(
            "repro_service_errors_total",
            "Requests answered with an error response",
            always=True,
        )
        self._disconnects = counter(
            "repro_service_disconnects_total",
            "Pending queries dropped because their client disconnected",
            always=True,
        )
        self._max_batch = registry.gauge(
            "repro_service_max_batch",
            "Largest micro-batch drained so far",
            always=True,
        )
        self._batch_size = registry.histogram(
            "repro_service_batch_size",
            "Queries per drained micro-batch",
            buckets=COUNT_BUCKETS,
            always=True,
        )
        self._batch_groups = registry.histogram(
            "repro_service_batch_groups",
            "Distinct (gallery, model, method) groups per micro-batch",
            buckets=COUNT_BUCKETS,
            always=True,
        )
        self._queue_wait = registry.histogram(
            "repro_service_queue_wait_seconds",
            "Seconds estimate queries spent in the pending queue",
            always=True,
        )

    # -- mutators (the only writers of these instruments) --------------

    def record_request(self) -> None:
        self._requests.inc()

    def record_estimate_request(self) -> None:
        self._estimate_requests.inc()

    def record_error(self) -> None:
        self._errors.inc()

    def record_shed(self) -> None:
        self._shed.inc()

    def record_evicted(self) -> None:
        self._evicted.inc()

    def record_degraded(self) -> None:
        self._degraded.inc()

    def record_disconnect(self) -> None:
        self._disconnects.inc()

    def record_batch(self, size: int) -> None:
        self._batches.inc()
        self._batched_queries.inc(size)
        self._max_batch.set_max(size)
        self._batch_size.observe(size)

    def record_groups(self, count: int) -> None:
        self._batch_groups.observe(count)

    def record_solved(self, count: int) -> None:
        self._solved_queries.inc(count)

    def observe_queue_wait(self, seconds: float) -> None:
        self._queue_wait.observe(seconds)

    # -- read view (field names of the former dataclass) ----------------

    @property
    def requests(self) -> int:
        return int(self._requests.value)

    @property
    def estimate_requests(self) -> int:
        return int(self._estimate_requests.value)

    @property
    def solved_queries(self) -> int:
        return int(self._solved_queries.value)

    @property
    def batches(self) -> int:
        return int(self._batches.value)

    @property
    def batched_queries(self) -> int:
        return int(self._batched_queries.value)

    @property
    def max_batch(self) -> int:
        return int(self._max_batch.value)

    @property
    def shed(self) -> int:
        return int(self._shed.value)

    @property
    def evicted(self) -> int:
        return int(self._evicted.value)

    @property
    def degraded(self) -> int:
        return int(self._degraded.value)

    @property
    def errors(self) -> int:
        return int(self._errors.value)

    @property
    def disconnects(self) -> int:
        return int(self._disconnects.value)

    @property
    def mean_batch(self) -> float:
        batches = self._batches.value
        return self._batched_queries.value / batches if batches else 0.0


@dataclass
class _PendingQuery:
    """One enqueued question plus where its answer goes."""

    query: Query
    future: "asyncio.Future[Dict[str, object]]"
    requested_model: str
    trace_id: Optional[str] = None
    enqueued: float = 0.0
    #: Connection token of the submitting client — disconnect reaping
    #: drops every pending entry carrying a dead connection's token.
    conn: Optional[object] = None

    @property
    def degraded_from(self) -> Optional[str]:
        if self.query.model == self.requested_model:
            return None
        return self.requested_model


class EstimationServer:
    """Async micro-batching estimation service over warm engine pools.

    Parameters
    ----------
    pool / cache:
        Warm estimator pool and LRU result cache; built with defaults
        when omitted (``ResultCache(0)`` disables caching).
    batch_window:
        Seconds the batcher lingers after the first arrival so
        concurrent queries coalesce; ``0`` drains immediately (batches
        then form only from what accumulates while a solve runs).
    max_batch:
        Most queries drained into one micro-batch.
    max_pending:
        Queue depth that counts as overload; beyond it the shedding
        policy decides.
    shed_policy:
        Runtime QoS policy name or instance
        (:func:`~repro.runtime.manager.make_qos_policy`):
        ``reject``, ``evict`` or ``downgrade``/``downgrade-greedy``.
    degraded_model:
        Waiting model served under ``downgrade`` shedding.
    backend:
        Array-backend selection for the pool's estimators.
    fixed_point_iterations:
        Fixed-point refinement passes every solve runs (the
        ``estimate_many`` knob).  A server-wide setting — it shapes
        every answer the server may cache, so it is configuration like
        the backend, not a per-query field.  On vectorized backends
        refinement iterates the whole micro-batch with a per-row
        convergence mask, so the batching payoff survives
        ``iterations > 1``.
    solver_workers:
        ``0`` (default) keeps the single solver *thread* — engines are
        stateful, one thread serializes every batch.  ``>= 1`` runs a
        :class:`~repro.service.workers.SolverPool` of persistent worker
        *processes* instead (capped at the CPU count): each worker owns
        a warm per-process engine pool, batches dispatch with
        gallery affinity, and large single-gallery groups split across
        workers so multi-core hardware actually solves in parallel.
    split_threshold:
        Solver-pool group size above which one batch fans out across
        workers (ignored in single-thread mode).
    """

    def __init__(
        self,
        pool: Optional[EnginePool] = None,
        cache: Optional[ResultCache] = None,
        batch_window: float = 0.002,
        max_batch: int = 128,
        max_pending: int = 1024,
        shed_policy: "QoSPolicy | str" = "reject",
        degraded_model: str = DEFAULT_DEGRADED_MODEL,
        backend: Optional[object] = None,
        fixed_point_iterations: int = 1,
        solver_workers: int = 0,
        split_threshold: int = DEFAULT_SPLIT_THRESHOLD,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if batch_window < 0:
            raise ServiceError(f"batch_window must be >= 0, got {batch_window}")
        if max_batch < 1:
            raise ServiceError(f"max_batch must be >= 1, got {max_batch}")
        if max_pending < 1:
            raise ServiceError(f"max_pending must be >= 1, got {max_pending}")
        if fixed_point_iterations < 1:
            raise ServiceError(
                "fixed_point_iterations must be >= 1, got "
                f"{fixed_point_iterations}"
            )
        if solver_workers < 0:
            raise ServiceError(
                f"solver_workers must be >= 0, got {solver_workers}"
            )
        # Each server owns its registry: embedded deployments and tests
        # run several servers per process, and the ``stats`` contract
        # ("all since server start") must not bleed across instances.
        # Library-level metrics (engines, estimators) accumulate in the
        # process-global registry; :meth:`render_metrics` merges both.
        self.registry = (
            registry if registry is not None else MetricsRegistry(enabled=True)
        )
        self.tracer = tracer if tracer is not None else Tracer()
        self.pool = (
            pool
            if pool is not None
            else EnginePool(backend=backend, registry=self.registry)
        )
        self.cache = (
            cache if cache is not None else ResultCache(registry=self.registry)
        )
        self.batch_window = batch_window
        self.max_batch = max_batch
        self.max_pending = max_pending
        self.shed_policy = make_qos_policy(shed_policy)
        self.degraded_model = degraded_model
        self.fixed_point_iterations = fixed_point_iterations
        self.solver_workers = solver_workers
        self.split_threshold = split_threshold
        # Worker processes need the backend *name* (names pickle,
        # instances need not); resolve eagerly so a bad name fails in
        # the constructor, not inside a worker.
        self._backend_name: Optional[str] = (
            get_backend(backend).name if backend is not None else None
        )
        self.stats = ServerStats(self.registry)
        self._metric_place = self.registry.counter(
            "repro_service_place_requests_total",
            "Placement searches served",
        )
        self._pending: Deque[_PendingQuery] = deque()
        self._arrival: Optional[asyncio.Event] = None
        self._stop: Optional[asyncio.Event] = None
        self._batcher: Optional["asyncio.Task[None]"] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._workers: Optional[SolverPool] = None
        #: Per-gallery invalidation epoch — the fence that keeps a solve
        #: dispatched *before* an ``invalidate`` from re-populating the
        #: cache *after* it (see :meth:`_invalidate`).
        self._gallery_versions: Dict[str, int] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: "set[asyncio.StreamWriter]" = set()
        self._busy = False
        self._closing = False
        self.address: Optional[Tuple[str, int]] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _ensure_running(self) -> None:
        if self._arrival is None:
            self._arrival = asyncio.Event()
            self._stop = asyncio.Event()
            if self.solver_workers > 0:
                # Multiprocess mode: persistent worker processes with
                # warm per-process engine pools; the in-process
                # EnginePool stays quiescent (nothing mutates it), so
                # stats/invalidate may touch it loop-side directly.
                self._workers = SolverPool(
                    self.solver_workers,
                    backend=self._backend_name,
                    max_galleries=self.pool.max_galleries,
                    split_threshold=self.split_threshold,
                    registry=self.registry,
                    tracer=self.tracer,
                )
            else:
                # One worker thread on purpose: analysis engines are
                # stateful and not thread-safe; a single solver thread
                # serializes every batch while the event loop keeps
                # accepting (and coalescing) new queries.
                self._executor = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix="repro-service"
                )
            self._batcher = asyncio.get_running_loop().create_task(self._batch_loop())

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Listen on TCP ``host:port`` (0 = ephemeral); returns the
        bound address."""
        if self._server is not None:
            raise ServiceError("server already started")
        self._ensure_running()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=host,
            port=port,
            limit=2 * 1024 * 1024,
        )
        bound = self._server.sockets[0].getsockname()
        self.address = (bound[0], bound[1])
        return self.address

    async def serve_stdio(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Serve one already-connected stream (the ``--stdio`` mode)
        until EOF or a ``shutdown`` request, then drain and stop."""
        self._ensure_running()
        try:
            await self._handle_stream(reader, writer, close_writer=False)
        finally:
            await self.aclose()

    async def wait_shutdown(self) -> None:
        """Block until a client sends ``shutdown`` (or :meth:`aclose`)."""
        self._ensure_running()
        assert self._stop is not None
        await self._stop.wait()

    async def aclose(self) -> None:
        """Graceful stop: refuse new queries, drain pending to real
        answers, then tear down the batcher, executor and listeners."""
        self._closing = True
        if self._stop is not None:
            self._stop.set()
        if self._server is not None:
            self._server.close()  # stop accepting; handlers keep going
        if self._arrival is not None:
            self._arrival.set()  # wake the batcher for the final drain
            while self._pending or self._busy:
                await asyncio.sleep(0.005)
            # Give handlers awaiting a just-resolved future a chance to
            # flush their response before their transport goes away.
            await asyncio.sleep(0.02)
        for writer in list(self._writers):
            try:
                writer.close()
            except (ConnectionError, BrokenPipeError):
                pass
        if self._server is not None:
            # On >= 3.12 this also waits for connection handlers; the
            # transports just closed, so their readline sees EOF and
            # every handler returns promptly.
            await self._server.wait_closed()
            self._server = None
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
            self._batcher = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._workers is not None:
            self._workers.shutdown(wait=True)
            self._workers = None

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self._writers.add(writer)
        try:
            await self._handle_stream(reader, writer, close_writer=True)
        finally:
            self._writers.discard(writer)

    async def _handle_stream(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        close_writer: bool,
    ) -> None:
        # Requests are handled *concurrently*: each line becomes a task,
        # so one connection can pipeline many questions into the same
        # micro-batch; responses interleave and clients match them back
        # by id.  The lock serializes writes to the shared transport.
        send_lock = asyncio.Lock()
        tasks: "set[asyncio.Task[None]]" = set()
        loop = asyncio.get_running_loop()
        # Connection token: pending queries carry it so a disconnect
        # can eagerly reap this stream's queue entries (see below).
        conn = object()
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # Line exceeded the stream limit: protocol abuse.
                    await self._send(
                        writer,
                        error_response(None, "message too long"),
                        send_lock,
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    payload = decode_message(line)
                except ReproError as error:
                    self.stats.record_request()
                    self.stats.record_error()
                    await self._send(
                        writer,
                        error_response(None, str(error)),
                        send_lock,
                    )
                    continue
                if payload.get("op") == "shutdown":
                    # Handled inline so this read loop stops cleanly;
                    # in-flight tasks still drain below.
                    await self._serve_payload(payload, writer, send_lock, conn)
                    break
                task = loop.create_task(
                    self._serve_payload(payload, writer, send_lock, conn)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            # The client is gone: its queued questions have no reader.
            # Reap them *now* — a dead entry would otherwise sit in the
            # pending queue occupying ``max_pending`` capacity and
            # could shed a live client's query.
            self._drop_disconnected(conn)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            if close_writer:
                try:
                    writer.close()
                    await writer.wait_closed()
                except (ConnectionError, BrokenPipeError):
                    pass

    def _drop_disconnected(self, conn: object) -> None:
        """Remove a dead connection's entries from the pending queue.

        Their futures are cancelled (nobody can read an answer), the
        serving tasks unwind, and live clients keep the queue capacity
        the dead entries were holding.
        """
        if not self._pending:
            return
        survivors: List[_PendingQuery] = []
        dropped = 0
        for pending in self._pending:
            if pending.conn is conn and not pending.future.done():
                pending.future.cancel()
                self.stats.record_disconnect()
                dropped += 1
            else:
                survivors.append(pending)
        if dropped:
            self._pending.clear()
            self._pending.extend(survivors)

    async def _serve_payload(
        self,
        payload: Dict[str, object],
        writer: asyncio.StreamWriter,
        send_lock: asyncio.Lock,
        conn: Optional[object] = None,
    ) -> None:
        """Answer one decoded request."""
        self.stats.record_request()
        request_id: object = None
        try:
            request_id = resolve_request_id(payload)
            trace_id = resolve_trace_id(payload)
            op = payload.get("op")
            with self.tracer.span(
                "service.request", trace_id=trace_id, op=str(op)
            ):
                if op == "ping":
                    response = ok_response(
                        request_id,
                        {"pong": True, "protocol": PROTOCOL_VERSION},
                    )
                elif op == "estimate":
                    result = await self._submit(
                        parse_estimate(payload), trace_id, conn
                    )
                    if trace_id is not None:
                        # Echo the client's trace id in the payload so a
                        # pipelined client can correlate answer, request
                        # and the server-side spans carrying the id.
                        result["trace"] = trace_id
                    response = ok_response(request_id, result)
                elif op == "estimate_batch":
                    result = await self._submit_batch(
                        parse_estimate_batch(payload), trace_id, conn
                    )
                    if trace_id is not None:
                        result["trace"] = trace_id
                    response = ok_response(request_id, result)
                elif op == "cache_export":
                    response = ok_response(
                        request_id, self._cache_export(payload)
                    )
                elif op == "cache_import":
                    response = ok_response(
                        request_id,
                        {
                            "imported": self.cache.import_entries(
                                parse_cache_entries(payload)
                            )
                        },
                    )
                elif op == "place":
                    result = await self._place(
                        parse_place(payload), trace_id
                    )
                    if trace_id is not None:
                        result["trace"] = trace_id
                    response = ok_response(request_id, result)
                elif op == "stats":
                    response = ok_response(request_id, await self._stats())
                elif op == "metrics":
                    response = ok_response(
                        request_id,
                        {
                            "exposition": self.render_metrics(),
                            "snapshot": self.metrics_snapshot(),
                        },
                    )
                elif op == "invalidate":
                    response = ok_response(
                        request_id,
                        await self._invalidate(
                            parse_gallery(payload.get("gallery"))
                        ),
                    )
                elif op == "shutdown":
                    response = ok_response(request_id, {"stopping": True})
                else:
                    raise ServiceError(
                        f"unknown op {op!r} "
                        f"(expected one of {', '.join(OPERATIONS)})"
                    )
        except Exception as error:
            # Every request gets *an* answer — an unexpected exception
            # must not leave the client waiting on a response forever.
            self.stats.record_error()
            response = error_response(request_id, str(error))
            op = None
        try:
            await self._send(writer, response, send_lock)
        except (ConnectionError, BrokenPipeError):
            pass  # client went away; the response has nowhere to go
        finally:
            # An accepted shutdown stops the server even when the
            # requester vanished before reading the acknowledgement.
            if op == "shutdown":
                assert self._stop is not None
                self._stop.set()

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        payload: Dict[str, object],
        send_lock: asyncio.Lock,
    ) -> None:
        async with send_lock:
            writer.write(encode_message(payload))
            await writer.drain()

    # ------------------------------------------------------------------
    # Query intake: cache fast path, overload shedding, enqueue
    # ------------------------------------------------------------------
    async def _submit(
        self,
        query: Query,
        trace_id: Optional[str] = None,
        conn: Optional[object] = None,
    ) -> Dict[str, object]:
        self.stats.record_estimate_request()
        if self._closing:
            raise ServiceError("server is shutting down")
        cached = self.cache.get(query.key)
        if cached is not None:
            return dict(cached, cached=True)
        requested_model = query.model
        if len(self._pending) >= self.max_pending:
            query = self._shed(query)
        pending = _PendingQuery(
            query=query,
            future=asyncio.get_running_loop().create_future(),
            requested_model=requested_model,
            trace_id=trace_id,
            enqueued=time.perf_counter(),
            conn=conn,
        )
        self._pending.append(pending)
        assert self._arrival is not None
        self._arrival.set()
        return await pending.future

    async def _submit_batch(
        self,
        queries: List[Query],
        trace_id: Optional[str] = None,
        conn: Optional[object] = None,
    ) -> Dict[str, object]:
        """The ``estimate_batch`` op: N same-gallery questions in one
        framed message (the router micro-batcher's shard hop).

        Each question goes through the ordinary :meth:`_submit` intake
        — cache fast path, shedding, pending queue — so a batch member
        is indistinguishable from a single estimate once enqueued, and
        they all coalesce into the same micro-batch.  Failures are
        per-member (``{"error": ...}`` in that member's slot): one shed
        or failed question must not poison its batch-mates' answers.
        """

        async def one(query: Query) -> Dict[str, object]:
            try:
                return await self._submit(query, trace_id, conn)
            except asyncio.CancelledError:
                raise
            except Exception as error:
                return {"error": str(error)}

        results = await asyncio.gather(*[one(query) for query in queries])
        return {"results": list(results)}

    def _cache_export(self, payload: Dict[str, object]) -> Dict[str, object]:
        """The ``cache_export`` op: portable warm answers per gallery.

        The response always names every cached gallery, so a router
        planning a hand-off can learn what this shard holds and fetch
        the moving galleries' entries in the same round-trip.
        """
        galleries, limit = parse_cache_export(payload)
        cached = self.cache.gallery_labels()
        wanted = cached if galleries is None else [
            label for label in galleries if label in set(cached)
        ]
        entries = []
        for label in wanted:
            for key, value in self.cache.export_gallery(label, limit=limit):
                entries.append([list(key), value])
        return {"galleries": cached, "entries": entries}

    def _shed(self, query: Query) -> Query:
        """Apply the overload policy; returns the (possibly degraded)
        query to enqueue, or raises for the rejected newcomer."""
        policy = self.shed_policy
        if isinstance(policy, EvictLowestPriorityPolicy):
            victim = self._pending.popleft()
            self.stats.record_evicted()
            victim.future.set_exception(
                ServiceError(
                    f"overloaded: evicted by a newer query while "
                    f"{self.max_pending} queries were pending "
                    f"({policy.name} policy)"
                )
            )
            return query
        if isinstance(policy, DowngradePolicy):
            if query.model != self.degraded_model:
                self.stats.record_degraded()
                return query.degraded(self.degraded_model)
            # Already at the degraded model: there is nothing cheaper
            # to serve, so the queue bound must still hold — fall back
            # to rejecting, like the runtime policy's "no feasible
            # assignment" outcome.
            self.stats.record_shed()
            raise ServiceError(
                f"overloaded: {self.max_pending} queries pending and "
                f"{query.model!r} is already the degraded model "
                f"({policy.name} policy)"
            )
        if not isinstance(policy, RejectPolicy):  # pragma: no cover
            raise ServiceError(
                f"shedding has no mapping for QoS policy {policy.name!r}"
            )
        self.stats.record_shed()
        raise ServiceError(
            f"overloaded: {self.max_pending} queries pending "
            f"({policy.name} policy)"
        )

    async def _in_solver_thread(self, call, *args):
        """Run a pool-touching call on the solver thread.

        The pool is mutated by :meth:`_solve_group` on the single
        worker thread; routing ``stats``/``invalidate`` pool access
        through the same executor serializes it against in-flight
        solves instead of racing their dict mutations.
        """
        if self._executor is None:  # quiesced (before start/after close)
            return call(*args)
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, call, *args
        )

    async def _stats(self) -> Dict[str, object]:
        """The ``stats`` op: loop-side counters + thread-safe pool view."""
        workers = (
            await self._workers.snapshot() if self._workers is not None else None
        )
        return self.snapshot(
            pool=await self._in_solver_thread(self.pool.snapshot),
            workers=workers,
        )

    async def _place(
        self, query: PlaceQuery, trace_id: Optional[str] = None
    ) -> Dict[str, object]:
        """The ``place`` op: a placement search over a named gallery.

        Runs on the default executor with its own fresh analysis
        engines — placement is a control-plane question (rare, heavier
        than one estimate) and must not contend for the solver thread's
        warm engine pool or block the event loop.  The search is
        seeded and wall-clock-free, so the JSON it returns is
        byte-identical to an in-process :func:`repro.search.place` call
        with the same parameters — which also makes the op idempotent
        and safe for router failover retries.
        """
        from repro.search import place as run_place

        def _run() -> Dict[str, object]:
            suite = query.gallery.build()
            result = run_place(
                list(suite.graphs),
                platform=suite.platform,
                targets=query.targets,
                slack=query.slack,
                strategy=query.strategy,
                model=query.model,
                method=query.method,
                objective=query.objective,
                seed=query.seed,
                mappings=query.mappings,
                weight_choices=query.weights,
                priority_levels=query.priority_levels,
            )
            return result.to_json()

        loop = asyncio.get_running_loop()
        with self.tracer.span(
            "service.place",
            trace_id=trace_id,
            gallery=query.gallery.label(),
            strategy=query.strategy,
        ):
            placement = await loop.run_in_executor(None, _run)
        self._metric_place.inc()
        return {
            "gallery": query.gallery.label(),
            "strategy": query.strategy,
            "placement": placement,
        }

    async def _invalidate(self, spec: GallerySpec) -> Dict[str, object]:
        """Drop one gallery's cached answers and warm engines.

        The version bump happens *first*, synchronously on the loop: a
        batch that was dispatched to a solver before this invalidation
        carries the old version, and :meth:`_run_batch` refuses to
        cache its (potentially stale-engine) results — the fence that
        closes the solve-in-flight-during-invalidate race.
        """
        label = spec.label()
        self._gallery_versions[label] = self._gallery_versions.get(label, 0) + 1
        dropped_entries = self.cache.invalidate_gallery(label)
        dropped_pool = await self._in_solver_thread(self.pool.invalidate, spec)
        result: Dict[str, object] = {
            "gallery": label,
            "pool_dropped": dropped_pool,
            "cache_dropped": dropped_entries,
        }
        if self._workers is not None:
            result["workers_dropped"] = await self._workers.invalidate(spec)
        return result

    # ------------------------------------------------------------------
    # The batcher
    # ------------------------------------------------------------------
    async def _batch_loop(self) -> None:
        assert self._arrival is not None
        while True:
            if not self._pending:
                self._arrival.clear()
                await self._arrival.wait()
            if (
                self.batch_window > 0
                and not self._closing
                and len(self._pending) < self.max_batch
            ):
                # Linger briefly: concurrent clients that fired
                # "simultaneously" land in this batch, not the next.
                await asyncio.sleep(self.batch_window)
            batch: List[_PendingQuery] = []
            while self._pending and len(batch) < self.max_batch:
                batch.append(self._pending.popleft())
            if not batch:
                continue
            self._busy = True
            try:
                await self._run_batch(batch)
            finally:
                self._busy = False

    async def _run_batch(self, batch: List[_PendingQuery]) -> None:
        drained = time.perf_counter()
        for pending in batch:
            wait = drained - pending.enqueued
            self.stats.observe_queue_wait(wait)
            # Retroactive per-query span: the wait already happened, so
            # it is recorded as a finished interval carrying the
            # client's trace id.
            self.tracer.record(
                "service.queue_wait",
                start=pending.enqueued,
                duration=wait,
                trace_id=pending.trace_id,
            )
        self.stats.record_batch(len(batch))
        groups: Dict[Tuple[str, str, str], List[_PendingQuery]] = {}
        for pending in batch:
            groups.setdefault(pending.query.group, []).append(pending)
        self.stats.record_groups(len(groups))
        with self.tracer.span(
            "service.batch", size=len(batch), groups=len(groups)
        ):
            if self._workers is not None:
                # Multiprocess mode: distinct groups hash to distinct
                # workers, so solving them concurrently uses the fleet;
                # the single solver thread below could only serialize.
                await asyncio.gather(
                    *[
                        self._dispatch_group(members, len(batch))
                        for members in groups.values()
                    ]
                )
            else:
                for members in groups.values():
                    await self._dispatch_group(members, len(batch))

    async def _dispatch_group(
        self, members: List[_PendingQuery], batch_size: int
    ) -> None:
        """Solve one ``(gallery, model, method)`` group and resolve its
        members' futures."""
        # Deduplicate identical questions: N clients asking the
        # same thing inside one batch cost one estimate.
        unique: Dict[Tuple[str, str, str, str], Query] = {}
        for pending in members:
            unique.setdefault(pending.query.key, pending.query)
        queries = list(unique.values())
        trace_ids = tuple(
            dict.fromkeys(
                pending.trace_id
                for pending in members
                if pending.trace_id is not None
            )
        )
        # Fence: remember the gallery's invalidation epoch *before* the
        # solve leaves the loop.  An ``invalidate`` arriving while the
        # solve is in flight bumps the epoch, and the stale results
        # then answer their waiters but never enter the cache.
        gallery_label = queries[0].gallery.label()
        version = self._gallery_versions.get(gallery_label, 0)
        try:
            if self._workers is not None:
                self.stats.record_solved(len(queries))
                with self.tracer.span(
                    "service.solve",
                    trace_id=trace_ids[0] if len(trace_ids) == 1 else None,
                    gallery=gallery_label,
                    model=queries[0].model,
                    method=queries[0].method.value,
                    queries=len(queries),
                    trace_ids=list(trace_ids),
                ):
                    payloads = await self._workers.solve(
                        queries, iterations=self.fixed_point_iterations
                    )
            else:
                assert self._executor is not None
                payloads = await asyncio.get_running_loop().run_in_executor(
                    self._executor, self._solve_group, queries, trace_ids
                )
        except Exception as error:
            # Any solver failure answers the whole group; the
            # batcher itself must survive to serve the next batch.
            for pending in members:
                if not pending.future.done():
                    pending.future.set_exception(
                        ServiceError(str(error))
                    )
            return
        by_key = dict(zip(unique.keys(), payloads))
        fresh = self._gallery_versions.get(gallery_label, 0) == version
        for key, payload in by_key.items():
            payload["batch_size"] = batch_size
            if fresh:
                self.cache.put(key, payload)
        for pending in members:
            if pending.future.done():  # evicted or disconnected mid-flight
                continue
            payload = dict(
                by_key[pending.query.key],
                cached=False,
                degraded=pending.degraded_from,
            )
            pending.future.set_result(payload)

    def _solve_group(
        self, queries: List[Query], trace_ids: Tuple[str, ...] = ()
    ) -> List[Dict[str, object]]:
        """Worker-thread entry: one batched solve for one group.

        All queries share gallery, model and method by construction, so
        one warm estimator's :meth:`estimate_many` covers the group —
        the micro-batching payoff.
        """
        self.stats.record_solved(len(queries))
        first = queries[0]
        with self.tracer.span(
            "service.solve",
            trace_id=trace_ids[0] if len(trace_ids) == 1 else None,
            gallery=first.gallery.label(),
            model=first.model,
            method=first.method.value,
            queries=len(queries),
            trace_ids=list(trace_ids),
        ):
            estimator = self.pool.estimator(
                first.gallery, first.model, first.method
            )
            results = estimator.estimate_many(
                [query.use_case for query in queries],
                iterations=self.fixed_point_iterations,
            )
        payloads: List[Dict[str, object]] = []
        for query, result in zip(queries, results):
            payloads.append(
                {
                    "gallery": query.gallery.label(),
                    "use_case": list(query.use_case.applications),
                    "model": query.model,
                    "method": query.method.value,
                    "periods": dict(result.periods),
                    "isolation": dict(result.isolation_periods),
                }
            )
        return payloads

    # ------------------------------------------------------------------
    def render_metrics(self) -> str:
        """Prometheus exposition: this server's registry merged with the
        process-global one (engine, estimator and DES counters)."""
        return render_merged(self.registry, get_registry())

    def metrics_snapshot(self) -> Dict[str, object]:
        """JSON snapshot of the same merged registries."""
        return snapshot_merged(self.registry, get_registry())

    def snapshot(
        self,
        pool: Optional[Dict[str, object]] = None,
        workers: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        """Everything the ``stats`` op reports (JSON-serializable).

        Safe to call directly on a quiesced server (tests, benches);
        while solves are in flight the protocol path supplies ``pool``
        captured on the solver thread instead (see
        :meth:`_in_solver_thread`).  ``workers`` is the solver pool's
        deep view when the ``stats`` op gathered one; the direct path
        reports the loop-side view.
        """
        if workers is None and self._workers is not None:
            workers = self._workers.local_snapshot()
        return {
            "protocol": PROTOCOL_VERSION,
            "requests": self.stats.requests,
            "estimate_requests": self.stats.estimate_requests,
            "solved_queries": self.stats.solved_queries,
            "batches": self.stats.batches,
            "batched_queries": self.stats.batched_queries,
            "mean_batch": self.stats.mean_batch,
            "max_batch": self.stats.max_batch,
            "pending": len(self._pending),
            "shed": self.stats.shed,
            "evicted": self.stats.evicted,
            "degraded": self.stats.degraded,
            "errors": self.stats.errors,
            "disconnects": self.stats.disconnects,
            "shed_policy": self.shed_policy.name,
            "cache": self.cache.snapshot(),
            "pool": pool if pool is not None else self.pool.snapshot(),
            "workers": workers,
        }
