"""The multiprocess solver pool behind the estimation server.

The micro-batcher's original solver was one worker *thread* — engines
are stateful, so one thread serialized every batch, and the 3.8x
micro-batching win was capped at a single core.  :class:`SolverPool`
lifts that cap: each worker slot is its own single-process
``ProcessPoolExecutor`` whose long-lived worker owns a warm per-process
:class:`~repro.service.pool.EnginePool` (the same worker-rebuilds-once
machinery as :mod:`repro.runtime.service`'s sweep workers, made
persistent), so batches of different galleries solve genuinely in
parallel while every gallery's structural work is still paid once.

Placement is gallery-affine via the consistent-hash ring
(:class:`~repro.service.hashring.HashRing`): a gallery's batches land
on one home worker whose engine pool stays warm.  Large single-gallery
batches would leave the other cores idle, so a group bigger than
``split_threshold`` is *split* across workers, fanning out from the
home worker along the ring — the affinity worker keeps the warmest
pool, spill workers warm up only under load that justifies them.

Workers are processes and processes die.  A ``BrokenProcessPool`` on a
slot respawns that slot's executor (fresh process, cold pool) and
re-drives every batch that was in flight on it — estimates are
idempotent, so re-driving is always safe and no pending future is ever
dropped.  Respawns, per-worker batch counts and solve spans are
exported through the server's registry as ``repro_service_worker_*``.
"""

from __future__ import annotations

import asyncio
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ServiceError
from repro.runtime.service import GallerySpec
from repro.sdf.analysis import AnalysisMethod
from repro.service.hashring import HashRing
from repro.service.protocol import Query
from repro.telemetry import MetricsRegistry, Tracer, get_registry

#: Queries per group below which a batch stays whole on its home
#: worker.  Splitting pays one IPC round-trip per extra worker, so tiny
#: groups are cheaper warm-and-serial than cold-and-parallel.
DEFAULT_SPLIT_THRESHOLD = 16

#: How often a broken slot may be respawned for one submitted batch
#: before the failure is reported to the queries instead of retried —
#: a batch that kills every process it touches must not respawn
#: workers forever.
MAX_REDRIVES = 2

# ----------------------------------------------------------------------
# Worker-process side: module globals, initialized once per process.
# ----------------------------------------------------------------------
_WORKER_POOL = None
_WORKER_INDEX: int = -1
#: Gallery labels whose invalidation was replayed into this process at
#: spawn time (see :meth:`SolverPool._executor`) — surfaced by
#: :func:`_worker_snapshot` so tests can assert the replay happened.
_WORKER_REPLAYED: List[str] = []


def _init_worker(
    index: int, backend: Optional[str], max_galleries: int
) -> None:
    """Process initializer: build this worker's warm engine pool."""
    global _WORKER_POOL, _WORKER_INDEX
    from repro.service.pool import EnginePool

    _WORKER_INDEX = index
    _WORKER_POOL = EnginePool(
        max_galleries=max_galleries, backend=backend
    )


def _worker_solve(
    gallery: GallerySpec,
    model: str,
    method_value: str,
    use_cases: Sequence[Tuple[str, ...]],
    iterations: int,
) -> List[Dict[str, object]]:
    """Worker entry: one batched solve on the process-local pool."""
    from repro.platform.usecase import UseCase

    assert _WORKER_POOL is not None, "worker used before initialization"
    estimator = _WORKER_POOL.estimator(
        gallery, model, AnalysisMethod(method_value)
    )
    results = estimator.estimate_many(
        [UseCase(tuple(names)) for names in use_cases],
        iterations=iterations,
    )
    return [
        {
            "gallery": gallery.label(),
            "use_case": list(result.use_case.applications),
            "model": model,
            "method": method_value,
            "periods": dict(result.periods),
            "isolation": dict(result.isolation_periods),
        }
        for result in results
    ]


def _worker_invalidate(gallery: GallerySpec) -> bool:
    """Drop one gallery's warm engines in this worker process."""
    assert _WORKER_POOL is not None, "worker used before initialization"
    return _WORKER_POOL.invalidate(gallery)


def _worker_replay_invalidations(
    galleries: Sequence[GallerySpec],
) -> int:
    """Replay the pool's invalidation history into a fresh process.

    Submitted as the very first job of every newly spawned slot (the
    single-worker executor is FIFO, so it runs before any solve), this
    guarantees a slot spawned *after* an ``invalidate`` can never serve
    a pre-invalidate warm engine — however the process came to exist.
    """
    assert _WORKER_POOL is not None, "worker used before initialization"
    dropped = 0
    for gallery in galleries:
        if _WORKER_POOL.invalidate(gallery):
            dropped += 1
        _WORKER_REPLAYED.append(gallery.label())
    return dropped


def _worker_snapshot() -> Dict[str, object]:
    """This worker's pool counters, for the ``stats`` op."""
    assert _WORKER_POOL is not None, "worker used before initialization"
    return dict(
        _WORKER_POOL.snapshot(),
        worker=_WORKER_INDEX,
        replayed_invalidations=list(_WORKER_REPLAYED),
    )


# ----------------------------------------------------------------------
# Loop side
# ----------------------------------------------------------------------
class SolverPool:
    """N persistent solver processes with gallery-affine dispatch.

    Parameters
    ----------
    workers:
        Worker process count; capped at ``os.cpu_count()`` — more
        processes than cores only adds context-switching to a
        CPU-bound solver.
    backend:
        Array-backend *name* forwarded to every worker's estimators
        (names pickle; instances need not).
    max_galleries:
        Per-worker engine-pool LRU bound.
    split_threshold:
        Group size above which one batch fans out across workers.
    """

    def __init__(
        self,
        workers: int,
        backend: Optional[str] = None,
        max_galleries: int = 8,
        split_threshold: int = DEFAULT_SPLIT_THRESHOLD,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        if split_threshold < 1:
            raise ServiceError(
                f"split_threshold must be >= 1, got {split_threshold}"
            )
        self.workers = min(workers, os.cpu_count() or 1)
        self.backend = backend
        self.max_galleries = max_galleries
        self.split_threshold = split_threshold
        self.tracer = tracer if tracer is not None else Tracer()
        registry = registry if registry is not None else get_registry()
        self._metric_batches = registry.counter(
            "repro_service_worker_batches_total",
            "Batches dispatched to solver-pool workers",
            always=True,
        )
        self._metric_queries = registry.counter(
            "repro_service_worker_queries_total",
            "Queries solved by solver-pool workers",
            always=True,
        )
        self._metric_splits = registry.counter(
            "repro_service_worker_splits_total",
            "Groups fanned out across several workers for parallelism",
            always=True,
        )
        self._metric_respawns = registry.counter(
            "repro_service_worker_respawns_total",
            "Worker processes respawned after a crash",
            always=True,
        )
        self._metric_redrives = registry.counter(
            "repro_service_worker_redrives_total",
            "In-flight batches re-driven after a worker crash",
            always=True,
        )
        self._metric_invalidation_replays = registry.counter(
            "repro_service_worker_invalidation_replays_total",
            "Invalidation histories replayed into freshly spawned slots",
            always=True,
        )
        # Ring nodes are worker *slots*; a respawned slot keeps its
        # name, so affinity survives crashes.
        self._ring = HashRing([f"worker-{i}" for i in range(self.workers)])
        self._executors: List[Optional[ProcessPoolExecutor]] = [
            None for _ in range(self.workers)
        ]
        self._generations: List[int] = [0 for _ in range(self.workers)]
        self._batch_counts: List[int] = [0 for _ in range(self.workers)]
        #: Every gallery ever invalidated on this pool, by label.  A
        #: slot that spawns (or respawns) later replays this history
        #: before its first solve — ``invalidate`` awaiting only the
        #: already-spawned slots must not leave future slots a way to
        #: serve pre-invalidate warm state.
        self._invalidated: Dict[str, GallerySpec] = {}
        self._closed = False

    # -- slot management ------------------------------------------------
    def _executor(self, slot: int) -> ProcessPoolExecutor:
        if self._closed:
            raise ServiceError("solver pool is closed")
        executor = self._executors[slot]
        if executor is None:
            executor = ProcessPoolExecutor(
                max_workers=1,
                initializer=_init_worker,
                initargs=(slot, self.backend, self.max_galleries),
            )
            self._executors[slot] = executor
            if self._invalidated:
                # First job on the fresh slot: replay the invalidation
                # history (FIFO beats any solve submitted afterwards).
                executor.submit(
                    _worker_replay_invalidations,
                    list(self._invalidated.values()),
                )
                self._metric_invalidation_replays.inc()
        return executor

    def _respawn(self, slot: int, observed_generation: int) -> None:
        """Replace a broken slot executor exactly once per crash.

        Several batches can be in flight on one slot when its process
        dies; each sees ``BrokenProcessPool`` and calls in here, but
        only the first caller (whose observed generation still matches)
        actually pays the respawn — the rest just re-drive onto the
        fresh executor.
        """
        if self._generations[slot] != observed_generation:
            return
        self._generations[slot] += 1
        broken = self._executors[slot]
        self._executors[slot] = None
        self._metric_respawns.inc()
        if broken is not None:
            broken.shutdown(wait=False)

    def worker_for(self, gallery_label: str) -> int:
        """The home worker slot of a gallery (stable, affinity)."""
        return int(self._ring.node_for(gallery_label).split("-")[1])

    def _plan(self, queries: List[Query]) -> List[Tuple[int, List[Query]]]:
        """Assign one group's queries to worker slots.

        Small groups stay whole on the home worker; a group larger than
        ``split_threshold`` splits into roughly equal chunks fanning
        out from the home worker along the ring's preference order.
        """
        label = queries[0].gallery.label()
        order = [
            int(node.split("-")[1]) for node in self._ring.nodes_for(label)
        ]
        if len(queries) <= self.split_threshold or len(order) == 1:
            return [(order[0], queries)]
        chunks = min(
            len(order),
            (len(queries) + self.split_threshold - 1) // self.split_threshold,
        )
        self._metric_splits.inc()
        return [
            (order[index], queries[index::chunks]) for index in range(chunks)
        ]

    # -- solving --------------------------------------------------------
    async def solve(
        self, queries: List[Query], iterations: int = 1
    ) -> List[Dict[str, object]]:
        """Solve one ``(gallery, model, method)`` group; returns one
        payload per query, in query order."""
        plan = self._plan(queries)
        chunk_payloads = await asyncio.gather(
            *[
                self._solve_chunk(slot, chunk, iterations)
                for slot, chunk in plan
            ]
        )
        if len(plan) == 1:
            return chunk_payloads[0]
        # Undo the strided split: chunk i holds queries[i::chunks].
        merged: List[Optional[Dict[str, object]]] = [None] * len(queries)
        for index, payloads in enumerate(chunk_payloads):
            for offset, payload in enumerate(payloads):
                merged[index + offset * len(plan)] = payload
        assert all(payload is not None for payload in merged)
        return merged  # type: ignore[return-value]

    async def _solve_chunk(
        self, slot: int, queries: List[Query], iterations: int
    ) -> List[Dict[str, object]]:
        first = queries[0]
        loop = asyncio.get_running_loop()
        for attempt in range(MAX_REDRIVES + 1):
            generation = self._generations[slot]
            executor = self._executor(slot)
            try:
                with self.tracer.span(
                    "service.worker_solve",
                    worker=slot,
                    gallery=first.gallery.label(),
                    model=first.model,
                    queries=len(queries),
                    attempt=attempt,
                ):
                    payloads = await loop.run_in_executor(
                        executor,
                        _worker_solve,
                        first.gallery,
                        first.model,
                        first.method.value,
                        [tuple(q.use_case.applications) for q in queries],
                        iterations,
                    )
            except BrokenProcessPool:
                # The worker process died under this batch.  Respawn
                # the slot (once across concurrent observers) and
                # re-drive: estimates are idempotent, the queries lose
                # nothing but time.
                self._respawn(slot, generation)
                if attempt == MAX_REDRIVES:
                    raise ServiceError(
                        f"solver worker {slot} died "
                        f"{MAX_REDRIVES + 1} times under one batch"
                    ) from None
                self._metric_redrives.inc()
                continue
            self._metric_batches.inc()
            self._metric_queries.inc(len(queries))
            self._batch_counts[slot] += 1
            return payloads
        raise AssertionError("unreachable")  # pragma: no cover

    # -- maintenance ----------------------------------------------------
    async def invalidate(self, gallery: GallerySpec) -> int:
        """Drop a gallery's warm engines in *every* live worker;
        returns how many workers actually held it.

        The gallery is also recorded so slots spawned *after* this call
        replay the invalidation before their first solve — never-spawned
        slots are skipped below, which would otherwise be a hole."""
        self._invalidated[gallery.label()] = gallery
        loop = asyncio.get_running_loop()
        dropped = 0
        for slot in range(self.workers):
            if self._executors[slot] is None:
                continue  # never spawned: nothing warm to drop
            try:
                if await loop.run_in_executor(
                    self._executors[slot], _worker_invalidate, gallery
                ):
                    dropped += 1
            except BrokenProcessPool:
                # A dead worker holds nothing warm; the next solve on
                # this slot respawns it.
                self._respawn(slot, self._generations[slot])
        return dropped

    def local_snapshot(self) -> Dict[str, object]:
        """Loop-side pool view — no worker round-trips, safe anywhere."""
        return {
            "workers": self.workers,
            "split_threshold": self.split_threshold,
            "respawns": int(self._metric_respawns.value),
            "redrives": int(self._metric_redrives.value),
            "invalidation_replays": int(
                self._metric_invalidation_replays.value
            ),
            "invalidated_galleries": sorted(self._invalidated),
            "per_worker": [
                {
                    "worker": slot,
                    "spawned": self._executors[slot] is not None,
                    "batches": self._batch_counts[slot],
                }
                for slot in range(self.workers)
            ],
        }

    async def snapshot(self) -> Dict[str, object]:
        """Pool-wide view for the ``stats`` op, enriched with each live
        worker's in-process engine-pool counters."""
        loop = asyncio.get_running_loop()
        view = self.local_snapshot()
        for entry in view["per_worker"]:  # type: ignore[union-attr]
            slot = entry["worker"]
            if self._executors[slot] is not None:
                try:
                    entry.update(
                        await loop.run_in_executor(
                            self._executors[slot], _worker_snapshot
                        )
                    )
                except BrokenProcessPool:
                    entry["spawned"] = False
        return view

    def shutdown(self, wait: bool = True) -> None:
        """Join every worker process (idempotent)."""
        self._closed = True
        for slot, executor in enumerate(self._executors):
            if executor is not None:
                executor.shutdown(wait=wait)
                self._executors[slot] = None
