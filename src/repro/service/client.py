"""Client library of the estimation service.

:class:`ServiceClient` wraps one connection's request/response cycle:
each call sends one JSON line, awaits the matching response (ids are
checked) and either returns the ``result`` payload or raises
:class:`~repro.exceptions.ServiceError` with the server's message.
Micro-batching needs *concurrent* questions, which one strictly
sequential client cannot produce — open several clients (see
:mod:`repro.experiments.service_load`) or interleave calls from
multiple coroutines via :meth:`estimate`, which is safe to invoke
concurrently from one client: requests are pipelined on the socket and
responses are matched back by id.

The convenience :func:`estimate_once` does connect / ask / close in one
call for scripts and tests.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Dict, Optional, Sequence, Tuple

from repro.exceptions import ServiceConnectionError, ServiceError
from repro.service.protocol import (
    decode_message,
    encode_message,
    raise_for_response,
)


class ServiceClient:
    """One connection to an :class:`~repro.service.server
    .EstimationServer`."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)
        self._lock = asyncio.Lock()
        self._responses: Dict[int, Dict[str, object]] = {}

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServiceClient":
        # Match the server's read limit: responses are bounded by the
        # protocol's MAX_MESSAGE_BYTES (1 MiB), well above asyncio's
        # default 64 KiB readline limit.
        reader, writer = await asyncio.open_connection(
            host, port, limit=2 * 1024 * 1024
        )
        return cls(reader, writer)

    async def aclose(self) -> None:
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass

    # ------------------------------------------------------------------
    async def _call(self, payload: Dict[str, object]) -> Dict[str, object]:
        request_id = next(self._ids)
        payload = dict(payload, id=request_id)
        try:
            self._writer.write(encode_message(payload))
            await self._writer.drain()
        except (ConnectionError, BrokenPipeError) as error:
            raise ServiceConnectionError(
                f"connection lost while sending a request: {error}"
            ) from None
        # One coroutine at a time reads the socket and files responses
        # by id; everyone else waits for theirs to be filed.  This lets
        # several coroutines share one client (pipelined requests)
        # without a background reader task.
        while request_id not in self._responses:
            async with self._lock:
                if request_id in self._responses:
                    break
                try:
                    line = await self._reader.readline()
                except (ConnectionError, BrokenPipeError) as error:
                    raise ServiceConnectionError(
                        f"connection lost while awaiting a response: {error}"
                    ) from None
                if not line:
                    raise ServiceConnectionError(
                        "connection closed before a response arrived"
                    )
                response = decode_message(line)
                answered = response.get("id")
                if not isinstance(answered, int):
                    raise ServiceError(f"response with unexpected id {answered!r}")
                self._responses[answered] = response
        return raise_for_response(self._responses.pop(request_id))

    # ------------------------------------------------------------------
    async def ping(self) -> Dict[str, object]:
        return await self._call({"op": "ping"})

    async def estimate(
        self,
        use_case: Sequence[str],
        gallery: Optional[Dict[str, object]] = None,
        model: str = "second_order",
        method: str = "mcr",
        trace: Optional[str] = None,
    ) -> Dict[str, object]:
        """Ask for one use-case's periods; returns the result payload
        (periods, isolation, cached/degraded markers, batch size).

        ``trace`` is an optional opaque id the server stamps on every
        span this request produces and echoes back in the result, so
        pipelined callers can correlate answers with server timelines.
        """
        payload: Dict[str, object] = {
            "op": "estimate",
            "gallery": dict(gallery) if gallery else {},
            "use_case": list(use_case),
            "model": model,
            "method": method,
        }
        if trace is not None:
            payload["trace"] = trace
        return await self._call(payload)

    async def place(
        self,
        gallery: Optional[Dict[str, object]] = None,
        strategy: str = "greedy",
        model: str = "wrr",
        objective: str = "total_period",
        seed: int = 0,
        slack: float = 2.5,
        targets: Optional[Dict[str, float]] = None,
        mappings: Optional[Sequence[str]] = None,
        weights: Optional[Sequence[int]] = (1, 2),
        priority_levels: Optional[Sequence[float]] = None,
        method: str = "mcr",
        trace: Optional[str] = None,
    ) -> Dict[str, object]:
        """Ask for the best feasible placement of a named gallery.

        The result payload carries the full ``placement`` (a
        :class:`~repro.search.result.PlacementResult` as JSON) — the
        search is seeded and deterministic, so the placement is
        byte-identical to an in-process :func:`repro.search.place`
        call with the same parameters.
        """
        payload: Dict[str, object] = {
            "op": "place",
            "gallery": dict(gallery) if gallery else {},
            "strategy": strategy,
            "model": model,
            "objective": objective,
            "seed": seed,
            "slack": slack,
            "method": method,
        }
        if targets is not None:
            payload["targets"] = dict(targets)
        if mappings is not None:
            payload["mappings"] = list(mappings)
        payload["weights"] = (
            list(weights) if weights is not None else None
        )
        if priority_levels is not None:
            payload["priority_levels"] = list(priority_levels)
        if trace is not None:
            payload["trace"] = trace
        return await self._call(payload)

    async def estimate_batch(
        self,
        use_cases: Sequence[Sequence[str]],
        gallery: Optional[Dict[str, object]] = None,
        model: str = "second_order",
        method: str = "mcr",
        trace: Optional[str] = None,
    ) -> Dict[str, object]:
        """Ask one gallery several use-case questions in one framed
        message; the result's ``results`` list answers them in order
        (failed members carry ``{"error": ...}`` in their slot).

        This is the shard hop of the router's micro-batcher — one
        message per batch instead of one per question.
        """
        payload: Dict[str, object] = {
            "op": "estimate_batch",
            "gallery": dict(gallery) if gallery else {},
            "use_cases": [list(use_case) for use_case in use_cases],
            "model": model,
            "method": method,
        }
        if trace is not None:
            payload["trace"] = trace
        return await self._call(payload)

    async def cache_export(
        self,
        galleries: Optional[Sequence[str]] = None,
        limit: Optional[int] = None,
    ) -> Dict[str, object]:
        """The server's portable cached answers: every cached gallery
        label plus ``entries`` for the requested galleries (``None``
        exports everything, ``limit`` bounds entries per gallery)."""
        payload: Dict[str, object] = {"op": "cache_export"}
        if galleries is not None:
            payload["galleries"] = list(galleries)
        if limit is not None:
            payload["limit"] = limit
        return await self._call(payload)

    async def cache_import(
        self, entries: Sequence[object]
    ) -> Dict[str, object]:
        """Install exported ``[key, payload]`` entries into the
        server's result cache (hand-off / replication target side)."""
        return await self._call(
            {"op": "cache_import", "entries": list(entries)}
        )

    async def join(self, shard: str) -> Dict[str, object]:
        """Router admin: add a shard (``host:port``) to the live ring,
        warmed by a hand-off of the key space it now owns."""
        return await self._call({"op": "join", "shard": shard})

    async def leave(self, shard: str) -> Dict[str, object]:
        """Router admin: gracefully retire a shard — its cached
        answers hand off to the survivors before it leaves the ring."""
        return await self._call({"op": "leave", "shard": shard})

    async def stats(self) -> Dict[str, object]:
        return await self._call({"op": "stats"})

    async def metrics(self) -> Dict[str, object]:
        """The server's merged metrics: Prometheus ``exposition`` text
        plus the JSON ``snapshot``."""
        return await self._call({"op": "metrics"})

    async def invalidate(self, gallery: Dict[str, object]) -> Dict[str, object]:
        return await self._call({"op": "invalidate", "gallery": dict(gallery)})

    async def shutdown(self) -> Dict[str, object]:
        return await self._call({"op": "shutdown"})


async def estimate_once(
    address: Tuple[str, int],
    use_case: Sequence[str],
    gallery: Optional[Dict[str, object]] = None,
    model: str = "second_order",
    method: str = "mcr",
) -> Dict[str, object]:
    """Connect, ask one question, close — the scripting path."""
    client = await ServiceClient.connect(address[0], address[1])
    try:
        return await client.estimate(
            use_case, gallery=gallery, model=model, method=method
        )
    finally:
        await client.aclose()
