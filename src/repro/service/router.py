"""The shard router: one front-end over N estimation-server shards.

One :class:`~repro.service.server.EstimationServer` — even with a
multiprocess solver pool — is still one event loop, one result cache
and one engine pool.  The fleet layer runs N server processes
(*shards*) and puts this thin asyncio front-end before them:

* clients speak the ordinary JSON-lines protocol to the router — no
  client changes, :class:`~repro.service.client.ServiceClient` works
  as-is;
* ``estimate`` queries are **consistent-hashed by gallery key**
  (:class:`~repro.service.hashring.HashRing`), so one gallery's
  queries always land on one shard whose engine pool and result cache
  stay hot, and adding/removing a shard only re-homes that shard's
  galleries;
* each shard is reached over one multiplexed
  :class:`~repro.service.client.ServiceClient` connection (requests
  pipeline, responses match by id), so the router adds sockets
  proportional to shards, not clients;
* shards are **health-checked** via the protocol's ``ping``; a shard
  that dies (connection refused/reset/EOF) leaves the ring, its
  galleries re-home to the surviving shards, and the estimate that
  observed the death is **retried** there — estimates are idempotent
  queries, so failover is invisible to clients beyond latency.
  Failover candidates are recomputed from the live ring *per attempt*
  (a preference list captured before a concurrent ``_mark_down`` would
  waste retries on shards the router already knows are dead).  A
  resurrected shard re-joins the ring at the next health tick — after
  every gallery invalidation it missed while down has been **replayed**
  to it, so a shard that slept through an ``invalidate`` broadcast can
  never serve its stale cache to the fleet.

The fleet is **elastic** (PR 10):

* ``join``/``leave`` admin verbs reshape the ring at runtime.  A
  joining shard is *warmed before it serves*: the router plans the
  ~1/N key space the joiner will own on a preview ring, exports those
  galleries' cached answers from the survivors (bounded by
  ``handoff_limit`` entries per gallery) and imports them into the
  joiner — only then does the shard enter the ring.  A leaving shard
  hands its cached answers to each gallery's new owner before it is
  dropped.
* every freshly solved estimate is **asynchronously replicated** to
  the next ``replication`` shards in ring order, so a shard death no
  longer cold-starts its key space: the failover read hits the
  replica in the neighbour's result cache instead of re-solving.
* with ``batch_window > 0`` the router **micro-batches**: estimate
  queries arriving across client connections within the window are
  grouped by ``(gallery, model, method)``, deduplicated by query key
  and forwarded as one framed ``estimate_batch`` message per shard
  hop — N concurrent questions cost one round-trip of framing instead
  of N (the same grouping/dedup discipline as the server's batcher).

``stats``/``metrics`` aggregate the router's own counters with every
live shard's; ``invalidate`` broadcasts (any shard may have served the
gallery before a ring change) and *queues* an invalidation epoch for
down shards; ``shutdown`` stops the router — shards are separate
processes with their own lifecycles.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import (
    Awaitable,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.exceptions import ServiceConnectionError, ServiceError
from repro.service.client import ServiceClient
from repro.service.hashring import HashRing
from repro.service.protocol import (
    PROTOCOL_VERSION,
    Query,
    decode_message,
    encode_message,
    error_response,
    ok_response,
    parse_estimate,
    parse_estimate_batch,
    parse_gallery,
    parse_place,
    resolve_request_id,
    resolve_trace_id,
)
from repro.telemetry import (
    MetricsRegistry,
    Tracer,
    get_registry,
    render_merged,
    snapshot_merged,
)

_T = TypeVar("_T")

#: Cached-answer entries handed off per gallery on join/leave.  The
#: hand-off is a warm-up, not a guarantee — bounding it keeps ring
#: changes O(cache) cheap and the admin verbs fast.
DEFAULT_HANDOFF_LIMIT = 256


def parse_shard_address(value: str) -> Tuple[str, int]:
    """``host:port`` → address tuple (loud on malformed input)."""
    host, separator, port = value.rpartition(":")
    if not separator or not host:
        raise ServiceError(
            f"shard address {value!r} is not of the form host:port"
        )
    try:
        return host, int(port)
    except ValueError:
        raise ServiceError(
            f"shard address {value!r} has a non-integer port"
        ) from None


@dataclass
class _Shard:
    """One backend server: address, connection, health."""

    name: str
    address: Tuple[str, int]
    client: Optional[ServiceClient] = None
    healthy: bool = True
    failures: int = 0
    forwarded: int = 0
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    #: Per-gallery invalidation epoch this shard has acknowledged.  A
    #: shard whose ack lags the router's epoch for a gallery holds a
    #: potentially stale cache for it — it must not serve that gallery
    #: until the invalidation is replayed (the stale-rejoin fix).
    acked: Dict[str, int] = field(default_factory=dict)


@dataclass
class _RoutedQuery:
    """One client estimate waiting inside the router's micro-batcher."""

    query: Query
    trace_id: Optional[str]
    future: "asyncio.Future[Dict[str, object]]"


class ShardRouter:
    """Consistent-hash front-end over estimation-server shards.

    Parameters
    ----------
    shards:
        Backend addresses as ``(host, port)`` tuples.
    health_interval:
        Seconds between background ``ping`` sweeps (0 disables the
        loop; death is then only detected by failing forwards, and a
        down shard can only return via an admin ``join``).
    max_retries:
        How many *additional* shards a failed-over estimate may try
        before reporting failure (bounded by the live shard count).
    batch_window:
        Seconds the router's micro-batcher lingers so same-gallery
        estimates from different client connections coalesce into one
        framed ``estimate_batch`` per shard hop.  ``0`` (default)
        forwards estimate-by-estimate — the pre-elasticity behaviour.
    max_batch:
        Most queries one framed shard hop may carry.
    replication:
        How many ring-successor shards each freshly solved answer is
        asynchronously replicated to (0 disables; 1 — the default —
        survives any single shard death warm).
    handoff_limit:
        Cached entries exported per gallery during join/leave
        hand-offs.
    """

    def __init__(
        self,
        shards: Sequence[Tuple[str, int]],
        health_interval: float = 1.0,
        max_retries: int = 2,
        batch_window: float = 0.0,
        max_batch: int = 128,
        replication: int = 1,
        handoff_limit: int = DEFAULT_HANDOFF_LIMIT,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if not shards:
            raise ServiceError("router needs at least one shard address")
        if health_interval < 0:
            raise ServiceError(
                f"health_interval must be >= 0, got {health_interval}"
            )
        if batch_window < 0:
            raise ServiceError(
                f"batch_window must be >= 0, got {batch_window}"
            )
        if max_batch < 1:
            raise ServiceError(f"max_batch must be >= 1, got {max_batch}")
        if replication < 0:
            raise ServiceError(
                f"replication must be >= 0, got {replication}"
            )
        if handoff_limit < 0:
            raise ServiceError(
                f"handoff_limit must be >= 0, got {handoff_limit}"
            )
        self.registry = (
            registry if registry is not None else MetricsRegistry(enabled=True)
        )
        self.tracer = tracer if tracer is not None else Tracer()
        self.health_interval = health_interval
        self.max_retries = max_retries
        self.batch_window = batch_window
        self.max_batch = max_batch
        self.replication = replication
        self.handoff_limit = handoff_limit
        self._shards: Dict[str, _Shard] = {}
        for host, port in shards:
            name = f"{host}:{port}"
            if name in self._shards:
                raise ServiceError(f"duplicate shard address {name!r}")
            self._shards[name] = _Shard(name=name, address=(host, port))
        self._ring = HashRing(list(self._shards))
        counter = self.registry.counter
        self._metric_requests = counter(
            "repro_router_requests_total",
            "Requests received by the shard router",
            always=True,
        )
        self._metric_forwarded = counter(
            "repro_router_forwarded_total",
            "Estimate queries forwarded to shards",
            always=True,
        )
        self._metric_retries = counter(
            "repro_router_retries_total",
            "Estimates retried on another shard after a shard death",
            always=True,
        )
        self._metric_failovers = counter(
            "repro_router_shard_down_total",
            "Shards marked down (connection death or failed ping)",
            always=True,
        )
        self._metric_rejoins = counter(
            "repro_router_shard_up_total",
            "Shards re-joining the ring after a successful ping",
            always=True,
        )
        self._metric_errors = counter(
            "repro_router_errors_total",
            "Requests answered with an error response by the router",
            always=True,
        )
        self._metric_batches = counter(
            "repro_router_batches_total",
            "Micro-batched estimate groups forwarded as one shard hop",
            always=True,
        )
        self._metric_batched_queries = counter(
            "repro_router_batched_queries_total",
            "Client estimates coalesced by the router micro-batcher",
            always=True,
        )
        self._metric_replications = counter(
            "repro_router_replications_total",
            "Cached answers replicated to a ring-successor shard",
            always=True,
        )
        self._metric_joins = counter(
            "repro_router_joins_total",
            "Shards added to the ring by the join verb",
            always=True,
        )
        self._metric_leaves = counter(
            "repro_router_leaves_total",
            "Shards retired from the fleet by the leave verb",
            always=True,
        )
        self._metric_handoff_entries = counter(
            "repro_router_handoff_entries_total",
            "Cached answers moved between shards by join/leave hand-offs",
            always=True,
        )
        self._metric_replayed = counter(
            "repro_router_invalidations_replayed_total",
            "Queued gallery invalidations replayed to rejoining shards",
            always=True,
        )
        self._metric_stale_risk = counter(
            "repro_router_stale_risk_total",
            "Forwards to a shard lagging a gallery's invalidation epoch "
            "(0 when the rejoin-replay protocol holds)",
            always=True,
        )
        #: Per-gallery invalidation epoch + the wire recipe to replay.
        self._gallery_epochs: Dict[str, int] = {}
        self._gallery_recipes: Dict[str, Dict[str, object]] = {}
        #: Labels whose broadcast is mid-flight — forwards during the
        #: broadcast race it benignly and are not a protocol violation.
        self._invalidating: "set[str]" = set()
        #: Micro-batcher state (active only when ``batch_window > 0``).
        self._pending: Dict[
            Tuple[str, str, str], List[_RoutedQuery]
        ] = {}
        self._arrival: Optional[asyncio.Event] = None
        self._batcher: Optional["asyncio.Task[None]"] = None
        self._group_tasks: "set[asyncio.Task[None]]" = set()
        self._replica_tasks: "set[asyncio.Task[None]]" = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._health_task: Optional["asyncio.Task[None]"] = None
        self._writers: "set[asyncio.StreamWriter]" = set()
        self._stop: Optional[asyncio.Event] = None
        self._closing = False
        self.address: Optional[Tuple[str, int]] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> Tuple[str, int]:
        if self._server is not None:
            raise ServiceError("router already started")
        self._stop = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=host,
            port=port,
            limit=2 * 1024 * 1024,
        )
        bound = self._server.sockets[0].getsockname()
        self.address = (bound[0], bound[1])
        loop = asyncio.get_running_loop()
        if self.health_interval > 0:
            self._health_task = loop.create_task(self._health_loop())
        if self.batch_window > 0:
            self._arrival = asyncio.Event()
            self._batcher = loop.create_task(self._batch_loop())
        return self.address

    async def wait_shutdown(self) -> None:
        assert self._stop is not None, "router not started"
        await self._stop.wait()

    async def aclose(self) -> None:
        self._closing = True
        if self._stop is not None:
            self._stop.set()
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
            self._health_task = None
        if self._batcher is not None:
            # Drain the micro-batcher to real answers (or errors) —
            # enqueued clients are still awaiting their futures.
            assert self._arrival is not None
            self._arrival.set()
            while any(self._pending.values()) or self._group_tasks:
                await asyncio.sleep(0.005)
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
            self._batcher = None
        if self._replica_tasks:
            await asyncio.gather(
                *list(self._replica_tasks), return_exceptions=True
            )
        if self._server is not None:
            self._server.close()
        for writer in list(self._writers):
            try:
                writer.close()
            except (ConnectionError, BrokenPipeError):
                pass
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None
        for shard in self._shards.values():
            if shard.client is not None:
                await shard.client.aclose()
                shard.client = None

    # ------------------------------------------------------------------
    # Shard management
    # ------------------------------------------------------------------
    async def _client(self, shard: _Shard) -> ServiceClient:
        """The shard's multiplexed connection, dialing if necessary."""
        if shard.client is None:
            async with shard.lock:
                if shard.client is None:
                    try:
                        shard.client = await ServiceClient.connect(
                            *shard.address
                        )
                    except OSError as error:
                        raise ServiceConnectionError(
                            f"shard {shard.name} unreachable: {error}"
                        ) from None
        return shard.client

    def _mark_down(self, shard: _Shard) -> None:
        """Remove a dead shard from the ring; its galleries re-home."""
        shard.failures += 1
        if not shard.healthy:
            return
        shard.healthy = False
        self._metric_failovers.inc()
        if shard.name in self._ring:
            self._ring.remove(shard.name)
        client, shard.client = shard.client, None
        if client is not None:
            # Fire-and-forget close: the transport is already dead.
            task = asyncio.get_running_loop().create_task(client.aclose())
            task.add_done_callback(lambda _: None)

    def _mark_up(self, shard: _Shard) -> None:
        if shard.healthy:
            return
        shard.healthy = True
        self._metric_rejoins.inc()
        if shard.name not in self._ring:
            self._ring.add(shard.name)

    async def _replay_invalidations(self, shard: _Shard) -> int:
        """Bring a rejoining shard's caches up to the fleet's epochs.

        A shard that was down during an ``invalidate`` broadcast kept
        its stale :class:`~repro.service.cache.ResultCache` and warm
        engines; replaying every missed gallery invalidation *before*
        the shard re-enters the ring is what makes resurrection safe.
        Raises on failure — the caller must then leave the shard down.
        """
        replayed = 0
        client = await self._client(shard)
        for label, epoch in list(self._gallery_epochs.items()):
            if shard.acked.get(label, 0) >= epoch:
                continue
            await client.invalidate(self._gallery_recipes[label])
            shard.acked[label] = epoch
            replayed += 1
            self._metric_replayed.inc()
        return replayed

    async def _probe(self, shard: _Shard) -> bool:
        """One health ping; flips the shard up or down accordingly.

        A down shard only comes back up once every gallery invalidation
        it slept through has been replayed — an unreplayable shard
        stays off the ring (the stale-rejoin fix)."""
        try:
            await (await self._client(shard)).ping()
            if not shard.healthy:
                await self._replay_invalidations(shard)
        except (ServiceConnectionError, ConnectionError, OSError):
            self._mark_down(shard)
            return False
        except ServiceError:
            # The shard is reachable but refused an invalidation
            # replay: it must not serve until a later probe succeeds.
            return False
        self._mark_up(shard)
        return True

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.health_interval)
            await asyncio.gather(
                *[self._probe(shard) for shard in list(self._shards.values())]
            )

    def _next_candidate(
        self, label: str, tried: "set[str]"
    ) -> Optional[_Shard]:
        """The best untried healthy shard for ``label`` *right now*.

        Recomputed from the live ring on every call: a concurrent
        ``_mark_down`` (another request's failure, a health probe)
        immediately disqualifies a shard, so a retry never burns an
        attempt on a shard the router already knows is dead.
        """
        if len(self._ring) == 0:
            return None
        for name in self._ring.nodes_for(label):
            if name in tried:
                continue
            shard = self._shards.get(name)
            if shard is not None and shard.healthy:
                return shard
        return None

    async def _failover(
        self,
        label: str,
        attempt: Callable[[_Shard, int], Awaitable[_T]],
    ) -> Tuple[_Shard, _T]:
        """Run ``attempt`` against healthy shards in preference order.

        At most ``max_retries + 1`` attempts; transport-level failures
        mark the shard down and move on (estimates and placements are
        idempotent, re-asking is safe).  Candidates are recomputed per
        attempt — see :meth:`_next_candidate`.
        """
        tried: "set[str]" = set()
        attempts = 0
        last_error: Optional[str] = None
        while attempts < self.max_retries + 1:
            shard = self._next_candidate(label, tried)
            if shard is None:
                break
            if attempts:
                self._metric_retries.inc()
            attempts += 1
            tried.add(shard.name)
            epoch = self._gallery_epochs.get(label, 0)
            if (
                epoch
                and label not in self._invalidating
                and shard.acked.get(label, 0) < epoch
            ):
                # Should be impossible: healthy shards ack at broadcast
                # time, rejoiners replay before re-entering the ring and
                # joiners ack on entry.  Counted, not raised — serving a
                # possibly-stale answer beats serving none.
                self._metric_stale_risk.inc()
            try:
                return shard, await attempt(shard, attempts)
            except (ServiceConnectionError, ConnectionError) as error:
                last_error = str(error)
                self._mark_down(shard)
                continue
        if attempts == 0 and last_error is None:
            raise ServiceError(
                "no healthy shard is available for the query"
            )
        raise ServiceError(
            f"no shard could answer after {attempts} attempt(s): "
            f"{last_error or 'no healthy shard available'}"
        )

    # ------------------------------------------------------------------
    # Live resharding: join / leave
    # ------------------------------------------------------------------
    async def join(self, address: Tuple[str, int]) -> Dict[str, object]:
        """Add a shard to the live ring, warmed before it serves.

        The hand-off is planned on a *preview* ring (current nodes plus
        the joiner): every cached gallery a survivor holds whose owner
        flips to the joiner re-homes, so the joiner receives exactly
        the ~1/N key space it is about to own, bounded by
        ``handoff_limit`` entries per gallery.  Only after the import
        completes does the shard enter the ring — its first queries
        land on a warm cache, not a cold start.
        """
        if self._closing:
            raise ServiceError("router is shutting down")
        name = f"{address[0]}:{address[1]}"
        known = self._shards.get(name)
        if known is not None and known.healthy:
            raise ServiceError(
                f"shard {name!r} is already part of the fleet"
            )
        if known is not None:
            # A known-but-down shard: admin-driven resurrection walks
            # the same replay-then-rejoin path as the health loop.
            if not await self._probe(known):
                raise ServiceError(
                    f"shard {name!r} is unreachable or refused the "
                    f"invalidation replay"
                )
            self._metric_joins.inc()
            return {
                "shard": name,
                "rejoined": True,
                "live_shards": len(self._ring),
            }
        shard = _Shard(name=name, address=address)
        try:
            await (await self._client(shard)).ping()
        except (ServiceConnectionError, ConnectionError, OSError) as error:
            raise ServiceError(
                f"cannot join unreachable shard {name!r}: {error}"
            ) from None
        # Plan the hand-off on the preview ring, against the galleries
        # the survivors actually hold warm answers for.
        preview = self._ring.with_node(name)
        moved_galleries: List[str] = []
        entries_moved = 0
        for survivor in list(self._shards.values()):
            if not survivor.healthy:
                continue
            try:
                survivor_client = await self._client(survivor)
                listing = await survivor_client.cache_export(galleries=[])
                labels = [
                    label
                    for label in listing.get("galleries", [])
                    if preview.node_for(str(label)) == name
                    and self._ring.node_for(str(label)) == survivor.name
                ]
                if not labels:
                    continue
                export = await survivor_client.cache_export(
                    galleries=labels, limit=self.handoff_limit
                )
                entries = export.get("entries", [])
                if entries:
                    imported = await (await self._client(shard)).cache_import(
                        entries
                    )
                    entries_moved += int(imported.get("imported", 0))
                    self._metric_handoff_entries.inc(
                        int(imported.get("imported", 0))
                    )
                moved_galleries.extend(str(label) for label in labels)
            except (ServiceConnectionError, ConnectionError):
                self._mark_down(survivor)
        # The joiner's cache holds only entries exported from healthy
        # (fully acked) survivors: it starts current on every epoch.
        shard.acked = dict(self._gallery_epochs)
        self._shards[name] = shard
        self._ring.add(name)
        self._metric_joins.inc()
        return {
            "shard": name,
            "rejoined": False,
            "handoff": {
                "galleries": sorted(moved_galleries),
                "entries": entries_moved,
            },
            "live_shards": len(self._ring),
        }

    async def leave(self, name: str) -> Dict[str, object]:
        """Gracefully retire a shard from the fleet.

        The shard leaves the ring first (no new queries land on it),
        its cached answers hand off to each gallery's new owner, and
        only then is it forgotten — the health loop will not resurrect
        a shard that *left*, unlike one that *died*.
        """
        shard = self._shards.get(name)
        if shard is None:
            raise ServiceError(f"shard {name!r} is not part of the fleet")
        survivors = [
            s for s in self._shards.values() if s.healthy and s.name != name
        ]
        if shard.healthy and not survivors:
            raise ServiceError(
                f"cannot retire {name!r}: it is the last healthy shard"
            )
        was_healthy = shard.healthy
        if shard.name in self._ring:
            self._ring.remove(shard.name)
        shard.healthy = False  # the health loop must not re-add it
        entries_moved = 0
        handoff_galleries: List[str] = []
        if was_healthy:
            try:
                export = await (await self._client(shard)).cache_export(
                    limit=self.handoff_limit
                )
                by_owner: Dict[str, List[object]] = {}
                for entry in export.get("entries", []):
                    label = str(entry[0][0])
                    owner = self._ring.node_for(label)
                    by_owner.setdefault(owner, []).append(entry)
                handoff_galleries = [
                    str(label) for label in export.get("galleries", [])
                ]
                for owner, entries in by_owner.items():
                    target = self._shards.get(owner)
                    if target is None or not target.healthy:
                        continue
                    try:
                        imported = await (
                            await self._client(target)
                        ).cache_import(entries)
                        moved = int(imported.get("imported", 0))
                        entries_moved += moved
                        self._metric_handoff_entries.inc(moved)
                    except (ServiceConnectionError, ConnectionError):
                        self._mark_down(target)
            except (ServiceConnectionError, ConnectionError):
                pass  # the leaver died mid-goodbye: nothing to hand off
        del self._shards[name]
        client, shard.client = shard.client, None
        if client is not None:
            await client.aclose()
        self._metric_leaves.inc()
        return {
            "shard": name,
            "handoff": {
                "galleries": handoff_galleries,
                "entries": entries_moved,
            },
            "live_shards": len(self._ring),
        }

    # ------------------------------------------------------------------
    # Front-end protocol
    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self._writers.add(writer)
        send_lock = asyncio.Lock()
        tasks: "set[asyncio.Task[None]]" = set()
        loop = asyncio.get_running_loop()
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    await self._send(
                        writer,
                        error_response(None, "message too long"),
                        send_lock,
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    payload = decode_message(line)
                except Exception as error:
                    self._metric_requests.inc()
                    self._metric_errors.inc()
                    await self._send(
                        writer, error_response(None, str(error)), send_lock
                    )
                    continue
                if payload.get("op") == "shutdown":
                    await self._serve_payload(payload, writer, send_lock)
                    break
                task = loop.create_task(
                    self._serve_payload(payload, writer, send_lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            self._writers.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        payload: Dict[str, object],
        send_lock: asyncio.Lock,
    ) -> None:
        async with send_lock:
            try:
                writer.write(encode_message(payload))
                await writer.drain()
            except (ConnectionError, BrokenPipeError):
                pass  # client went away

    async def _serve_payload(
        self,
        payload: Dict[str, object],
        writer: asyncio.StreamWriter,
        send_lock: asyncio.Lock,
    ) -> None:
        self._metric_requests.inc()
        request_id: object = None
        op = payload.get("op")
        try:
            request_id = resolve_request_id(payload)
            with self.tracer.span("router.request", op=str(op)):
                if op == "ping":
                    response = ok_response(
                        request_id,
                        {
                            "pong": True,
                            "protocol": PROTOCOL_VERSION,
                            "router": True,
                            "shards": self.shard_health(),
                        },
                    )
                elif op == "estimate":
                    response = ok_response(
                        request_id, await self._forward_estimate(payload)
                    )
                elif op == "estimate_batch":
                    response = ok_response(
                        request_id,
                        await self._forward_estimate_batch(payload),
                    )
                elif op == "place":
                    response = ok_response(
                        request_id, await self._forward_place(payload)
                    )
                elif op == "stats":
                    response = ok_response(request_id, await self._stats())
                elif op == "metrics":
                    response = ok_response(
                        request_id,
                        {
                            "exposition": self.render_metrics(),
                            "snapshot": self.metrics_snapshot(),
                        },
                    )
                elif op == "invalidate":
                    response = ok_response(
                        request_id,
                        await self._broadcast_invalidate(payload),
                    )
                elif op == "join":
                    response = ok_response(
                        request_id,
                        await self.join(
                            parse_shard_address(
                                str(payload.get("shard", ""))
                            )
                        ),
                    )
                elif op == "leave":
                    host, port = parse_shard_address(
                        str(payload.get("shard", ""))
                    )
                    response = ok_response(
                        request_id, await self.leave(f"{host}:{port}")
                    )
                elif op == "shutdown":
                    response = ok_response(request_id, {"stopping": True})
                else:
                    raise ServiceError(
                        f"unknown op {op!r} (expected ping, estimate, "
                        f"estimate_batch, place, stats, metrics, "
                        f"invalidate, join, leave or shutdown)"
                    )
        except Exception as error:
            self._metric_errors.inc()
            response = error_response(request_id, str(error))
            op = None
        await self._send(writer, response, send_lock)
        if op == "shutdown":
            assert self._stop is not None
            self._stop.set()

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------
    @staticmethod
    def _wire_gallery(query: Query) -> Dict[str, object]:
        return {
            "kind": query.gallery.kind,
            "seed": query.gallery.seed,
            "applications": query.gallery.application_count,
        }

    async def _forward_estimate(
        self, payload: Dict[str, object]
    ) -> Dict[str, object]:
        if self._closing:
            raise ServiceError("router is shutting down")
        # Validate at the edge (same contract as the server) — and the
        # parse yields the gallery label the ring hashes on.
        query = parse_estimate(payload)
        trace_id = resolve_trace_id(payload)
        if self._batcher is not None:
            return await self._submit_batched(query, trace_id)
        label = query.gallery.label()

        async def attempt(shard: _Shard, attempts: int) -> Dict[str, object]:
            with self.tracer.span(
                "router.forward",
                trace_id=trace_id,
                shard=shard.name,
                gallery=label,
                attempt=attempts,
            ):
                client = await self._client(shard)
                return await client.estimate(
                    list(query.use_case.applications),
                    gallery=self._wire_gallery(query),
                    model=query.model,
                    method=query.method.value,
                    trace=trace_id,
                )

        shard, result = await self._failover(label, attempt)
        shard.forwarded += 1
        self._metric_forwarded.inc()
        self._replicate(label, query.key, result, exclude=shard.name)
        result["shard"] = shard.name
        return result

    async def _forward_estimate_batch(
        self, payload: Dict[str, object]
    ) -> Dict[str, object]:
        """A client-side ``estimate_batch`` through the router.

        With the micro-batcher on, members join the shared pending
        pool (coalescing with other connections' queries); otherwise
        the group forwards as one framed hop directly.
        """
        if self._closing:
            raise ServiceError("router is shutting down")
        queries = parse_estimate_batch(payload)
        trace_id = resolve_trace_id(payload)
        loop = asyncio.get_running_loop()
        members = [
            _RoutedQuery(
                query=query, trace_id=trace_id, future=loop.create_future()
            )
            for query in queries
        ]
        if self._batcher is not None:
            group = members[0].query.group
            self._pending.setdefault(group, []).extend(members)
            assert self._arrival is not None
            self._arrival.set()
        else:
            await self._forward_group(members)
        results: List[Dict[str, object]] = []
        for member in members:
            try:
                results.append(await member.future)
            except ServiceError as error:
                results.append({"error": str(error)})
        return {"results": results}

    async def _submit_batched(
        self, query: Query, trace_id: Optional[str]
    ) -> Dict[str, object]:
        """Enqueue one estimate into the micro-batcher and await it."""
        member = _RoutedQuery(
            query=query,
            trace_id=trace_id,
            future=asyncio.get_running_loop().create_future(),
        )
        self._pending.setdefault(query.group, []).append(member)
        assert self._arrival is not None
        self._arrival.set()
        return await member.future

    async def _batch_loop(self) -> None:
        assert self._arrival is not None
        while True:
            if not any(self._pending.values()):
                self._arrival.clear()
                await self._arrival.wait()
            if self.batch_window > 0 and not self._closing:
                # Linger: same-gallery queries from other connections
                # land in this hop, not the next.
                await asyncio.sleep(self.batch_window)
            groups = [
                members for members in self._pending.values() if members
            ]
            self._pending = {}
            loop = asyncio.get_running_loop()
            for members in groups:
                # One framed hop per max_batch chunk per group; groups
                # fly concurrently — shard affinity spreads them.
                for start in range(0, len(members), self.max_batch):
                    chunk = members[start : start + self.max_batch]
                    task = loop.create_task(self._forward_group(chunk))
                    self._group_tasks.add(task)
                    task.add_done_callback(self._group_tasks.discard)

    async def _forward_group(self, members: List[_RoutedQuery]) -> None:
        """Forward one ``(gallery, model, method)`` group as a single
        framed ``estimate_batch`` hop and resolve its members."""
        first = members[0].query
        label = first.gallery.label()
        # Same dedup discipline as the server batcher: N clients asking
        # the same question inside one window cost one forwarded query.
        unique: Dict[Tuple[str, str, str, str], Query] = {}
        for member in members:
            unique.setdefault(member.query.key, member.query)
        queries = list(unique.values())
        trace_ids = tuple(
            dict.fromkeys(
                member.trace_id
                for member in members
                if member.trace_id is not None
            )
        )
        hop_trace = trace_ids[0] if len(trace_ids) == 1 else None

        async def attempt(shard: _Shard, attempts: int) -> Dict[str, object]:
            with self.tracer.span(
                "router.forward_batch",
                trace_id=hop_trace,
                shard=shard.name,
                gallery=label,
                queries=len(queries),
                attempt=attempts,
            ):
                client = await self._client(shard)
                return await client.estimate_batch(
                    [list(q.use_case.applications) for q in queries],
                    gallery=self._wire_gallery(first),
                    model=first.model,
                    method=first.method.value,
                    trace=hop_trace,
                )

        try:
            shard, result = await self._failover(label, attempt)
        except Exception as error:
            message = str(error)
            for member in members:
                if not member.future.done():
                    member.future.set_exception(ServiceError(message))
            return
        shard.forwarded += 1
        self._metric_forwarded.inc(len(queries))
        self._metric_batches.inc()
        self._metric_batched_queries.inc(len(members))
        raw = result.get("results")
        payloads = raw if isinstance(raw, list) else []
        if len(payloads) != len(queries):
            message = (
                f"shard {shard.name} answered {len(payloads)} results "
                f"for a batch of {len(queries)}"
            )
            for member in members:
                if not member.future.done():
                    member.future.set_exception(ServiceError(message))
            return
        by_key = dict(zip(unique.keys(), payloads))
        for key, payload in by_key.items():
            if "error" not in payload:
                self._replicate(label, key, payload, exclude=shard.name)
        for member in members:
            if member.future.done():
                continue
            payload = by_key[member.query.key]
            if set(payload) == {"error"}:
                member.future.set_exception(
                    ServiceError(str(payload["error"]))
                )
                continue
            answer = dict(payload, shard=shard.name)
            if member.trace_id is not None:
                answer["trace"] = member.trace_id
            else:
                answer.pop("trace", None)
            member.future.set_result(answer)

    # ------------------------------------------------------------------
    # Replication
    # ------------------------------------------------------------------
    def _replicate(
        self,
        label: str,
        key: Tuple[str, str, str, str],
        payload: Dict[str, object],
        exclude: str,
    ) -> None:
        """Asynchronously copy a fresh answer to ring-successor shards.

        Cache hits are skipped (the serving shard already holds the
        entry it just read) and so are answers for galleries whose
        epoch moved — a replica of a pre-invalidation answer must never
        land after the invalidation.
        """
        if (
            self.replication < 1
            or self._closing
            or payload.get("cached") is True
        ):
            return
        try:
            order = self._ring.nodes_for(label)
        except ServiceError:
            return
        targets: List[_Shard] = []
        for name in order:
            if name == exclude:
                continue
            shard = self._shards.get(name)
            if shard is None or not shard.healthy:
                continue
            targets.append(shard)
            if len(targets) >= self.replication:
                break
        if not targets:
            return
        epoch = self._gallery_epochs.get(label, 0)
        entry = [
            list(key),
            {
                k: v
                for k, v in payload.items()
                if k not in ("cached", "degraded", "shard", "trace")
            },
        ]
        task = asyncio.get_running_loop().create_task(
            self._send_replica(targets, label, epoch, entry)
        )
        self._replica_tasks.add(task)
        task.add_done_callback(self._replica_tasks.discard)

    async def _send_replica(
        self,
        targets: List[_Shard],
        label: str,
        epoch: int,
        entry: List[object],
    ) -> None:
        for shard in targets:
            if self._gallery_epochs.get(label, 0) != epoch:
                return  # invalidated since the solve: drop the replica
            try:
                await (await self._client(shard)).cache_import([entry])
                self._metric_replications.inc()
            except (ServiceConnectionError, ConnectionError):
                self._mark_down(shard)
            except ServiceError:
                pass  # the target refused the import; not a death

    async def _forward_place(
        self, payload: Dict[str, object]
    ) -> Dict[str, object]:
        """Forward a ``place`` request to the gallery's home shard.

        Same routing discipline as estimates: validate at the edge,
        consistent-hash on the gallery label (a gallery's placement
        lands where its warm engines live), and fail over down the
        preference order — the search is deterministic and
        wall-clock-free, so re-asking another shard is safe and yields
        byte-identical placement JSON.
        """
        if self._closing:
            raise ServiceError("router is shutting down")
        query = parse_place(payload)
        trace_id = resolve_trace_id(payload)
        label = query.gallery.label()

        async def attempt(shard: _Shard, attempts: int) -> Dict[str, object]:
            with self.tracer.span(
                "router.forward_place",
                trace_id=trace_id,
                shard=shard.name,
                gallery=label,
                attempt=attempts,
            ):
                client = await self._client(shard)
                return await client.place(
                    gallery={
                        "kind": query.gallery.kind,
                        "seed": query.gallery.seed,
                        "applications": query.gallery.application_count,
                    },
                    strategy=query.strategy,
                    model=query.model,
                    objective=query.objective,
                    seed=query.seed,
                    slack=query.slack,
                    targets=query.targets,
                    mappings=list(query.mappings),
                    weights=(
                        list(query.weights)
                        if query.weights is not None
                        else None
                    ),
                    priority_levels=(
                        list(query.priority_levels)
                        if query.priority_levels is not None
                        else None
                    ),
                    method=query.method.value,
                    trace=trace_id,
                )

        shard, result = await self._failover(label, attempt)
        shard.forwarded += 1
        self._metric_forwarded.inc()
        result["shard"] = shard.name
        return result

    async def _broadcast_invalidate(
        self, payload: Dict[str, object]
    ) -> Dict[str, object]:
        spec = parse_gallery(payload.get("gallery"))
        label = spec.label()
        gallery = {
            "kind": spec.kind,
            "seed": spec.seed,
            "applications": spec.application_count,
        }
        # The epoch bump is the fence: a down shard keeps its stale
        # cache, but its ack now lags, so it cannot rejoin the ring
        # until the invalidation is replayed to it.
        epoch = self._gallery_epochs.get(label, 0) + 1
        self._gallery_epochs[label] = epoch
        self._gallery_recipes[label] = gallery
        self._invalidating.add(label)
        results: Dict[str, object] = {}
        try:
            for shard in list(self._shards.values()):
                if not shard.healthy:
                    results[shard.name] = {
                        "skipped": "shard down",
                        "queued": True,
                    }
                    continue
                try:
                    results[shard.name] = await (
                        await self._client(shard)
                    ).invalidate(gallery)
                    shard.acked[label] = epoch
                except (ServiceConnectionError, ConnectionError) as error:
                    self._mark_down(shard)
                    results[shard.name] = {
                        "skipped": str(error),
                        "queued": True,
                    }
        finally:
            self._invalidating.discard(label)
        return {"gallery": label, "epoch": epoch, "shards": results}

    async def _stats(self) -> Dict[str, object]:
        shards: Dict[str, object] = {}
        for shard in list(self._shards.values()):
            if not shard.healthy:
                shards[shard.name] = None
                continue
            try:
                shards[shard.name] = await (await self._client(shard)).stats()
            except (ServiceConnectionError, ConnectionError):
                self._mark_down(shard)
                shards[shard.name] = None
        return dict(self.snapshot(), per_shard=shards)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def shard_health(self) -> Dict[str, bool]:
        return {
            shard.name: shard.healthy for shard in self._shards.values()
        }

    def snapshot(self) -> Dict[str, object]:
        """Router-side counters (JSON-serializable, no shard calls)."""
        return {
            "protocol": PROTOCOL_VERSION,
            "router": True,
            "shards": self.shard_health(),
            "live_shards": len(self._ring),
            "requests": int(self._metric_requests.value),
            "forwarded": int(self._metric_forwarded.value),
            "retries": int(self._metric_retries.value),
            "shard_down": int(self._metric_failovers.value),
            "shard_up": int(self._metric_rejoins.value),
            "errors": int(self._metric_errors.value),
            "batch_window": self.batch_window,
            "batches": int(self._metric_batches.value),
            "batched_queries": int(self._metric_batched_queries.value),
            "replication": self.replication,
            "replications": int(self._metric_replications.value),
            "joins": int(self._metric_joins.value),
            "leaves": int(self._metric_leaves.value),
            "handoff_entries": int(self._metric_handoff_entries.value),
            "invalidations_replayed": int(self._metric_replayed.value),
            "stale_risk": int(self._metric_stale_risk.value),
            "per_shard_forwarded": {
                shard.name: shard.forwarded
                for shard in self._shards.values()
            },
        }

    def render_metrics(self) -> str:
        """Prometheus exposition: router registry + process-global."""
        return render_merged(self.registry, get_registry())

    def metrics_snapshot(self) -> Dict[str, object]:
        return snapshot_merged(self.registry, get_registry())
