"""The shard router: one front-end over N estimation-server shards.

One :class:`~repro.service.server.EstimationServer` — even with a
multiprocess solver pool — is still one event loop, one result cache
and one engine pool.  The fleet layer runs N server processes
(*shards*) and puts this thin asyncio front-end before them:

* clients speak the ordinary JSON-lines protocol to the router — no
  client changes, :class:`~repro.service.client.ServiceClient` works
  as-is;
* ``estimate`` queries are **consistent-hashed by gallery key**
  (:class:`~repro.service.hashring.HashRing`), so one gallery's
  queries always land on one shard whose engine pool and result cache
  stay hot, and adding/removing a shard only re-homes that shard's
  galleries;
* each shard is reached over one multiplexed
  :class:`~repro.service.client.ServiceClient` connection (requests
  pipeline, responses match by id), so the router adds sockets
  proportional to shards, not clients;
* shards are **health-checked** via the protocol's ``ping``; a shard
  that dies (connection refused/reset/EOF) leaves the ring, its
  galleries re-home to the surviving shards, and the estimate that
  observed the death is **retried** there — estimates are idempotent
  queries, so failover is invisible to clients beyond latency.  A
  resurrected shard re-joins the ring at the next health tick.

``stats``/``metrics`` aggregate the router's own counters with every
live shard's; ``invalidate`` broadcasts (any shard may have served the
gallery before a ring change); ``shutdown`` stops the router — shards
are separate processes with their own lifecycles.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ServiceConnectionError, ServiceError
from repro.service.client import ServiceClient
from repro.service.hashring import HashRing
from repro.service.protocol import (
    PROTOCOL_VERSION,
    decode_message,
    encode_message,
    error_response,
    ok_response,
    parse_estimate,
    parse_gallery,
    parse_place,
    resolve_request_id,
    resolve_trace_id,
)
from repro.telemetry import (
    MetricsRegistry,
    Tracer,
    get_registry,
    render_merged,
    snapshot_merged,
)


def parse_shard_address(value: str) -> Tuple[str, int]:
    """``host:port`` → address tuple (loud on malformed input)."""
    host, separator, port = value.rpartition(":")
    if not separator or not host:
        raise ServiceError(
            f"shard address {value!r} is not of the form host:port"
        )
    try:
        return host, int(port)
    except ValueError:
        raise ServiceError(
            f"shard address {value!r} has a non-integer port"
        ) from None


@dataclass
class _Shard:
    """One backend server: address, connection, health."""

    name: str
    address: Tuple[str, int]
    client: Optional[ServiceClient] = None
    healthy: bool = True
    failures: int = 0
    forwarded: int = 0
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)


class ShardRouter:
    """Consistent-hash front-end over estimation-server shards.

    Parameters
    ----------
    shards:
        Backend addresses as ``(host, port)`` tuples.
    health_interval:
        Seconds between background ``ping`` sweeps (0 disables the
        loop; death is then only detected by failing forwards).
    max_retries:
        How many *additional* shards a failed-over estimate may try
        before reporting failure (bounded by the live shard count).
    """

    def __init__(
        self,
        shards: Sequence[Tuple[str, int]],
        health_interval: float = 1.0,
        max_retries: int = 2,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if not shards:
            raise ServiceError("router needs at least one shard address")
        if health_interval < 0:
            raise ServiceError(
                f"health_interval must be >= 0, got {health_interval}"
            )
        self.registry = (
            registry if registry is not None else MetricsRegistry(enabled=True)
        )
        self.tracer = tracer if tracer is not None else Tracer()
        self.health_interval = health_interval
        self.max_retries = max_retries
        self._shards: Dict[str, _Shard] = {}
        for host, port in shards:
            name = f"{host}:{port}"
            if name in self._shards:
                raise ServiceError(f"duplicate shard address {name!r}")
            self._shards[name] = _Shard(name=name, address=(host, port))
        self._ring = HashRing(list(self._shards))
        counter = self.registry.counter
        self._metric_requests = counter(
            "repro_router_requests_total",
            "Requests received by the shard router",
            always=True,
        )
        self._metric_forwarded = counter(
            "repro_router_forwarded_total",
            "Estimate queries forwarded to shards",
            always=True,
        )
        self._metric_retries = counter(
            "repro_router_retries_total",
            "Estimates retried on another shard after a shard death",
            always=True,
        )
        self._metric_failovers = counter(
            "repro_router_shard_down_total",
            "Shards marked down (connection death or failed ping)",
            always=True,
        )
        self._metric_rejoins = counter(
            "repro_router_shard_up_total",
            "Shards re-joining the ring after a successful ping",
            always=True,
        )
        self._metric_errors = counter(
            "repro_router_errors_total",
            "Requests answered with an error response by the router",
            always=True,
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._health_task: Optional["asyncio.Task[None]"] = None
        self._writers: "set[asyncio.StreamWriter]" = set()
        self._stop: Optional[asyncio.Event] = None
        self._closing = False
        self.address: Optional[Tuple[str, int]] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> Tuple[str, int]:
        if self._server is not None:
            raise ServiceError("router already started")
        self._stop = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=host,
            port=port,
            limit=2 * 1024 * 1024,
        )
        bound = self._server.sockets[0].getsockname()
        self.address = (bound[0], bound[1])
        if self.health_interval > 0:
            self._health_task = asyncio.get_running_loop().create_task(
                self._health_loop()
            )
        return self.address

    async def wait_shutdown(self) -> None:
        assert self._stop is not None, "router not started"
        await self._stop.wait()

    async def aclose(self) -> None:
        self._closing = True
        if self._stop is not None:
            self._stop.set()
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
            self._health_task = None
        if self._server is not None:
            self._server.close()
        for writer in list(self._writers):
            try:
                writer.close()
            except (ConnectionError, BrokenPipeError):
                pass
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None
        for shard in self._shards.values():
            if shard.client is not None:
                await shard.client.aclose()
                shard.client = None

    # ------------------------------------------------------------------
    # Shard management
    # ------------------------------------------------------------------
    async def _client(self, shard: _Shard) -> ServiceClient:
        """The shard's multiplexed connection, dialing if necessary."""
        if shard.client is None:
            async with shard.lock:
                if shard.client is None:
                    try:
                        shard.client = await ServiceClient.connect(
                            *shard.address
                        )
                    except OSError as error:
                        raise ServiceConnectionError(
                            f"shard {shard.name} unreachable: {error}"
                        ) from None
        return shard.client

    def _mark_down(self, shard: _Shard) -> None:
        """Remove a dead shard from the ring; its galleries re-home."""
        shard.failures += 1
        if not shard.healthy:
            return
        shard.healthy = False
        self._metric_failovers.inc()
        if shard.name in self._ring:
            self._ring.remove(shard.name)
        client, shard.client = shard.client, None
        if client is not None:
            # Fire-and-forget close: the transport is already dead.
            task = asyncio.get_running_loop().create_task(client.aclose())
            task.add_done_callback(lambda _: None)

    def _mark_up(self, shard: _Shard) -> None:
        if shard.healthy:
            return
        shard.healthy = True
        self._metric_rejoins.inc()
        if shard.name not in self._ring:
            self._ring.add(shard.name)

    async def _probe(self, shard: _Shard) -> bool:
        """One health ping; flips the shard up or down accordingly."""
        try:
            await (await self._client(shard)).ping()
        except (ServiceConnectionError, ConnectionError, OSError):
            self._mark_down(shard)
            return False
        self._mark_up(shard)
        return True

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.health_interval)
            await asyncio.gather(
                *[self._probe(shard) for shard in self._shards.values()]
            )

    def _shards_for(self, gallery_label: str) -> List[_Shard]:
        """Live shards in failover order for one gallery key."""
        if len(self._ring) == 0:
            raise ServiceError(
                "no healthy shard is available for the query"
            )
        names = self._ring.nodes_for(gallery_label)
        limit = min(len(names), self.max_retries + 1)
        return [self._shards[name] for name in names[:limit]]

    # ------------------------------------------------------------------
    # Front-end protocol
    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self._writers.add(writer)
        send_lock = asyncio.Lock()
        tasks: "set[asyncio.Task[None]]" = set()
        loop = asyncio.get_running_loop()
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    await self._send(
                        writer,
                        error_response(None, "message too long"),
                        send_lock,
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    payload = decode_message(line)
                except Exception as error:
                    self._metric_requests.inc()
                    self._metric_errors.inc()
                    await self._send(
                        writer, error_response(None, str(error)), send_lock
                    )
                    continue
                if payload.get("op") == "shutdown":
                    await self._serve_payload(payload, writer, send_lock)
                    break
                task = loop.create_task(
                    self._serve_payload(payload, writer, send_lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            self._writers.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        payload: Dict[str, object],
        send_lock: asyncio.Lock,
    ) -> None:
        async with send_lock:
            try:
                writer.write(encode_message(payload))
                await writer.drain()
            except (ConnectionError, BrokenPipeError):
                pass  # client went away

    async def _serve_payload(
        self,
        payload: Dict[str, object],
        writer: asyncio.StreamWriter,
        send_lock: asyncio.Lock,
    ) -> None:
        self._metric_requests.inc()
        request_id: object = None
        op = payload.get("op")
        try:
            request_id = resolve_request_id(payload)
            with self.tracer.span("router.request", op=str(op)):
                if op == "ping":
                    response = ok_response(
                        request_id,
                        {
                            "pong": True,
                            "protocol": PROTOCOL_VERSION,
                            "router": True,
                            "shards": self.shard_health(),
                        },
                    )
                elif op == "estimate":
                    response = ok_response(
                        request_id, await self._forward_estimate(payload)
                    )
                elif op == "place":
                    response = ok_response(
                        request_id, await self._forward_place(payload)
                    )
                elif op == "stats":
                    response = ok_response(request_id, await self._stats())
                elif op == "metrics":
                    response = ok_response(
                        request_id,
                        {
                            "exposition": self.render_metrics(),
                            "snapshot": self.metrics_snapshot(),
                        },
                    )
                elif op == "invalidate":
                    response = ok_response(
                        request_id,
                        await self._broadcast_invalidate(payload),
                    )
                elif op == "shutdown":
                    response = ok_response(request_id, {"stopping": True})
                else:
                    raise ServiceError(
                        f"unknown op {op!r} (expected ping, estimate, "
                        f"place, stats, metrics, invalidate or "
                        f"shutdown)"
                    )
        except Exception as error:
            self._metric_errors.inc()
            response = error_response(request_id, str(error))
            op = None
        await self._send(writer, response, send_lock)
        if op == "shutdown":
            assert self._stop is not None
            self._stop.set()

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------
    async def _forward_estimate(
        self, payload: Dict[str, object]
    ) -> Dict[str, object]:
        if self._closing:
            raise ServiceError("router is shutting down")
        # Validate at the edge (same contract as the server) — and the
        # parse yields the gallery label the ring hashes on.
        query = parse_estimate(payload)
        trace_id = resolve_trace_id(payload)
        label = query.gallery.label()
        attempts = 0
        last_error: Optional[str] = None
        for shard in self._shards_for(label):
            if attempts:
                self._metric_retries.inc()
            attempts += 1
            try:
                with self.tracer.span(
                    "router.forward",
                    trace_id=trace_id,
                    shard=shard.name,
                    gallery=label,
                    attempt=attempts,
                ):
                    client = await self._client(shard)
                    result = await client.estimate(
                        list(query.use_case.applications),
                        gallery={
                            "kind": query.gallery.kind,
                            "seed": query.gallery.seed,
                            "applications": query.gallery.application_count,
                        },
                        model=str(payload.get("model", query.model)),
                        method=query.method.value,
                        trace=trace_id,
                    )
            except (ServiceConnectionError, ConnectionError) as error:
                # The shard died under this query: take it off the
                # ring and retry on the next shard in preference
                # order — estimates are idempotent, re-asking is safe.
                last_error = str(error)
                self._mark_down(shard)
                continue
            shard.forwarded += 1
            self._metric_forwarded.inc()
            result["shard"] = shard.name
            return result
        raise ServiceError(
            f"no shard could answer after {attempts} attempt(s): "
            f"{last_error or 'no healthy shard available'}"
        )

    async def _forward_place(
        self, payload: Dict[str, object]
    ) -> Dict[str, object]:
        """Forward a ``place`` request to the gallery's home shard.

        Same routing discipline as estimates: validate at the edge,
        consistent-hash on the gallery label (a gallery's placement
        lands where its warm engines live), and fail over down the
        preference order — the search is deterministic and
        wall-clock-free, so re-asking another shard is safe and yields
        byte-identical placement JSON.
        """
        if self._closing:
            raise ServiceError("router is shutting down")
        query = parse_place(payload)
        trace_id = resolve_trace_id(payload)
        label = query.gallery.label()
        attempts = 0
        last_error: Optional[str] = None
        for shard in self._shards_for(label):
            if attempts:
                self._metric_retries.inc()
            attempts += 1
            try:
                with self.tracer.span(
                    "router.forward_place",
                    trace_id=trace_id,
                    shard=shard.name,
                    gallery=label,
                    attempt=attempts,
                ):
                    client = await self._client(shard)
                    result = await client.place(
                        gallery={
                            "kind": query.gallery.kind,
                            "seed": query.gallery.seed,
                            "applications": query.gallery.application_count,
                        },
                        strategy=query.strategy,
                        model=query.model,
                        objective=query.objective,
                        seed=query.seed,
                        slack=query.slack,
                        targets=query.targets,
                        mappings=list(query.mappings),
                        weights=(
                            list(query.weights)
                            if query.weights is not None
                            else None
                        ),
                        priority_levels=(
                            list(query.priority_levels)
                            if query.priority_levels is not None
                            else None
                        ),
                        method=query.method.value,
                        trace=trace_id,
                    )
            except (ServiceConnectionError, ConnectionError) as error:
                last_error = str(error)
                self._mark_down(shard)
                continue
            shard.forwarded += 1
            self._metric_forwarded.inc()
            result["shard"] = shard.name
            return result
        raise ServiceError(
            f"no shard could answer after {attempts} attempt(s): "
            f"{last_error or 'no healthy shard available'}"
        )

    async def _broadcast_invalidate(
        self, payload: Dict[str, object]
    ) -> Dict[str, object]:
        spec = parse_gallery(payload.get("gallery"))
        gallery = {
            "kind": spec.kind,
            "seed": spec.seed,
            "applications": spec.application_count,
        }
        results: Dict[str, object] = {}
        for shard in self._shards.values():
            if not shard.healthy:
                results[shard.name] = {"skipped": "shard down"}
                continue
            try:
                results[shard.name] = await (
                    await self._client(shard)
                ).invalidate(gallery)
            except (ServiceConnectionError, ConnectionError) as error:
                self._mark_down(shard)
                results[shard.name] = {"skipped": str(error)}
        return {"gallery": spec.label(), "shards": results}

    async def _stats(self) -> Dict[str, object]:
        shards: Dict[str, object] = {}
        for shard in self._shards.values():
            if not shard.healthy:
                shards[shard.name] = None
                continue
            try:
                shards[shard.name] = await (await self._client(shard)).stats()
            except (ServiceConnectionError, ConnectionError):
                self._mark_down(shard)
                shards[shard.name] = None
        return dict(self.snapshot(), per_shard=shards)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def shard_health(self) -> Dict[str, bool]:
        return {
            shard.name: shard.healthy for shard in self._shards.values()
        }

    def snapshot(self) -> Dict[str, object]:
        """Router-side counters (JSON-serializable, no shard calls)."""
        return {
            "protocol": PROTOCOL_VERSION,
            "router": True,
            "shards": self.shard_health(),
            "live_shards": len(self._ring),
            "requests": int(self._metric_requests.value),
            "forwarded": int(self._metric_forwarded.value),
            "retries": int(self._metric_retries.value),
            "shard_down": int(self._metric_failovers.value),
            "shard_up": int(self._metric_rejoins.value),
            "errors": int(self._metric_errors.value),
            "per_shard_forwarded": {
                shard.name: shard.forwarded
                for shard in self._shards.values()
            },
        }

    def render_metrics(self) -> str:
        """Prometheus exposition: router registry + process-global."""
        return render_merged(self.registry, get_registry())

    def metrics_snapshot(self) -> Dict[str, object]:
        return snapshot_merged(self.registry, get_registry())
