"""Estimation-as-a-service: the async micro-batching serving layer.

Public surface:

* :class:`~repro.service.server.EstimationServer` — the long-lived
  asyncio server (TCP or stdio, JSON-lines protocol) that coalesces
  concurrent client queries into cross-request micro-batches on warm
  engine pools;
* :class:`~repro.service.client.ServiceClient` /
  :func:`~repro.service.client.estimate_once` — the client library;
* :class:`~repro.service.pool.EnginePool` and
  :class:`~repro.service.cache.ResultCache` — the warm-state and
  memoization building blocks, reusable outside the server;
* :class:`~repro.service.workers.SolverPool` — the multiprocess
  solver pool a server runs with ``solver_workers > 0``;
* :class:`~repro.service.router.ShardRouter` and
  :class:`~repro.service.hashring.HashRing` — the fleet front-end
  that consistent-hashes galleries over N server shards;
* the :mod:`~repro.service.protocol` message helpers.
"""

from repro.service.cache import CacheKey, ResultCache
from repro.service.client import ServiceClient, estimate_once
from repro.service.hashring import HashRing, stable_hash
from repro.service.pool import EnginePool
from repro.service.protocol import (
    PROTOCOL_VERSION,
    Query,
    decode_message,
    encode_message,
    parse_estimate,
    parse_estimate_batch,
    parse_gallery,
)
from repro.service.router import ShardRouter, parse_shard_address
from repro.service.server import (
    DEFAULT_DEGRADED_MODEL,
    EstimationServer,
    ServerStats,
)
from repro.service.workers import SolverPool

__all__ = [
    "CacheKey",
    "DEFAULT_DEGRADED_MODEL",
    "EnginePool",
    "EstimationServer",
    "HashRing",
    "PROTOCOL_VERSION",
    "Query",
    "ResultCache",
    "ServerStats",
    "ServiceClient",
    "ShardRouter",
    "SolverPool",
    "decode_message",
    "encode_message",
    "estimate_once",
    "parse_estimate",
    "parse_estimate_batch",
    "parse_gallery",
    "parse_shard_address",
    "stable_hash",
]
