"""Consistent hashing for gallery-affinity placement.

Both fleet layers place work by gallery: the in-server solver pool
pins a gallery's warm engines to one worker process, and the shard
router pins a gallery's queries (and therefore its result cache and
engine pool) to one :class:`~repro.service.server.EstimationServer`
shard.  Plain ``hash(key) % n`` placement would reshuffle *every*
gallery whenever ``n`` changes — a dead shard would go cold on the
whole fleet at once.  :class:`HashRing` is the classic fix: each node
owns ``replicas`` pseudo-random points on a ring, a key maps to the
first node point at or after its own ring position, and removing a
node only remaps the keys that node owned.

Hashes come from :func:`hashlib.md5` (stable across processes and
Python versions — ``hash()`` is salted per process, which would break
the router/worker agreement this module exists to provide).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence

from repro.exceptions import ServiceError

#: Ring points per node.  Enough that a handful of nodes split keys
#: close to evenly; small enough that ring construction stays trivial.
DEFAULT_REPLICAS = 64


def stable_hash(value: str) -> int:
    """A process-independent 64-bit hash of ``value``."""
    digest = hashlib.md5(value.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent-hash ring over opaque node names.

    Nodes can be added and removed at any time (the router does both as
    shards die and resurrect); lookups on an empty ring fail loudly —
    the caller decides what "no nodes" means for its protocol.
    """

    def __init__(
        self,
        nodes: Sequence[str] = (),
        replicas: int = DEFAULT_REPLICAS,
    ) -> None:
        if replicas < 1:
            raise ServiceError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._points: List[int] = []
        self._owners: Dict[int, str] = {}
        self._nodes: Dict[str, List[int]] = {}
        for node in nodes:
            self.add(node)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    @property
    def nodes(self) -> List[str]:
        """Live node names, in insertion order."""
        return list(self._nodes)

    def add(self, node: str) -> None:
        if node in self._nodes:
            raise ServiceError(f"node {node!r} is already on the ring")
        points = []
        for replica in range(self.replicas):
            point = stable_hash(f"{node}#{replica}")
            # Collisions across nodes are astronomically unlikely but
            # would silently misroute; skip the colliding replica so
            # ownership stays unambiguous.
            if point in self._owners:
                continue
            self._owners[point] = node
            bisect.insort(self._points, point)
            points.append(point)
        self._nodes[node] = points

    def remove(self, node: str) -> None:
        points = self._nodes.pop(node, None)
        if points is None:
            raise ServiceError(f"node {node!r} is not on the ring")
        for point in points:
            del self._owners[point]
            index = bisect.bisect_left(self._points, point)
            del self._points[index]

    def with_node(self, node: str) -> "HashRing":
        """A *preview* ring: this ring's nodes plus ``node``.

        The join protocol plans its hand-off against the preview —
        the keys the joiner will own are exactly those whose
        ``node_for`` answer changes between ``self`` and the preview —
        without mutating the live ring the router is still serving
        lookups from.
        """
        preview = HashRing(replicas=self.replicas)
        for existing in self._nodes:
            preview.add(existing)
        preview.add(node)
        return preview

    def node_for(self, key: str) -> str:
        """The node owning ``key`` — stable until that node leaves."""
        if not self._points:
            raise ServiceError("hash ring has no nodes")
        position = stable_hash(key)
        index = bisect.bisect_right(self._points, position)
        if index == len(self._points):
            index = 0
        return self._owners[self._points[index]]

    def nodes_for(self, key: str) -> List[str]:
        """Every live node, ordered by preference for ``key``.

        The first entry is :meth:`node_for`; the rest follow the ring —
        the retry order a failed-over key walks, and the spill order a
        split batch fans out across.
        """
        if not self._points:
            raise ServiceError("hash ring has no nodes")
        position = stable_hash(key)
        start = bisect.bisect_right(self._points, position)
        ordered: List[str] = []
        seen = set()
        for offset in range(len(self._points)):
            node = self._owners[
                self._points[(start + offset) % len(self._points)]
            ]
            if node not in seen:
                seen.add(node)
                ordered.append(node)
        return ordered
