"""Processors and platforms.

A :class:`Processor` is a non-preemptive processing node; a
:class:`Platform` is a fixed set of processors.  Heterogeneity is modeled
through ``processor_type`` labels that must match the ``processor_type`` of
the actors mapped onto the node (an IP block only hosts its own kind of
actor).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

from repro.exceptions import MappingError


@dataclass(frozen=True)
class Processor:
    """One non-preemptive processing node."""

    name: str
    processor_type: str = "proc"

    def __post_init__(self) -> None:
        if not self.name:
            raise MappingError("processor name must be non-empty")


class Platform:
    """An immutable collection of named processors."""

    def __init__(self, processors: Iterable[Processor]) -> None:
        self._processors: Dict[str, Processor] = {}
        for processor in processors:
            if processor.name in self._processors:
                raise MappingError(
                    f"duplicate processor name {processor.name!r}"
                )
            self._processors[processor.name] = processor

    @classmethod
    def homogeneous(cls, count: int, prefix: str = "proc") -> "Platform":
        """A platform of ``count`` identical processors ``proc0..``."""
        if count < 1:
            raise MappingError("a platform needs at least one processor")
        return cls(Processor(f"{prefix}{i}") for i in range(count))

    @property
    def processors(self) -> Tuple[Processor, ...]:
        return tuple(self._processors.values())

    @property
    def processor_names(self) -> Tuple[str, ...]:
        return tuple(self._processors.keys())

    def processor(self, name: str) -> Processor:
        try:
            return self._processors[name]
        except KeyError:
            raise MappingError(f"platform has no processor {name!r}") from None

    def __len__(self) -> int:
        return len(self._processors)

    def __contains__(self, name: object) -> bool:
        return name in self._processors

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Platform({list(self._processors)!r})"
