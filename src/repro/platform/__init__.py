"""Multiprocessor platform model: processors, mappings, use-cases.

The paper's setting (Section 3): each application is an SDFG whose actors
are *bound* to processing nodes of a heterogeneous MPSoC; several
applications may bind actors to the same node, which is where contention
arises.  A *use-case* (Section 1) is a set of concurrently active
applications.
"""

from repro.platform.mapping import (
    Mapping,
    index_mapping,
    modulo_mapping,
    spread_mapping,
)
from repro.platform.platform import Platform, Processor
from repro.platform.usecase import UseCase, all_use_cases, use_cases_of_size

__all__ = [
    "Mapping",
    "Platform",
    "Processor",
    "UseCase",
    "all_use_cases",
    "index_mapping",
    "modulo_mapping",
    "spread_mapping",
    "use_cases_of_size",
]
