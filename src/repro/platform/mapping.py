"""Actor-to-processor bindings.

A :class:`Mapping` binds every actor of every application in a use-case to
one processor of a :class:`~repro.platform.platform.Platform`.  The paper's
evaluation binds actor *j* of every application to processor *j* (its
Section 3 example: ``a_i`` and ``b_i`` share ``Proc_i``), which
:func:`index_mapping` reproduces; custom mappings are plain dictionaries.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping as TMapping, Tuple

from repro.exceptions import MappingError
from repro.platform.platform import Platform
from repro.sdf.graph import SDFGraph


class Mapping:
    """Binding of ``(application, actor) -> processor``.

    Parameters
    ----------
    platform:
        The target platform.
    bindings:
        ``{application_name: {actor_name: processor_name}}``.
    priorities:
        Optional static arbitration priorities (larger = more urgent),
        either per application (``{app: priority}``, applied to every
        actor of the application) or per actor
        (``{app: {actor: priority}}``).  Unlisted actors default to 0.
        Only priority-aware waiting models and arbiters read these.
    """

    def __init__(
        self,
        platform: Platform,
        bindings: TMapping[str, TMapping[str, str]],
        priorities: "TMapping[str, float | TMapping[str, float]] | None" = None,
    ) -> None:
        self.platform = platform
        self._bindings: Dict[str, Dict[str, str]] = {
            app: dict(actor_map) for app, actor_map in bindings.items()
        }
        for app, actor_map in self._bindings.items():
            for actor, processor in actor_map.items():
                if processor not in platform:
                    raise MappingError(
                        f"application {app!r} binds actor {actor!r} to "
                        f"unknown processor {processor!r}"
                    )
        self._priorities: Dict[Tuple[str, str], float] = {}
        if priorities is not None:
            for app, value in priorities.items():
                if app not in self._bindings:
                    raise MappingError(
                        f"priorities name unbound application {app!r}"
                    )
                if isinstance(value, (int, float)):
                    for actor in self._bindings[app]:
                        self._priorities[(app, actor)] = float(value)
                else:
                    for actor, priority in value.items():
                        if actor not in self._bindings[app]:
                            raise MappingError(
                                f"priorities name unbound actor "
                                f"{actor!r} of application {app!r}"
                            )
                        self._priorities[(app, actor)] = float(priority)

    def processor_of(self, application: str, actor: str) -> str:
        """Processor hosting ``actor`` of ``application``."""
        try:
            return self._bindings[application][actor]
        except KeyError:
            raise MappingError(
                f"no binding for actor {actor!r} of application "
                f"{application!r}"
            ) from None

    def applications(self) -> Tuple[str, ...]:
        return tuple(self._bindings.keys())

    def priority_of(self, application: str, actor: str) -> float:
        """Arbitration priority of one bound actor (default 0)."""
        return self._priorities.get((application, actor), 0.0)

    def priorities(self) -> Dict[Tuple[str, str], float]:
        """All explicitly assigned priorities (copy)."""
        return dict(self._priorities)

    def with_priorities(
        self,
        priorities: "TMapping[str, float | TMapping[str, float]]",
    ) -> "Mapping":
        """A copy of this mapping carrying ``priorities``.

        Replaces any previously assigned priorities — the usual flow is
        a priority-less gallery mapping specialized per scenario.
        """
        return Mapping(
            self.platform, self._bindings, priorities=priorities
        )

    def actors_on(
        self, processor: str, applications: Iterable[str] | None = None
    ) -> List[Tuple[str, str]]:
        """All ``(application, actor)`` pairs bound to ``processor``.

        Restricted to ``applications`` when given — this is how analyses
        scope contention to the applications active in a use-case.
        """
        if processor not in self.platform:
            raise MappingError(f"unknown processor {processor!r}")
        selected = (
            set(applications)
            if applications is not None
            else set(self._bindings)
        )
        result: List[Tuple[str, str]] = []
        for app, actor_map in self._bindings.items():
            if app not in selected:
                continue
            for actor, proc in actor_map.items():
                if proc == processor:
                    result.append((app, actor))
        return result

    def validate_against(self, graphs: Iterable[SDFGraph]) -> None:
        """Check that every actor of every graph is bound and type-compatible.

        Raises
        ------
        MappingError
            On an unbound actor, an unknown application, or a processor
            type mismatch.
        """
        for graph in graphs:
            if graph.name not in self._bindings:
                raise MappingError(
                    f"application {graph.name!r} has no bindings"
                )
            bound = self._bindings[graph.name]
            for actor in graph.actors:
                if actor.name not in bound:
                    raise MappingError(
                        f"actor {actor.name!r} of application "
                        f"{graph.name!r} is not bound to any processor"
                    )
                processor = self.platform.processor(bound[actor.name])
                if processor.processor_type != actor.processor_type:
                    raise MappingError(
                        f"actor {actor.name!r} (type "
                        f"{actor.processor_type!r}) cannot run on processor "
                        f"{processor.name!r} (type "
                        f"{processor.processor_type!r})"
                    )


def modulo_mapping(
    graphs: Iterable[SDFGraph],
    platform: Platform,
) -> Mapping:
    """Bind actor *i* to processor ``i mod width`` — any platform width.

    Unlike :func:`index_mapping` this accepts platforms *narrower* than
    the widest application, stacking several actors of one application
    (and of every concurrent application) on the same node.  Used by the
    contention-density ablation.
    """
    graph_list = list(graphs)
    if not graph_list:
        raise MappingError("modulo_mapping needs at least one application")
    processor_names = platform.processor_names
    bindings: Dict[str, Dict[str, str]] = {}
    for graph in graph_list:
        bindings[graph.name] = {
            actor.name: processor_names[i % len(processor_names)]
            for i, actor in enumerate(graph.actors)
        }
    return Mapping(platform, bindings)


def spread_mapping(
    graphs: Iterable[SDFGraph],
    platform: Platform,
) -> Mapping:
    """Bind actor *i* of the *k*-th application to processor
    ``(i + k) mod width``.

    The per-application offset spreads load over platforms *wider* than
    a single application, lowering the number of co-mapped actors per
    node — the low-contention end of the density ablation.
    """
    graph_list = list(graphs)
    if not graph_list:
        raise MappingError("spread_mapping needs at least one application")
    processor_names = platform.processor_names
    bindings: Dict[str, Dict[str, str]] = {}
    for app_index, graph in enumerate(graph_list):
        bindings[graph.name] = {
            actor.name: processor_names[
                (i + app_index) % len(processor_names)
            ]
            for i, actor in enumerate(graph.actors)
        }
    return Mapping(platform, bindings)


def index_mapping(
    graphs: Iterable[SDFGraph],
    platform: Platform | None = None,
) -> Mapping:
    """Bind the *i*-th actor of every application to the *i*-th processor.

    This reproduces the paper's evaluation setup: applications with eight
    to ten actors on a ten-processor platform put at most one actor per
    application on each node, so a node hosts up to one actor from each
    concurrently running application.  When ``platform`` is omitted, a
    homogeneous platform just wide enough for the largest application is
    created.
    """
    graph_list = list(graphs)
    if not graph_list:
        raise MappingError("index_mapping needs at least one application")
    width = max(len(g) for g in graph_list)
    if platform is None:
        platform = Platform.homogeneous(width)
    elif len(platform) < width:
        raise MappingError(
            f"platform has {len(platform)} processors but the widest "
            f"application needs {width}"
        )
    processor_names = platform.processor_names
    bindings: Dict[str, Dict[str, str]] = {}
    for graph in graph_list:
        bindings[graph.name] = {
            actor.name: processor_names[i % len(processor_names)]
            for i, actor in enumerate(graph.actors)
        }
    return Mapping(platform, bindings)
