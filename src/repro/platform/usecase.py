"""Use-cases: sets of concurrently active applications.

The paper (Section 1) defines a use-case as "a possible set of concurrently
running applications" and evaluates all 2^10 combinations of its ten
benchmark applications.  :class:`UseCase` is an ordered, hashable subset of
application names; helpers enumerate the full power set or fixed-size
slices of it (Figure 6 groups use-cases by cardinality).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.exceptions import ExperimentError
from repro.sdf.graph import SDFGraph


@dataclass(frozen=True)
class UseCase:
    """An ordered set of active application names."""

    applications: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(set(self.applications)) != len(self.applications):
            raise ExperimentError(
                f"use-case contains duplicate applications: "
                f"{self.applications!r}"
            )

    @classmethod
    def of(cls, *names: str) -> "UseCase":
        return cls(tuple(names))

    @property
    def size(self) -> int:
        return len(self.applications)

    def __contains__(self, name: object) -> bool:
        return name in self.applications

    def __iter__(self) -> Iterator[str]:
        return iter(self.applications)

    def __len__(self) -> int:
        return len(self.applications)

    def select(self, graphs: Sequence[SDFGraph]) -> List[SDFGraph]:
        """The graphs active in this use-case, in use-case order."""
        by_name: Dict[str, SDFGraph] = {g.name: g for g in graphs}
        missing = [n for n in self.applications if n not in by_name]
        if missing:
            raise ExperimentError(
                f"use-case references unknown applications: {missing!r}"
            )
        return [by_name[n] for n in self.applications]

    def label(self) -> str:
        """Compact display label, e.g. ``"A+B+C"``."""
        return "+".join(self.applications)


def all_use_cases(
    application_names: Sequence[str],
    include_empty: bool = False,
) -> List[UseCase]:
    """Every subset of ``application_names`` (the 2^N sweep of the paper)."""
    use_cases: List[UseCase] = []
    for size in range(0 if include_empty else 1, len(application_names) + 1):
        for combo in itertools.combinations(application_names, size):
            use_cases.append(UseCase(combo))
    return use_cases


def use_cases_of_size(
    application_names: Sequence[str],
    size: int,
    sample: int | None = None,
    seed: int = 0,
) -> List[UseCase]:
    """All (or ``sample`` random) use-cases with exactly ``size`` apps.

    Sampling is deterministic for a given ``seed`` — Figure 6 buckets
    use-cases by size, and C(10, 5) = 252 is more simulation than a CI run
    wants, so the harness samples each bucket.
    """
    if not 0 < size <= len(application_names):
        raise ExperimentError(
            f"use-case size {size} out of range 1..{len(application_names)}"
        )
    combos = list(itertools.combinations(application_names, size))
    if sample is not None and sample < len(combos):
        rng = random.Random(seed)
        combos = rng.sample(combos, sample)
        combos.sort()
    return [UseCase(c) for c in combos]


#: Default selection seed shared by every sweep entry point (the
#: experiment runner's SweepConfig, the estimator's sweep_all_sizes and
#: the CLI), so their sampled use-case sets coincide by default.
DEFAULT_SWEEP_SEED = 1


def sampled_use_cases_by_size(
    application_names: Sequence[str],
    samples_per_size: int | None = None,
    seed: int = DEFAULT_SWEEP_SEED,
) -> List[UseCase]:
    """Use-cases of every size 1..N, optionally sampled per size.

    The selection convention shared by the experiment runner's sweep and
    :meth:`ProbabilisticEstimator.sweep_all_sizes`: each cardinality
    draws its sample with a size-derived seed (``seed + size``), so the
    same arguments always pick the same use-cases.
    ``samples_per_size=None`` is the exhaustive ``2^N - 1`` sweep.
    """
    selected: List[UseCase] = []
    for size in range(1, len(application_names) + 1):
        selected.extend(
            use_cases_of_size(
                application_names,
                size,
                sample=samples_per_size,
                seed=seed + size,
            )
        )
    return selected
