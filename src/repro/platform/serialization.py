"""Platform/mapping (de)serialization.

Mirrors :mod:`repro.sdf.serialization` for the platform side so whole
experimental setups (graphs + platform + bindings) can be stored as one
JSON document and reloaded bit-identically — useful for pinning a
generated benchmark suite in version control or sharing a repro case.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.exceptions import MappingError
from repro.platform.mapping import Mapping
from repro.platform.platform import Platform, Processor


def platform_to_dict(platform: Platform) -> Dict[str, Any]:
    """Plain-dict form of a platform."""
    return {
        "processors": [
            {"name": p.name, "processor_type": p.processor_type}
            for p in platform.processors
        ]
    }


def platform_from_dict(data: Dict[str, Any]) -> Platform:
    """Rebuild a platform from :func:`platform_to_dict` output."""
    try:
        return Platform(
            Processor(
                name=p["name"],
                processor_type=p.get("processor_type", "proc"),
            )
            for p in data["processors"]
        )
    except KeyError as missing:
        raise MappingError(
            f"platform dict is missing key {missing}"
        ) from None


def mapping_to_dict(mapping: Mapping) -> Dict[str, Any]:
    """Plain-dict form of a mapping (platform included)."""
    bindings: Dict[str, Dict[str, str]] = {}
    for processor in mapping.platform.processor_names:
        for app, actor in mapping.actors_on(processor):
            bindings.setdefault(app, {})[actor] = processor
    document: Dict[str, Any] = {
        "platform": platform_to_dict(mapping.platform),
        "bindings": bindings,
    }
    priorities: Dict[str, Dict[str, float]] = {}
    for (app, actor), priority in sorted(mapping.priorities().items()):
        priorities.setdefault(app, {})[actor] = priority
    if priorities:
        document["priorities"] = priorities
    return document


def mapping_from_dict(data: Dict[str, Any]) -> Mapping:
    """Rebuild a mapping from :func:`mapping_to_dict` output."""
    try:
        platform = platform_from_dict(data["platform"])
        return Mapping(
            platform,
            data["bindings"],
            priorities=data.get("priorities"),
        )
    except KeyError as missing:
        raise MappingError(
            f"mapping dict is missing key {missing}"
        ) from None


def mapping_to_json(mapping: Mapping, indent: int = 2) -> str:
    return json.dumps(mapping_to_dict(mapping), indent=indent)


def mapping_from_json(text: str) -> Mapping:
    return mapping_from_dict(json.loads(text))
