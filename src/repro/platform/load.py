"""Analytical processor-load queries.

A node's *load* is the sum of the blocking probabilities of the actors
bound to it — the analytical counterpart of the utilization the
simulator measures.  Loads above 1 flag processors that cannot sustain
the applications' isolation rates: periods will stretch there, and the
probabilistic estimate degrades the further past saturation the node
sits.  The admission-control and design-space examples use these queries
to explain *why* a configuration fails.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.blocking import build_profiles
from repro.platform.mapping import Mapping
from repro.platform.usecase import UseCase
from repro.sdf.graph import SDFGraph


def processor_loads(
    graphs: Sequence[SDFGraph],
    mapping: Mapping,
    use_case: Optional[UseCase] = None,
) -> Dict[str, float]:
    """Sum of blocking probabilities per processor.

    Uses isolation periods (Definition 4), matching the estimator's
    single-pass operating point.
    """
    if use_case is None:
        use_case = UseCase(tuple(g.name for g in graphs))
    active = use_case.select(list(graphs))
    profiles = build_profiles(active)
    loads: Dict[str, float] = {
        name: 0.0 for name in mapping.platform.processor_names
    }
    for (app, actor), profile in profiles.items():
        processor = mapping.processor_of(app, actor)
        loads[processor] += profile.probability
    return loads


def bottleneck_processor(
    graphs: Sequence[SDFGraph],
    mapping: Mapping,
    use_case: Optional[UseCase] = None,
) -> Tuple[str, float]:
    """The most loaded processor and its load."""
    loads = processor_loads(graphs, mapping, use_case)
    processor = max(loads, key=loads.get)  # type: ignore[arg-type]
    return processor, loads[processor]


def saturated_processors(
    graphs: Sequence[SDFGraph],
    mapping: Mapping,
    use_case: Optional[UseCase] = None,
    threshold: float = 1.0,
) -> List[str]:
    """Processors whose load meets or exceeds ``threshold``."""
    loads = processor_loads(graphs, mapping, use_case)
    return sorted(
        name for name, load in loads.items() if load >= threshold
    )
