"""Command-line interface.

The subcommands mirror the library's workflow::

    python -m repro generate --seed 7 --json         # make a graph
    python -m repro info graph.json                  # analyze one graph
    python -m repro estimate --suite 5 --model exact # Fig.-4 estimate
    python -m repro simulate --suite 5               # reference DES run
    python -m repro sweep --suite 5 --samples 4      # mini Table 1/Fig 6
    python -m repro runtime --suite 4 --events 1000  # resource manager
    python -m repro models                           # model registry
    python -m repro conformance --suite 4            # analytic vs DES

Application sets come from the deterministic paper suite (``--suite N``
= first N of the ten seeded applications), the media gallery
(``--media``) or graph JSON files (``--file``, repeatable).  The
``sweep --estimates-only`` mode honors a persistent result store
(``--store results.jsonl``) and fans misses out over worker processes
(``--jobs 4``).  All output is plain text.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.core.estimator import ProbabilisticEstimator
from repro.exceptions import ExperimentError
from repro.experiments.accuracy import summarize_by_size, summarize_sweep
from repro.experiments.reporting import render_series, render_table
from repro.experiments.runner import SweepConfig, run_sweep
from repro.experiments.setup import BenchmarkSuite, paper_benchmark_suite
from repro.generation.gallery import media_device_suite
from repro.generation.random_sdf import GeneratorConfig, random_sdf_graph
from repro.platform.mapping import index_mapping
from repro.platform.usecase import UseCase
from repro.sdf.analysis import period as analytical_period
from repro.sdf.liveness import is_live
from repro.sdf.repetition import repetition_vector
from repro.sdf.serialization import graph_from_json, graph_to_json
from repro.sdf.visualization import to_dot
from repro.search import (
    DEFAULT_MAPPINGS,
    DEFAULT_SLACK,
    OBJECTIVES,
    STRATEGIES,
    place as run_place,
)
from repro.simulation.engine import SimulationConfig, Simulator


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    arguments = parser.parse_args(argv)
    try:
        arguments.handler(arguments)
    except Exception as error:  # surface library errors as CLI errors
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Probabilistic resource-contention performance estimation "
            "(reproduction of Kumar et al., DAC 2007)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate a random SDF graph"
    )
    generate.add_argument("--seed", type=int, required=True)
    generate.add_argument("--name", default="G")
    generate.add_argument(
        "--actors", type=int, nargs=2, metavar=("LO", "HI"),
        default=(8, 10),
    )
    generate.add_argument("--pipeline-depth", type=int, default=1)
    output = generate.add_mutually_exclusive_group()
    output.add_argument("--json", action="store_true", default=True)
    output.add_argument("--dot", action="store_true")
    generate.set_defaults(handler=_cmd_generate)

    info = commands.add_parser("info", help="analyze one graph JSON file")
    info.add_argument("file", help="graph JSON (see 'generate --json')")
    info.set_defaults(handler=_cmd_info)

    for name, helptext in (
        ("estimate", "probabilistic period estimation for a use-case"),
        ("simulate", "reference discrete-event simulation of a use-case"),
    ):
        sub = commands.add_parser(name, help=helptext)
        _add_application_selection(sub)
        sub.add_argument(
            "--apps",
            help="comma-separated active applications (default: all)",
        )
        if name == "estimate":
            sub.add_argument("--model", default="second_order")
            sub.add_argument("--iterations", type=int, default=1)
            sub.set_defaults(handler=_cmd_estimate)
        else:
            sub.add_argument("--iterations", type=int, default=100)
            sub.set_defaults(handler=_cmd_simulate)

    sweep = commands.add_parser(
        "sweep", help="mini Table-1 / Figure-6 sweep"
    )
    _add_application_selection(sweep)
    sweep.add_argument(
        "--samples",
        type=int,
        default=4,
        help="use-cases sampled per size (0 = exhaustive 2^N)",
    )
    sweep.add_argument("--sim-iterations", type=int, default=40)
    sweep.add_argument(
        "--estimates-only",
        action="store_true",
        help=(
            "skip the reference simulations and batch-estimate every "
            "sampled use-case on the incremental analysis engine "
            "(--samples 0 = exhaustive 2^N)"
        ),
    )
    sweep.add_argument(
        "--model",
        default=None,
        help="waiting model for --estimates-only (default second_order)",
    )
    sweep.add_argument(
        "--iterations",
        type=int,
        default=1,
        metavar="N",
        help=(
            "fixed-point refinement passes per estimate for "
            "--estimates-only (batched across the whole sweep with a "
            "per-row convergence mask on the numpy backend)"
        ),
    )
    sweep.add_argument(
        "--store",
        metavar="PATH",
        default=None,
        help=(
            "JSON-lines result store for --estimates-only: stored "
            "use-cases are cache hits, misses are computed and "
            "appended (hit/miss counts are printed)"
        ),
    )
    sweep.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes for --estimates-only misses "
            "(1 = in-process)"
        ),
    )
    sweep.add_argument(
        "--backend",
        choices=("auto", "numpy", "python"),
        default=None,
        help=(
            "array backend for --estimates-only: numpy batches whole "
            "use-cases, python preserves the scalar reference "
            "arithmetic; auto picks numpy when installed (default: "
            "the REPRO_BACKEND environment variable, then auto)"
        ),
    )
    sweep.set_defaults(handler=_cmd_sweep)

    runtime = commands.add_parser(
        "runtime",
        help=(
            "replay a generated scenario-event stream through the "
            "run-time resource manager"
        ),
    )
    _add_application_selection(runtime)
    runtime.add_argument("--events", type=int, default=500)
    runtime.add_argument("--seed", type=int, default=7)
    runtime.add_argument(
        "--policy",
        choices=("reject", "evict", "downgrade", "downgrade-greedy"),
        default="downgrade",
        help="QoS policy applied when a request does not fit",
    )
    runtime.add_argument(
        "--arrival",
        choices=("poisson", "bursty", "diurnal"),
        default="poisson",
    )
    runtime.add_argument(
        "--mean-interarrival",
        type=float,
        default=100.0,
        help="mean time between start requests (the load knob)",
    )
    runtime.add_argument(
        "--mean-holding",
        type=float,
        default=400.0,
        help="mean time an application stays running",
    )
    runtime.add_argument(
        "--slack",
        type=float,
        default=1.5,
        help=(
            "each application's required period = slack x its "
            "isolation period"
        ),
    )
    runtime.add_argument(
        "--validate",
        type=int,
        default=0,
        metavar="N",
        help=(
            "cross-check up to N resident-set snapshots against the "
            "discrete-event simulator"
        ),
    )
    runtime.add_argument(
        "--save-trace",
        metavar="PATH",
        default=None,
        help="write the generated trace as JSON",
    )
    runtime.add_argument(
        "--save-log",
        metavar="PATH",
        default=None,
        help="write the decision log as JSON",
    )
    runtime.set_defaults(handler=_cmd_runtime)

    placement = commands.add_parser(
        "place",
        help=(
            "search the placement space (mappings x priorities x WRR "
            "weights) for the best feasible configuration under "
            "per-application period targets"
        ),
    )
    _add_application_selection(placement)
    placement.add_argument(
        "--strategy",
        choices=tuple(sorted(STRATEGIES)),
        default="greedy",
        help="search strategy (exhaustive is the ground truth)",
    )
    placement.add_argument(
        "--model",
        default="wrr",
        help=(
            "waiting-model spec; a bare weights-capable name when "
            "--weights spans choices (the search appends each "
            "candidate's weight vector)"
        ),
    )
    placement.add_argument(
        "--objective",
        choices=OBJECTIVES,
        default="total_period",
        help="what to minimize among feasible candidates",
    )
    placement.add_argument(
        "--seed",
        type=int,
        default=0,
        help=(
            "seed of the stochastic strategies (same seed = "
            "byte-identical result JSON)"
        ),
    )
    placement.add_argument(
        "--slack",
        type=float,
        default=DEFAULT_SLACK,
        help=(
            "derived target per application = slack x its isolation "
            "period (ignored when --target is given)"
        ),
    )
    placement.add_argument(
        "--target",
        action="append",
        default=None,
        metavar="APP=PERIOD",
        help="explicit period target (repeatable)",
    )
    placement.add_argument(
        "--mappings",
        default=",".join(DEFAULT_MAPPINGS),
        metavar="NAME[,NAME...]",
        help="mapping recipes to consider (index, spread, modulo)",
    )
    placement.add_argument(
        "--weights",
        default="1,2",
        metavar="W[,W...]",
        help=(
            "WRR slice weights to consider per application "
            "('none' disables the weight axis)"
        ),
    )
    placement.add_argument(
        "--priority-levels",
        default=None,
        metavar="P[,P...]",
        help=(
            "arbitration levels to consider per application "
            "(default: no priority axis)"
        ),
    )
    placement.add_argument(
        "--json",
        action="store_true",
        help="print the full PlacementResult JSON instead of a table",
    )
    placement.set_defaults(handler=_cmd_place)

    serve = commands.add_parser(
        "serve",
        help=(
            "long-lived estimation server: JSON-lines over TCP (or "
            "stdio), micro-batching concurrent queries onto warm "
            "engine pools"
        ),
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (0 = ephemeral; the bound port is printed)",
    )
    serve.add_argument(
        "--stdio",
        action="store_true",
        help=(
            "serve one session over stdin/stdout instead of TCP "
            "(requests in, responses out, one JSON object per line)"
        ),
    )
    serve.add_argument(
        "--batch-window",
        type=float,
        default=2.0,
        metavar="MS",
        help=(
            "milliseconds the batcher lingers after the first arrival "
            "so concurrent queries coalesce (0 = drain immediately)"
        ),
    )
    serve.add_argument("--max-batch", type=int, default=128, metavar="N")
    serve.add_argument(
        "--max-pending",
        type=int,
        default=1024,
        metavar="N",
        help="queue depth that counts as overload",
    )
    serve.add_argument(
        "--shed-policy",
        choices=("reject", "evict", "downgrade"),
        default="reject",
        help=(
            "overload behaviour (runtime QoS vocabulary): reject the "
            "newcomer, evict the oldest pending query, or downgrade "
            "the newcomer to a cheaper waiting model"
        ),
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=4096,
        metavar="N",
        help="LRU result-cache entries (0 disables caching)",
    )
    serve.add_argument(
        "--backend",
        choices=("auto", "numpy", "python"),
        default=None,
        help="array backend for the pool's estimators",
    )
    serve.add_argument(
        "--fixed-point-iterations",
        type=int,
        default=1,
        metavar="N",
        help=(
            "fixed-point refinement passes per solve (server-wide; "
            "vectorized backends refine whole micro-batches with a "
            "per-row convergence mask)"
        ),
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help=(
            "solver worker processes (0 = single solver thread); each "
            "worker owns a warm engine pool, galleries stick to one "
            "worker by consistent hash, large batches split across "
            "workers"
        ),
    )
    serve.add_argument(
        "--split-threshold",
        type=int,
        default=None,
        metavar="N",
        help=(
            "with --workers, batches larger than N for one gallery "
            "fan out over several workers instead of queueing on the "
            "gallery's home worker"
        ),
    )
    serve.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help=(
            "expose merged Prometheus metrics over HTTP GET /metrics "
            "on this port (0 = ephemeral; the bound address is printed)"
        ),
    )
    serve.add_argument(
        "--trace-export",
        default=None,
        metavar="PATH",
        help=(
            "on shutdown, write the session's spans as a Chrome-trace "
            "(Perfetto-loadable) JSON timeline"
        ),
    )
    serve.add_argument(
        "--span-log",
        default=None,
        metavar="PATH",
        help="stream every finished span to PATH as JSON lines",
    )
    serve.set_defaults(handler=_cmd_serve)

    route = commands.add_parser(
        "route",
        help=(
            "shard router: one JSON-lines front-end that consistent-"
            "hashes estimate queries by gallery over N running "
            "estimation-server shards, with ping health checks and "
            "idempotent failover retries"
        ),
    )
    route.add_argument(
        "--shard",
        dest="shards",
        action="append",
        required=True,
        metavar="HOST:PORT",
        help=(
            "address of one running `repro serve` shard "
            "(repeat per shard)"
        ),
    )
    route.add_argument("--host", default="127.0.0.1")
    route.add_argument(
        "--port",
        type=int,
        default=0,
        help="front-end TCP port (0 = ephemeral; printed once bound)",
    )
    route.add_argument(
        "--health-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help=(
            "seconds between background shard pings (down shards "
            "leave the ring, resurrected ones re-join; 0 disables)"
        ),
    )
    route.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help=(
            "extra shards a query may fail over to when its home "
            "shard dies mid-request"
        ),
    )
    route.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help=(
            "expose the router's merged Prometheus metrics over HTTP "
            "GET /metrics on this port (0 = ephemeral)"
        ),
    )
    route.add_argument(
        "--batch-window",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help=(
            "router micro-batching: linger this long so same-gallery "
            "estimates from different client connections coalesce "
            "into one framed estimate_batch per shard hop (0 = off, "
            "forward query-by-query)"
        ),
    )
    route.add_argument(
        "--replication",
        type=int,
        default=1,
        metavar="N",
        help=(
            "replicate each freshly solved answer to the next N "
            "shards in ring order so shard death fails over to a "
            "warm replica instead of a cold re-solve (0 = off)"
        ),
    )
    route.add_argument(
        "--handoff-limit",
        type=int,
        default=256,
        metavar="N",
        help=(
            "cached entries handed off per gallery when a shard "
            "joins or leaves the ring"
        ),
    )
    route.add_argument(
        "--shards-file",
        default=None,
        metavar="PATH",
        help=(
            "membership file (one host:port per line, # comments); "
            "SIGHUP re-reads it and joins/leaves shards so the fleet "
            "reshapes without restarting the router (admin join/leave "
            "protocol verbs work too)"
        ),
    )
    route.set_defaults(handler=_cmd_route)

    metrics = commands.add_parser(
        "metrics",
        help=(
            "scrape a running estimation server's merged metrics "
            "(Prometheus text, or --json for the snapshot)"
        ),
    )
    metrics.add_argument("--host", default="127.0.0.1")
    metrics.add_argument(
        "--port", type=int, required=True, help="server TCP port"
    )
    metrics.add_argument(
        "--json",
        action="store_true",
        help="print the JSON snapshot instead of Prometheus text",
    )
    metrics.set_defaults(handler=_cmd_metrics)

    models = commands.add_parser(
        "models",
        help=(
            "list the registered contention models (semantics, batch "
            "support, matching DES arbiter)"
        ),
    )
    models.set_defaults(handler=_cmd_models)

    conformance = commands.add_parser(
        "conformance",
        help=(
            "check every registered model's declared semantics "
            "(conservative bound / mean tolerance) against the "
            "discrete-event simulator on seeded scenario batches"
        ),
    )
    conformance.add_argument(
        "--suite",
        type=int,
        default=4,
        metavar="N",
        help="applications per gallery (paper-style seeded galleries)",
    )
    conformance.add_argument(
        "--scenarios",
        type=int,
        default=50,
        metavar="N",
        help="seeded scenarios per model",
    )
    conformance.add_argument(
        "--seed",
        type=int,
        default=None,
        help="master scenario seed (default: the library's)",
    )
    conformance.add_argument(
        "--models",
        default=None,
        metavar="NAME[,NAME...]",
        help="restrict to these registered models (default: all)",
    )
    conformance.add_argument(
        "--sim-iterations", type=int, default=60, metavar="N"
    )
    conformance.add_argument(
        "--engine-backend",
        default=None,
        metavar="NAME",
        help=(
            "simulation engine backend (e.g. 'python', 'numpy'; "
            "default: the resolution order of REPRO_BACKEND/auto); "
            "all flavours are byte-identical, the knob exists to "
            "exercise and profile each stepping loop"
        ),
    )
    conformance.add_argument(
        "--profile",
        action="store_true",
        help=(
            "print the accumulated engine profile (events, stale "
            "events, preemptions, per-phase wall time by flavour) "
            "after the conformance table"
        ),
    )
    conformance.set_defaults(handler=_cmd_conformance)

    reproduce = commands.add_parser(
        "reproduce",
        help="regenerate the paper's Table 1, Figures 5-6 and timing",
    )
    reproduce.add_argument(
        "--scale",
        choices=("quick", "paper"),
        default="quick",
        help=(
            "quick: sampled use-cases, short simulations (seconds); "
            "paper: all 2^N use-cases, longer simulations (minutes)"
        ),
    )
    reproduce.add_argument(
        "--applications", type=int, default=10, metavar="N"
    )
    reproduce.set_defaults(handler=_cmd_reproduce)

    return parser


def _add_application_selection(sub: argparse.ArgumentParser) -> None:
    selection = sub.add_mutually_exclusive_group(required=True)
    selection.add_argument(
        "--suite",
        type=int,
        metavar="N",
        help="first N applications of the deterministic paper suite",
    )
    selection.add_argument(
        "--media",
        action="store_true",
        help="the five media-device gallery applications",
    )
    selection.add_argument(
        "--file",
        action="append",
        metavar="GRAPH.json",
        help="graph JSON file (repeatable)",
    )


def _selected_suite(arguments) -> BenchmarkSuite:
    if arguments.suite is not None:
        return paper_benchmark_suite(application_count=arguments.suite)
    if arguments.media:
        graphs = media_device_suite()
    else:
        graphs = []
        for path in arguments.file:
            with open(path) as handle:
                graphs.append(graph_from_json(handle.read()))
    mapping = index_mapping(graphs)
    return BenchmarkSuite(
        graphs=tuple(graphs),
        platform=mapping.platform,
        mapping=mapping,
        seed=0,
    )


def _selected_use_case(arguments, suite: BenchmarkSuite) -> UseCase:
    if getattr(arguments, "apps", None):
        return UseCase(tuple(arguments.apps.split(",")))
    return UseCase(suite.application_names)


# ----------------------------------------------------------------------
# Handlers
# ----------------------------------------------------------------------
def _cmd_generate(arguments) -> None:
    graph = random_sdf_graph(
        arguments.name,
        seed=arguments.seed,
        config=GeneratorConfig(
            actor_count_range=tuple(arguments.actors),
            pipeline_depth=arguments.pipeline_depth,
        ),
    )
    if arguments.dot:
        print(to_dot(graph))
    else:
        print(graph_to_json(graph))


def _cmd_info(arguments) -> None:
    with open(arguments.file) as handle:
        graph = graph_from_json(handle.read())
    vector = repetition_vector(graph)
    rows = [
        ["actors", len(graph)],
        ["channels", len(graph.channels)],
        ["strongly connected", graph.is_strongly_connected()],
        ["live", is_live(graph)],
        ["repetition vector", " ".join(
            f"{k}:{v}" for k, v in vector.items()
        )],
        ["period (isolation)", f"{analytical_period(graph):.2f}"],
        [
            "workload / iteration",
            "{:.0f}".format(
                sum(
                    vector[a.name] * a.execution_time
                    for a in graph.actors
                )
            ),
        ],
    ]
    print(render_table(["property", "value"], rows, title=graph.name))


def _cmd_estimate(arguments) -> None:
    suite = _selected_suite(arguments)
    use_case = _selected_use_case(arguments, suite)
    estimator = ProbabilisticEstimator(
        list(suite.graphs),
        mapping=suite.mapping,
        waiting_model=arguments.model,
    )
    result = estimator.estimate(
        use_case, iterations=arguments.iterations
    )
    rows = [
        [
            name,
            f"{result.isolation_periods[name]:.1f}",
            f"{result.periods[name]:.1f}",
            f"{result.normalized_period_of(name):.2f}",
        ]
        for name in use_case
    ]
    print(
        render_table(
            ["app", "isolation", "estimated", "inflation"],
            rows,
            title=(
                f"Estimate ({result.model_name}) for use-case "
                f"{use_case.label()}"
            ),
        )
    )


def _cmd_simulate(arguments) -> None:
    suite = _selected_suite(arguments)
    use_case = _selected_use_case(arguments, suite)
    active = use_case.select(list(suite.graphs))
    result = Simulator(
        active,
        mapping=suite.mapping,
        config=SimulationConfig(
            target_iterations=arguments.iterations
        ),
    ).run()
    rows = [
        [
            name,
            f"{result.period_of(name):.1f}",
            f"{result.worst_period_of(name):.1f}",
            result.metrics[name].iterations,
        ]
        for name in use_case
    ]
    print(
        render_table(
            ["app", "period", "worst iteration", "iterations"],
            rows,
            title=f"Simulation of use-case {use_case.label()}",
        )
    )
    busiest = sorted(
        result.processor_utilization.items(),
        key=lambda item: -item[1],
    )[:5]
    print(
        "busiest processors: "
        + ", ".join(f"{name}={value:.2f}" for name, value in busiest)
    )


def _cmd_place(arguments) -> None:
    suite = _selected_suite(arguments)
    targets = None
    if arguments.target:
        targets = {}
        for pair in arguments.target:
            app, _, raw = pair.partition("=")
            if not app or not raw:
                raise ExperimentError(
                    f"bad --target {pair!r}; expected APP=PERIOD"
                )
            targets[app] = float(raw)
    weights = None
    if arguments.weights and arguments.weights.lower() != "none":
        weights = tuple(
            int(part) for part in arguments.weights.split(",") if part
        )
    levels = None
    if arguments.priority_levels:
        levels = tuple(
            float(part)
            for part in arguments.priority_levels.split(",")
            if part
        )
    result = run_place(
        list(suite.graphs),
        platform=suite.platform,
        targets=targets,
        slack=arguments.slack,
        strategy=arguments.strategy,
        model=arguments.model,
        objective=arguments.objective,
        seed=arguments.seed,
        mappings=tuple(
            part for part in arguments.mappings.split(",") if part
        ),
        weight_choices=weights,
        priority_levels=levels,
    )
    if arguments.json:
        print(result.to_json_str())
        return
    rows = [
        [
            app,
            f"{result.best.periods[app]:.1f}",
            (
                f"{result.targets[app]:.1f}"
                if result.targets.get(app) is not None
                else "-"
            ),
            "yes" if app not in result.best.violations else "NO",
        ]
        for app in result.applications
    ]
    print(
        render_table(
            ["app", "period", "target", "meets"],
            rows,
            title=(
                f"Placement ({result.strategy}, {result.objective}) — "
                f"{'feasible' if result.feasible else 'infeasible'}"
            ),
        )
    )
    weights_text = (
        ", ".join(
            f"{app}={weight}"
            for app, weight in sorted(result.best.weights.items())
        )
        or "-"
    )
    print(
        f"best: mapping={result.best.mapping} weights=[{weights_text}] "
        f"model={result.best.model}"
    )
    print(
        f"objective value: {result.best.objective_value:.1f}; "
        f"evaluated {result.evaluated} of {result.space['size']} "
        f"candidates in {result.steps} steps"
    )


def _cmd_sweep(arguments) -> None:
    if arguments.samples < 0:
        raise ExperimentError(
            f"--samples must be >= 0 (0 = exhaustive 2^N), "
            f"got {arguments.samples}"
        )
    if arguments.estimates_only:
        _cmd_sweep_estimates_only(arguments)
        return
    suite = _selected_suite(arguments)
    for flag, default in (
        ("model", None),
        ("store", None),
        ("jobs", 1),
        ("backend", None),
    ):
        if getattr(arguments, flag) != default:
            raise ExperimentError(
                f"--{flag} only applies with --estimates-only; the "
                "simulating sweep always compares all four techniques "
                "in-process"
            )
    sweep = run_sweep(
        suite,
        config=SweepConfig(
            target_iterations=arguments.sim_iterations,
            samples_per_size=(
                arguments.samples if arguments.samples > 0 else None
            ),
        ),
    )
    rows = [
        [
            summary.method,
            f"{summary.throughput_percent:.1f}",
            f"{summary.period_percent:.1f}",
        ]
        for summary in summarize_sweep(sweep)
    ]
    print(
        render_table(
            ["method", "throughput %", "period %"],
            rows,
            title=(
                f"Mean absolute inaccuracy over "
                f"{sweep.use_case_count} use-cases"
            ),
        )
    )
    by_size = summarize_by_size(sweep)
    sizes = sorted(by_size)
    series = {
        method: [
            next(
                s.period_percent
                for s in by_size[size]
                if s.method == method
            )
            for size in sizes
        ]
        for method in sweep.methods
    }
    print()
    print(
        render_series(
            "#apps",
            sizes,
            series,
            title="Period inaccuracy (%) by number of concurrent apps",
        )
    )


def _cmd_sweep_estimates_only(arguments) -> None:
    """Batched estimation sweep on the incremental analysis engine.

    Demonstrates the paper's headline workflow — sweeping every
    (sampled) use-case analytically — at engine speed: no simulations,
    one shared set of cached HSDF expansions, warm-started solves.
    With ``--store`` and/or ``--jobs`` the sweep runs through the
    :class:`~repro.runtime.service.SweepService`: stored use-cases are
    cache hits, misses fan out over worker processes.
    """
    import time as _time

    model = arguments.model or "second_order"
    samples = arguments.samples if arguments.samples > 0 else None
    if arguments.store is not None or arguments.jobs != 1:
        # The service path rebuilds the gallery from its recipe (in
        # workers, when --jobs > 1) — don't build the suite here.
        _cmd_sweep_service(arguments, model, samples)
        return
    suite = _selected_suite(arguments)
    estimator = ProbabilisticEstimator(
        list(suite.graphs),
        mapping=suite.mapping,
        waiting_model=model,
        backend=arguments.backend,
    )
    started = _time.perf_counter()
    # sweep_all_sizes and SweepConfig share DEFAULT_SWEEP_SEED, so this
    # covers the same use-cases as the simulating sweep and the two
    # commands' numbers are comparable.
    results = estimator.sweep_all_sizes(
        samples_per_size=samples, iterations=arguments.iterations
    )
    elapsed = _time.perf_counter() - started

    inflations_by_size: dict = {}
    for result in results:
        inflations_by_size.setdefault(result.use_case.size, []).extend(
            result.normalized_period_of(name) for name in result.use_case
        )
    use_cases_by_size: dict = {}
    for result in results:
        use_cases_by_size[result.use_case.size] = (
            use_cases_by_size.get(result.use_case.size, 0) + 1
        )
    print(
        _render_inflation_table(
            inflations_by_size,
            use_cases_by_size,
            title=(
                f"Batched estimate ({estimator.waiting_model.name}) of "
                f"{len(results)} use-cases in {elapsed * 1e3:.0f} ms"
            ),
        )
    )


def _render_inflation_table(
    inflations_by_size: dict, use_cases_by_size: dict, title: str
) -> str:
    rows = []
    for size in sorted(inflations_by_size):
        inflations = inflations_by_size[size]
        rows.append(
            [
                size,
                use_cases_by_size[size],
                f"{sum(inflations) / len(inflations):.2f}",
                f"{max(inflations):.2f}",
            ]
        )
    return render_table(
        ["#apps", "use-cases", "mean inflation", "worst inflation"],
        rows,
        title=title,
    )


def _gallery_spec(arguments) -> "GallerySpec":
    from repro.experiments.setup import DEFAULT_SEED
    from repro.runtime.service import GallerySpec

    if arguments.suite is not None:
        return GallerySpec(
            kind="paper",
            seed=DEFAULT_SEED,
            application_count=arguments.suite,
        )
    if arguments.media:
        return GallerySpec(kind="media", application_count=5)
    raise ExperimentError(
        "--store/--jobs need a reproducible gallery: use --suite N "
        "or --media (graph files cannot be rebuilt in workers or "
        "keyed in the store)"
    )


def _cmd_sweep_service(arguments, model: str, samples) -> None:
    from repro.runtime.service import ResultStore, SweepService

    store = (
        ResultStore(arguments.store)
        if arguments.store is not None
        else None
    )
    service = SweepService(
        store=store, jobs=arguments.jobs, backend=arguments.backend
    )
    outcome = service.sweep(
        _gallery_spec(arguments),
        model=model,
        samples_per_size=samples,
        fixed_point_iterations=arguments.iterations,
    )
    inflations_by_size: dict = {}
    use_cases_by_size: dict = {}
    for record in outcome.results:
        size = len(record.use_case)
        inflations_by_size.setdefault(size, []).extend(
            record.periods[name] / record.isolation[name]
            for name in record.use_case
        )
        use_cases_by_size[size] = use_cases_by_size.get(size, 0) + 1
    print(
        _render_inflation_table(
            inflations_by_size,
            use_cases_by_size,
            title=(
                f"Sweep service ({model}, jobs={outcome.jobs}) over "
                f"{outcome.use_case_count} use-cases in "
                f"{outcome.elapsed_seconds * 1e3:.0f} ms"
            ),
        )
    )
    if store is not None:
        print(
            f"store {arguments.store}: {outcome.hits} hits, "
            f"{outcome.misses} misses"
        )


def _cmd_serve(arguments) -> None:
    import asyncio

    from repro.service.cache import ResultCache
    from repro.service.server import EstimationServer
    from repro.telemetry import (
        JsonLinesSpanSink,
        MetricsRegistry,
        Tracer,
        start_metrics_endpoint,
        write_chrome_trace,
    )

    async def _serve() -> None:
        registry = MetricsRegistry(enabled=True)
        tracer = Tracer()
        span_sink = None
        if arguments.span_log:
            span_sink = JsonLinesSpanSink(arguments.span_log)
            tracer.set_sink(span_sink)
        pool_options = {}
        if arguments.split_threshold is not None:
            pool_options["split_threshold"] = arguments.split_threshold
        server = EstimationServer(
            cache=ResultCache(arguments.cache_size, registry=registry),
            batch_window=arguments.batch_window / 1e3,
            max_batch=arguments.max_batch,
            max_pending=arguments.max_pending,
            shed_policy=arguments.shed_policy,
            backend=arguments.backend,
            fixed_point_iterations=arguments.fixed_point_iterations,
            solver_workers=arguments.workers,
            registry=registry,
            tracer=tracer,
            **pool_options,
        )
        metrics_server = None
        try:
            if arguments.metrics_port is not None:
                metrics_server, (mhost, mport) = await start_metrics_endpoint(
                    server.render_metrics,
                    host=arguments.host,
                    port=arguments.metrics_port,
                )
                print(
                    f"metrics on http://{mhost}:{mport}/metrics", flush=True
                )
            if arguments.stdio:
                reader, writer = await _stdio_streams()
                await server.serve_stdio(reader, writer)
                return
            host, port = await server.start(arguments.host, arguments.port)
            print(f"serving on {host}:{port}", flush=True)
            await server.wait_shutdown()
        finally:
            await server.aclose()
            if metrics_server is not None:
                metrics_server.close()
                await metrics_server.wait_closed()
            if arguments.trace_export:
                write_chrome_trace(
                    arguments.trace_export, spans=server.tracer.spans()
                )
            if span_sink is not None:
                span_sink.close()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass


def _cmd_route(arguments) -> None:
    import asyncio
    import signal

    from repro.service.router import ShardRouter, parse_shard_address
    from repro.telemetry import start_metrics_endpoint

    def _read_shards_file(path: str):
        with open(path, "r", encoding="utf-8") as handle:
            return [
                parse_shard_address(line.strip())
                for line in handle
                if line.strip() and not line.strip().startswith("#")
            ]

    async def _reload_membership(router: "ShardRouter", path: str) -> None:
        """SIGHUP: converge the live ring onto the membership file."""
        try:
            desired = {f"{host}:{port}": (host, port)
                       for host, port in _read_shards_file(path)}
        except Exception as error:
            print(f"membership reload failed: {error}", flush=True)
            return
        current = set(router.shard_health())
        for name in sorted(current - set(desired)):
            try:
                summary = await router.leave(name)
                print(f"left shard {name}: {summary}", flush=True)
            except Exception as error:
                print(f"leave {name} failed: {error}", flush=True)
        for name in sorted(set(desired) - current):
            try:
                summary = await router.join(desired[name])
                print(f"joined shard {name}: {summary}", flush=True)
            except Exception as error:
                print(f"join {name} failed: {error}", flush=True)

    async def _route() -> None:
        shards = [parse_shard_address(shard) for shard in arguments.shards]
        router = ShardRouter(
            shards,
            health_interval=arguments.health_interval,
            max_retries=arguments.max_retries,
            batch_window=arguments.batch_window,
            replication=arguments.replication,
            handoff_limit=arguments.handoff_limit,
        )
        metrics_server = None
        if arguments.shards_file is not None:
            loop = asyncio.get_running_loop()
            try:
                loop.add_signal_handler(
                    signal.SIGHUP,
                    lambda: loop.create_task(
                        _reload_membership(router, arguments.shards_file)
                    ),
                )
            except (NotImplementedError, RuntimeError):
                print(
                    "SIGHUP reload unavailable on this platform; "
                    "use the join/leave protocol verbs",
                    flush=True,
                )
        try:
            if arguments.metrics_port is not None:
                metrics_server, (mhost, mport) = await start_metrics_endpoint(
                    router.render_metrics,
                    host=arguments.host,
                    port=arguments.metrics_port,
                )
                print(
                    f"metrics on http://{mhost}:{mport}/metrics", flush=True
                )
            host, port = await router.start(arguments.host, arguments.port)
            shard_names = ", ".join(router.shard_health())
            print(
                f"routing on {host}:{port} over shards [{shard_names}]",
                flush=True,
            )
            await router.wait_shutdown()
        finally:
            await router.aclose()
            if metrics_server is not None:
                metrics_server.close()
                await metrics_server.wait_closed()

    try:
        asyncio.run(_route())
    except KeyboardInterrupt:
        pass


def _cmd_metrics(arguments) -> None:
    import asyncio
    import json

    from repro.service.client import ServiceClient

    async def _scrape():
        client = await ServiceClient.connect(arguments.host, arguments.port)
        try:
            return await client.metrics()
        finally:
            await client.aclose()

    result = asyncio.run(_scrape())
    if arguments.json:
        print(json.dumps(result["snapshot"], indent=2, sort_keys=True))
    else:
        print(result["exposition"], end="")


async def _stdio_streams():
    """Wrap this process's stdin/stdout as an asyncio stream pair."""
    import asyncio

    loop = asyncio.get_running_loop()
    reader = asyncio.StreamReader(limit=2 * 1024 * 1024)
    await loop.connect_read_pipe(
        lambda: asyncio.StreamReaderProtocol(reader), sys.stdin
    )
    transport, protocol = await loop.connect_write_pipe(
        asyncio.streams.FlowControlMixin, sys.stdout
    )
    writer = asyncio.StreamWriter(transport, protocol, reader, loop)
    return reader, writer


def _cmd_runtime(arguments) -> None:
    from repro.experiments.reporting import render_bar_chart
    from repro.generation.workload import WorkloadConfig, WorkloadGenerator
    from repro.runtime.events import trace_to_json
    from repro.runtime.log import log_to_json
    from repro.runtime.manager import ResourceManager, gallery_from_graphs
    from repro.runtime.validation import validate_log

    suite = _selected_suite(arguments)
    specs = gallery_from_graphs(
        list(suite.graphs), slack=arguments.slack
    )
    generator = WorkloadGenerator(
        [spec.name for spec in specs],
        quality_levels={
            spec.name: spec.ladder.level_names for spec in specs
        },
        config=WorkloadConfig(
            arrival=arguments.arrival,
            mean_interarrival=arguments.mean_interarrival,
            mean_holding=arguments.mean_holding,
        ),
    )
    trace = generator.generate(
        seed=arguments.seed, events=arguments.events
    )
    manager = ResourceManager(
        specs, mapping=suite.mapping, policy=arguments.policy
    )
    log = manager.replay(trace)

    counts = log.counts_by_outcome()
    rows = [
        ["events", len(log.records)],
        ["admitted", counts["admitted"]],
        ["rejected", counts["rejected"]],
        ["stopped", counts["stopped"]],
        ["ignored", counts["ignored"]],
        ["evictions", log.eviction_count],
        ["downgrades", log.downgrade_count],
        ["admission ratio", f"{log.admission_ratio:.3f}"],
        ["decisions/sec", f"{log.decisions_per_second:.0f}"],
    ]
    print(
        render_table(
            ["metric", "value"],
            rows,
            title=(
                f"Runtime replay ({manager.policy.name} policy, "
                f"{arguments.arrival} arrivals, seed {arguments.seed})"
            ),
        )
    )
    utilization = sorted(
        log.mean_utilization().items(), key=lambda item: -item[1]
    )[:5]
    if utilization:
        print()
        print(
            render_bar_chart(
                [name for name, _ in utilization],
                [value for _, value in utilization],
                title="mean utilization (busiest processors)",
                value_format="{:.2f}",
            )
        )
    if arguments.validate > 0:
        points = validate_log(
            specs,
            suite.mapping,
            log,
            max_points=arguments.validate,
        )
        print()
        rows = [
            [
                point.record_index,
                "+".join(app for app, _ in point.residents),
                app,
                f"{point.predicted[app]:.1f}",
                f"{point.simulated[app]:.1f}",
                f"{point.ratios[app]:.2f}",
            ]
            for point in points
            for app, _ in point.residents
        ]
        print(
            render_table(
                ["record", "residents", "app", "predicted",
                 "simulated", "ratio"],
                rows,
                title="prediction vs. discrete-event simulation",
            )
        )
    if arguments.save_trace:
        with open(arguments.save_trace, "w") as handle:
            handle.write(trace_to_json(trace))
        print(f"trace written to {arguments.save_trace}")
    if arguments.save_log:
        with open(arguments.save_log, "w") as handle:
            handle.write(log_to_json(log))
        print(f"log written to {arguments.save_log}")


def _cmd_models(arguments) -> None:
    from repro.core.registry import render_model_table

    print(render_model_table())


def _cmd_conformance(arguments) -> None:
    from repro.conformance import (
        DEFAULT_CONFORMANCE_SEED,
        run_conformance,
    )

    models = (
        [name.strip() for name in arguments.models.split(",")]
        if arguments.models
        else None
    )
    report = run_conformance(
        application_count=arguments.suite,
        scenarios_per_model=arguments.scenarios,
        seed=(
            arguments.seed
            if arguments.seed is not None
            else DEFAULT_CONFORMANCE_SEED
        ),
        models=models,
        target_iterations=arguments.sim_iterations,
        progress=lambda message: print(f"... {message}", flush=True),
        engine_backend=arguments.engine_backend,
        collect_stats=arguments.profile,
    )
    print(report.render())
    if arguments.profile:
        print()
        print(report.render_profile())
    if not report.passed:
        failed = [
            r.model for r in report.reports if r.status == "failed"
        ]
        raise ExperimentError(
            f"conformance FAILED for {', '.join(failed)}"
        )


def _cmd_reproduce(arguments) -> None:
    from repro.experiments.figure5 import run_figure5
    from repro.experiments.figure6 import run_figure6
    from repro.experiments.table1 import run_table1
    from repro.experiments.timing import run_timing

    suite = paper_benchmark_suite(
        application_count=arguments.applications
    )
    if arguments.scale == "paper":
        config = SweepConfig(
            target_iterations=200, samples_per_size=None
        )
        figure5_iterations = 300
    else:
        config = SweepConfig(target_iterations=60, samples_per_size=8)
        figure5_iterations = 100

    print(run_figure5(suite, target_iterations=figure5_iterations).render())
    print()
    sweep = run_sweep(suite, config=config)
    print(run_table1(suite, sweep=sweep).render())
    print()
    print(run_figure6(suite, sweep=sweep).render())
    print()
    print(run_timing(suite, sweep=sweep).render())


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
