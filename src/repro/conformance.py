"""Cross-layer conformance: every registered model vs. the simulator.

Every waiting model in :data:`repro.core.registry.WAITING_MODELS`
declares what it *means* — ``"mean"`` (targets the expected period,
within a declared tolerance) or ``"conservative"`` (a sound upper
bound) — and which DES arbitration policy realizes its platform
assumptions.  This module turns those declarations into a systematic
gate: seeded scenario batches are generated from the existing gallery
and workload generators, each scenario is estimated analytically *and*
simulated under the model's matching arbiter, and the declared
semantics are asserted on the resulting periods::

    conservative:  estimated >= simulated            (every scenario)
    mean:          |estimated - simulated| <= tol * simulated

A model registered without a matching arbiter (TDMA — its time-sliced
preemption is outside the non-preemptive engine) or one that cannot be
built without an argument (the generic ``order:M`` spelling) is
reported as *skipped* with the reason; everything else is checked with
zero per-model code, so a third-party registration is covered the
moment it exists.  ``repro conformance`` exposes the harness on the
command line and ``tests/test_conformance.py`` runs a reduced batch as
a parametrized pytest suite.

Scenario generation
-------------------
Scenarios reuse the reproduction's existing generators end to end:

* *galleries* — :func:`~repro.experiments.setup.paper_benchmark_suite`
  at derived seeds, so graph structure varies across scenarios;
* *use-cases* — resident-set snapshots of a seeded
  :class:`~repro.generation.workload.WorkloadGenerator` event stream
  (the concurrent application sets a live device actually visits),
  rather than a uniform draw over the power set;
* *parameters* — per-application priorities and round-robin weights
  from the same seeded stream.

Snapshots whose densest processor carries more blocking-probability
mass than ``utilization_cap`` are skipped: the paper's probabilistic
framework models contention between applications that are individually
feasible, and a saturated node (where a static-priority policy simply
starves the lowest priority) is outside every estimator's declared
operating regime.  The cap is part of the scenario recipe, so the
batch is reproducible from ``(application_count, count, seed)`` alone.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import random

from repro.analysis_engine import build_engines
from repro.backend import ArrayBackend, get_backend
from repro.core.blocking import build_profiles
from repro.core.estimator import ProbabilisticEstimator
from repro.core.registry import (
    ARBITERS,
    WAITING_MODELS,
    WaitingModelInfo,
)
from repro.exceptions import ExperimentError
from repro.experiments.setup import (
    DEFAULT_SEED,
    BenchmarkSuite,
    paper_benchmark_suite,
)
from repro.generation.workload import WorkloadConfig, WorkloadGenerator
from repro.platform.usecase import UseCase
from repro.runtime.events import EventKind
from repro.simulation.engine import (
    SimulationConfig,
    Simulator,
    _jit_requested,
)
from repro.simulation.metrics import EngineStats
from repro.telemetry import get_registry

#: Master seed of the default conformance batch.
DEFAULT_CONFORMANCE_SEED = 20_077

#: Skip snapshots whose densest node exceeds this blocking-probability
#: mass (see the module docstring).
DEFAULT_UTILIZATION_CAP = 0.85

#: Guard-band of the conservative (one-sided) check: float slack only.
CONSERVATIVE_SLACK = 1e-9


@dataclass(frozen=True)
class Scenario:
    """One seeded conformance scenario.

    ``priorities`` and ``weights`` are per application; priorities are
    applied to every actor of the application through
    :meth:`~repro.platform.mapping.Mapping.with_priorities`, weights
    feed both the weighted-round-robin waiting model and the matching
    DES arbiter.
    """

    index: int
    gallery_seed: int
    application_count: int
    use_case: Tuple[str, ...]
    priorities: Mapping[str, int]
    weights: Mapping[str, int]

    def label(self) -> str:
        prios = ",".join(
            f"{a}={self.priorities[a]}" for a in self.use_case
        )
        return (
            f"#{self.index} seed={self.gallery_seed} "
            f"uc={'+'.join(self.use_case)} prio[{prios}]"
        )


@dataclass(frozen=True)
class Violation:
    """One (scenario, application) check that missed its contract."""

    scenario: Scenario
    application: str
    estimated: float
    simulated: float

    @property
    def ratio(self) -> float:
        return self.estimated / self.simulated


@dataclass
class ModelReport:
    """Conformance outcome of one registered model."""

    model: str
    semantics: str
    arbiter: Optional[str]
    tolerance: Optional[float]
    status: str  # "passed" | "failed" | "skipped"
    reason: str = ""
    scenarios: int = 0
    checks: int = 0
    ratio_low: float = float("inf")
    ratio_high: float = float("-inf")
    violations: List[Violation] = field(default_factory=list)

    def record(
        self, scenario: Scenario, application: str,
        estimated: float, simulated: float,
    ) -> None:
        ratio = estimated / simulated
        self.checks += 1
        self.ratio_low = min(self.ratio_low, ratio)
        self.ratio_high = max(self.ratio_high, ratio)
        if self.semantics == "conservative":
            ok = estimated >= simulated * (1.0 - CONSERVATIVE_SLACK)
        else:
            assert self.tolerance is not None
            ok = abs(estimated - simulated) <= self.tolerance * simulated
        if not ok:
            self.violations.append(
                Violation(scenario, application, estimated, simulated)
            )


@dataclass
class ConformanceReport:
    """Everything one conformance run produced."""

    application_count: int
    scenario_count: int
    seed: int
    utilization_cap: float
    target_iterations: int
    reports: List[ModelReport]
    elapsed_seconds: float
    simulations_run: int
    #: Per-flavour accumulated engine profiles (``--profile``): every
    #: simulation's :class:`~repro.simulation.metrics.EngineStats`
    #: merged by the flavour that actually ran (a JIT request can fall
    #: back per scenario, so one run may populate several rows).
    engine_profile: Dict[str, EngineStats] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return all(r.status != "failed" for r in self.reports)

    def report_for(self, model: str) -> ModelReport:
        for report in self.reports:
            if report.model == model:
                return report
        raise ExperimentError(
            f"no conformance report for model {model!r}"
        )

    def render(self) -> str:
        from repro.experiments.reporting import render_table

        rows = []
        for r in self.reports:
            if r.status == "skipped":
                contract = "-"
                observed = r.reason
            else:
                contract = (
                    "upper-bounds sim"
                    if r.semantics == "conservative"
                    else f"within {r.tolerance:g} of sim"
                )
                observed = (
                    f"ratio [{r.ratio_low:.3f}, {r.ratio_high:.3f}] "
                    f"over {r.scenarios} scenarios"
                )
                if r.violations:
                    observed += f", {len(r.violations)} VIOLATIONS"
            rows.append(
                [
                    r.model,
                    r.semantics,
                    r.arbiter or "-",
                    contract,
                    observed,
                    r.status.upper(),
                ]
            )
        title = (
            f"Conformance: {self.application_count}-app galleries, "
            f"{self.scenario_count} scenarios/model, seed {self.seed} "
            f"({self.simulations_run} simulations, "
            f"{self.elapsed_seconds:.1f}s)"
        )
        return render_table(
            ["model", "semantics", "arbiter", "contract", "observed",
             "status"],
            rows,
            title=title,
        )

    def render_profile(self) -> str:
        """Engine-profile table of the batch (``repro conformance
        --profile``): one row per flavour that ran, with dispatched /
        stale / preemption counts and per-phase wall time."""
        from repro.experiments.reporting import render_table

        if not self.engine_profile:
            return "no engine profile collected"
        rows = []
        for flavour in sorted(self.engine_profile):
            stats = self.engine_profile[flavour]
            phases = " ".join(
                f"{phase}={stats.phase_seconds[phase] * 1e3:.1f}ms"
                for phase in sorted(stats.phase_seconds)
            )
            rows.append(
                [
                    flavour,
                    str(stats.events_dispatched),
                    str(stats.stale_events),
                    str(stats.preemptions),
                    phases,
                ]
            )
        return render_table(
            ["flavour", "events", "stale", "preemptions", "phases"],
            rows,
            title=(
                f"Engine profile: {self.simulations_run} simulations"
            ),
        )


# ----------------------------------------------------------------------
# Scenario generation
# ----------------------------------------------------------------------
def generate_scenarios(
    application_count: int = 4,
    count: int = 50,
    seed: int = DEFAULT_CONFORMANCE_SEED,
    utilization_cap: float = DEFAULT_UTILIZATION_CAP,
    gallery_seeds: Optional[Sequence[int]] = None,
    suites: Optional[Dict[int, BenchmarkSuite]] = None,
) -> List[Scenario]:
    """Deterministic scenario batch (see the module docstring).

    ``suites`` is an optional shared ``gallery_seed -> BenchmarkSuite``
    cache; pass the same dict to :func:`run_conformance` to avoid
    regenerating galleries.
    """
    if count < 1:
        raise ExperimentError(f"count must be >= 1, got {count}")
    if application_count < 2:
        raise ExperimentError(
            "conformance needs >= 2 applications for contention, got "
            f"{application_count}"
        )
    if gallery_seeds is None:
        gallery_seeds = tuple(DEFAULT_SEED + k for k in range(6))
    if suites is None:
        suites = {}
    rng = random.Random(seed)
    utilization: Dict[Tuple[int, str], Dict[str, float]] = {}
    scenarios: List[Scenario] = []
    seen: set = set()
    stream = 0
    while len(scenarios) < count:
        stream += 1
        if stream > 50 * count:
            raise ExperimentError(
                f"scenario generation stalled after {stream} workload "
                f"streams ({len(scenarios)}/{count} scenarios); the "
                f"utilization cap {utilization_cap} may be too tight "
                "for this gallery"
            )
        gallery_seed = gallery_seeds[stream % len(gallery_seeds)]
        suite = suites.get(gallery_seed)
        if suite is None:
            suite = paper_benchmark_suite(
                seed=gallery_seed,
                application_count=application_count,
            )
            suites[gallery_seed] = suite
        names = list(suite.application_names)
        trace = WorkloadGenerator(
            names,
            config=WorkloadConfig(
                mean_interarrival=80.0, mean_holding=320.0
            ),
        ).generate(seed=seed * 1_000 + stream, events=60)
        resident: set = set()
        snapshots: List[Tuple[str, ...]] = []
        for event in trace.events:
            if event.kind is EventKind.START:
                resident.add(event.application)
            elif event.kind is EventKind.STOP:
                resident.discard(event.application)
            if len(resident) >= 2:
                snapshot = tuple(
                    n for n in names if n in resident
                )
                if not snapshots or snapshots[-1] != snapshot:
                    snapshots.append(snapshot)
        for snapshot in snapshots:
            if len(scenarios) >= count:
                break
            if not _feasible(
                suite, snapshot, utilization_cap, utilization,
                gallery_seed,
            ):
                continue
            priorities = {a: rng.randint(0, 2) for a in snapshot}
            weights = {a: rng.randint(1, 3) for a in snapshot}
            key = (
                gallery_seed,
                snapshot,
                tuple(sorted(priorities.items())),
                tuple(sorted(weights.items())),
            )
            if key in seen:
                continue
            seen.add(key)
            scenarios.append(
                Scenario(
                    index=len(scenarios),
                    gallery_seed=gallery_seed,
                    application_count=application_count,
                    use_case=snapshot,
                    priorities=priorities,
                    weights=weights,
                )
            )
    return scenarios


def _feasible(
    suite: BenchmarkSuite,
    snapshot: Tuple[str, ...],
    cap: float,
    utilization: Dict[Tuple[int, str], Dict[str, float]],
    gallery_seed: int,
) -> bool:
    """Densest-node blocking-probability mass of ``snapshot`` <= cap."""
    per_node: Dict[str, float] = {}
    for app in snapshot:
        cached = utilization.get((gallery_seed, app))
        if cached is None:
            cached = {}
            profiles = build_profiles([suite.graph(app)])
            for (_, actor), profile in profiles.items():
                proc = suite.mapping.processor_of(app, actor)
                cached[proc] = (
                    cached.get(proc, 0.0) + profile.probability
                )
            utilization[(gallery_seed, app)] = cached
        for proc, mass in cached.items():
            per_node[proc] = per_node.get(proc, 0.0) + mass
    return max(per_node.values()) <= cap


# ----------------------------------------------------------------------
# The harness
# ----------------------------------------------------------------------
def conformance_skip_reason(
    info: WaitingModelInfo,
) -> Optional[str]:
    """Why a registered model cannot be auto-checked (None = checkable)."""
    if info.requires_argument:
        return (
            "parameterized spelling; covered through its concrete "
            "registrations"
        )
    if info.arbiter is None:
        return "no matching DES arbiter (needs preemptive time slicing)"
    return None


def checkable_model_names() -> Tuple[str, ...]:
    """Registered models the harness can exercise end to end."""
    return tuple(
        info.name
        for info in WAITING_MODELS.infos()
        if conformance_skip_reason(info) is None
    )


def _model_for_scenario(info: WaitingModelInfo, scenario: Scenario):
    """Instantiate ``info`` for one scenario.

    Models that declare a ``weights`` parameter are exercised under the
    scenario's seeded per-application weights; everything else is built
    with its defaults (priorities travel on the mapping, not the
    model).
    """
    if "weights" in info.parameters and info.takes_argument:
        argument = ",".join(
            f"{app}={weight}"
            for app, weight in sorted(scenario.weights.items())
        )
        return info.factory(argument), {
            "weights": dict(scenario.weights)
        }
    return (
        (info.factory(None) if info.takes_argument else info.factory()),
        {},
    )


def _engine_profile_snapshot() -> Dict[str, EngineStats]:
    """Per-flavour engine totals currently held by the metrics registry.

    :meth:`Simulator.run` folds every run's :class:`EngineStats` into
    the always-on ``repro_sim_*`` counters; this reads them back into
    the same dataclass the profile table renders from.
    """
    registry = get_registry()
    phases = registry.label_values("repro_sim_phase_seconds_total", "phase")
    profile: Dict[str, EngineStats] = {}
    for flavour in registry.label_values(
        "repro_sim_events_dispatched_total", "flavour"
    ):
        phase_seconds: Dict[str, float] = {}
        for phase in phases:
            seconds = registry.value(
                "repro_sim_phase_seconds_total",
                flavour=flavour,
                phase=phase,
            )
            if seconds:
                phase_seconds[phase] = seconds

        def _count(name: str) -> int:
            return int(registry.value(name, flavour=flavour) or 0)

        profile[flavour] = EngineStats(
            flavour=flavour,
            events_dispatched=_count("repro_sim_events_dispatched_total"),
            stale_events=_count("repro_sim_stale_events_total"),
            preemptions=_count("repro_sim_preemptions_total"),
            phase_seconds=phase_seconds,
        )
    return profile


def _engine_profile_delta(
    before: Dict[str, EngineStats],
    after: Dict[str, EngineStats],
) -> Dict[str, EngineStats]:
    """Engine work accumulated between two registry snapshots.

    The registry counts every simulation in the process, so a suite
    scopes its profile by differencing snapshots taken around its own
    runs.  Flavours that did no work in the window are dropped.
    """
    delta: Dict[str, EngineStats] = {}
    for flavour, end in after.items():
        base = before.get(flavour)
        stats = EngineStats(
            flavour=flavour,
            events_dispatched=end.events_dispatched
            - (base.events_dispatched if base else 0),
            stale_events=end.stale_events
            - (base.stale_events if base else 0),
            preemptions=end.preemptions
            - (base.preemptions if base else 0),
            phase_seconds={},
        )
        for phase, seconds in end.phase_seconds.items():
            grown = seconds - (
                base.phase_seconds.get(phase, 0.0) if base else 0.0
            )
            if grown > 0.0:
                stats.phase_seconds[phase] = grown
        if (
            stats.events_dispatched
            or stats.stale_events
            or stats.preemptions
            or stats.phase_seconds
        ):
            delta[flavour] = stats
    return delta


def run_conformance(
    application_count: int = 4,
    scenarios_per_model: int = 50,
    seed: int = DEFAULT_CONFORMANCE_SEED,
    models: Optional[Sequence[str]] = None,
    target_iterations: int = 60,
    utilization_cap: float = DEFAULT_UTILIZATION_CAP,
    progress: Optional[Callable[[str], None]] = None,
    engine_backend: "ArrayBackend | str | None" = None,
    simulations: Optional[Dict[object, Dict[str, float]]] = None,
    collect_stats: bool = False,
) -> ConformanceReport:
    """Check every registered model's declared semantics against DES.

    One scenario batch is shared by all models; simulations are cached
    per ``(engine flavour, scenario, arbiter, parameters)``, so the
    FCFS reference runs once per scenario no matter how many mean
    models consume it.  ``engine_backend`` picks the simulator's
    stepping loop (an :class:`~repro.backend.ArrayBackend`, a backend
    name, or None for the resolution default); all flavours are
    byte-identical, so the verdicts cannot depend on it — the knob
    exists to exercise and profile each loop.  ``simulations`` is an
    optional shared cross-call cache (like ``generate_scenarios``'s
    ``suites``); the key carries the backend/JIT flavour so runs from
    different engine configurations are never conflated.  With
    ``collect_stats`` the per-flavour ``repro_sim_*`` counters of the
    shared metrics registry are snapshotted around the suite and their
    delta becomes ``report.engine_profile`` — the profile table is a
    view over the same telemetry every other consumer scrapes.
    """
    started = _time.perf_counter()
    selected = (
        tuple(models) if models is not None else WAITING_MODELS.names()
    )
    infos = [WAITING_MODELS.get(name) for name in selected]
    for info in infos:
        if info.arbiter is not None:
            ARBITERS.get(info.arbiter)  # fail fast on bad metadata
    backend = get_backend(engine_backend)
    # Cache-key component for the engine configuration.  The exact
    # flavour is resolved per Simulator (a JIT request falls back on
    # unsupported scenarios), but it is a pure function of (backend,
    # JIT request, arbiter) — and the arbiter is already in the key —
    # so this component distinguishes every flavour a shared cache
    # could see without having to construct a Simulator on cache hits.
    flavour_key = (backend.name, _jit_requested())
    suites: Dict[int, BenchmarkSuite] = {}
    scenarios = generate_scenarios(
        application_count=application_count,
        count=scenarios_per_model,
        seed=seed,
        utilization_cap=utilization_cap,
        suites=suites,
    )
    if simulations is None:
        simulations = {}
    profile_baseline = (
        _engine_profile_snapshot() if collect_stats else {}
    )
    simulations_run = 0
    estimators: Dict[object, ProbabilisticEstimator] = {}
    # Structural analysis (HSDF expansion, Howard warm starts, period
    # memo) is shared across every estimator of one gallery.
    engines_by_seed: Dict[int, Dict[str, object]] = {}
    reports: List[ModelReport] = []
    for info in infos:
        skip = conformance_skip_reason(info)
        report = ModelReport(
            model=info.name,
            semantics=info.semantics,
            arbiter=info.arbiter,
            tolerance=info.tolerance,
            status="skipped" if skip else "passed",
            reason=skip or "",
        )
        reports.append(report)
        if skip:
            continue
        if progress is not None:
            progress(f"checking {info.name} ({info.semantics})")
        arbiter_info = ARBITERS.get(info.arbiter)
        for scenario in scenarios:
            model, arbitration_params = _model_for_scenario(
                info, scenario
            )
            suite = suites[scenario.gallery_seed]
            mapping = suite.mapping.with_priorities(
                dict(scenario.priorities)
            )
            graphs = [suite.graph(name) for name in scenario.use_case]
            # Scenario priorities/weights key the simulation only when
            # the arbiter consumes them (declared in its parameter
            # schema) — priority-blind policies (fcfs, round_robin)
            # produce byte-identical runs for every draw, so all mean
            # models of one (gallery, use-case) share one reference.
            sim_key = (
                flavour_key,
                scenario.gallery_seed,
                scenario.use_case,
                info.arbiter,
                (
                    tuple(sorted(scenario.priorities.items()))
                    if "priorities" in arbiter_info.parameters
                    else None
                ),
                (
                    tuple(sorted(arbitration_params.get(
                        "weights", {}).items()))
                    if "weights" in arbiter_info.parameters
                    else None
                ),
            )
            simulated = simulations.get(sim_key)
            if simulated is None:
                simulator = Simulator(
                    graphs,
                    mapping=mapping,
                    config=SimulationConfig(
                        target_iterations=target_iterations,
                        arbitration=info.arbiter,
                        arbitration_params=(
                            arbitration_params or None
                        ),
                    ),
                    backend=backend,
                )
                result = simulator.run()
                simulations_run += 1
                simulated = {
                    name: result.period_of(name)
                    for name in scenario.use_case
                }
                simulations[sim_key] = simulated
            # Same conditioning as sim_key: priorities matter to a
            # model only when its matching arbiter consumes them (the
            # analytic side reads them from the same mapping), weights
            # only when declared in the model's parameter schema —
            # blind models reuse one estimator per gallery.
            est_key = (
                scenario.gallery_seed,
                info.name,
                (
                    tuple(sorted(scenario.priorities.items()))
                    if "priorities" in arbiter_info.parameters
                    else None
                ),
                (
                    tuple(sorted(scenario.weights.items()))
                    if "weights" in info.parameters
                    else None
                ),
            )
            estimator = estimators.get(est_key)
            if estimator is None:
                engines = engines_by_seed.get(scenario.gallery_seed)
                if engines is None:
                    engines = build_engines(list(suite.graphs))
                    engines_by_seed[scenario.gallery_seed] = engines
                estimator = ProbabilisticEstimator(
                    list(suite.graphs),
                    mapping=mapping,
                    waiting_model=model,
                    engines=engines,
                )
                estimators[est_key] = estimator
            estimate = estimator.estimate(
                UseCase(scenario.use_case)
            )
            for name in scenario.use_case:
                report.record(
                    scenario,
                    name,
                    estimate.periods[name],
                    simulated[name],
                )
            report.scenarios += 1
        if report.violations:
            report.status = "failed"
            worst = max(
                report.violations,
                key=lambda v: abs(1.0 - v.ratio),
            )
            report.reason = (
                f"worst violation {worst.scenario.label()} "
                f"{worst.application}: estimated {worst.estimated:.1f} "
                f"vs simulated {worst.simulated:.1f} "
                f"(ratio {worst.ratio:.3f})"
            )
    return ConformanceReport(
        application_count=application_count,
        scenario_count=len(scenarios),
        seed=seed,
        utilization_cap=utilization_cap,
        target_iterations=target_iterations,
        reports=reports,
        elapsed_seconds=_time.perf_counter() - started,
        simulations_run=simulations_run,
        engine_profile=(
            _engine_profile_delta(
                profile_baseline, _engine_profile_snapshot()
            )
            if collect_stats
            else {}
        ),
    )
