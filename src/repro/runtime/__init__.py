"""The run-time resource-manager subsystem.

This layer turns the library's analyses into the *system* the paper's
title promises: a multi-featured media device whose applications start,
stop and change quality at unpredictable times, and whose resource
manager decides each request on the fly from the probabilistic
contention estimate.

* :mod:`repro.runtime.events` — scenario event streams (traces),
  JSON-serializable and byte-reproducible.
* :mod:`repro.runtime.quality` — quality ladders: each level a variant
  SDF graph with scaled execution times (soft QoS).
* :mod:`repro.runtime.manager` — :class:`ResourceManager`: drives the
  incremental admission controller + shared analysis engines over a
  trace, with pluggable QoS policies (reject / evict / downgrade).
* :mod:`repro.runtime.log` — per-event decision records and summary
  statistics.
* :mod:`repro.runtime.validation` — spot-checks runtime predictions
  against the discrete-event simulator.
* :mod:`repro.runtime.service` — :class:`SweepService`: parallel
  use-case sweeps with a persistent JSON-lines result store.
"""

from repro.runtime.events import (
    EventKind,
    ScenarioEvent,
    Trace,
    trace_from_json,
    trace_to_json,
)
from repro.runtime.log import (
    DecisionRecord,
    RuntimeLog,
    log_from_json,
    log_to_json,
)
from repro.runtime.manager import (
    AppSpec,
    DowngradePolicy,
    EvictLowestPriorityPolicy,
    QoSPolicy,
    RejectPolicy,
    ResourceManager,
    gallery_from_graphs,
    make_qos_policy,
)
from repro.runtime.quality import (
    DEFAULT_QUALITY_LEVELS,
    QualityLadder,
    QualityLevel,
)
from repro.runtime.service import (
    GallerySpec,
    ResultStore,
    SweepOutcome,
    SweepRecord,
    SweepService,
)
from repro.runtime.validation import ValidationPoint, validate_log

__all__ = [
    "AppSpec",
    "DEFAULT_QUALITY_LEVELS",
    "DecisionRecord",
    "DowngradePolicy",
    "EventKind",
    "EvictLowestPriorityPolicy",
    "GallerySpec",
    "QoSPolicy",
    "QualityLadder",
    "QualityLevel",
    "RejectPolicy",
    "ResourceManager",
    "ResultStore",
    "RuntimeLog",
    "ScenarioEvent",
    "SweepOutcome",
    "SweepRecord",
    "SweepService",
    "Trace",
    "ValidationPoint",
    "gallery_from_graphs",
    "log_from_json",
    "log_to_json",
    "make_qos_policy",
    "trace_from_json",
    "trace_to_json",
    "validate_log",
]
