"""Cross-validation of runtime predictions against discrete-event simulation.

The resource manager decides from the paper's probabilistic estimate;
the discrete-event engine is the reference the paper itself validates
against (its POOSL numbers).  :func:`validate_log` replays snapshots of
a :class:`~repro.runtime.log.RuntimeLog` — the resident set (at its
admitted quality levels) after selected events — through the
:class:`~repro.simulation.engine.Simulator` and reports predicted
vs. simulated periods, so a trace replay can be spot-checked end-to-end
the same way Figure 5 checks a static use-case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping as TMapping, Sequence, Tuple

from repro.exceptions import ResourceManagerError
from repro.platform.mapping import Mapping
from repro.runtime.log import RuntimeLog
from repro.runtime.manager import AppSpec
from repro.simulation.engine import SimulationConfig, Simulator


@dataclass(frozen=True)
class ValidationPoint:
    """Predicted vs. simulated periods of one log snapshot.

    ``ratios`` maps application name to ``predicted / simulated`` — the
    Figure-5 regime puts the probabilistic estimate within a small
    factor of the simulated mean.
    """

    record_index: int
    residents: Tuple[Tuple[str, str], ...]
    predicted: Dict[str, float]
    simulated: Dict[str, float]

    @property
    def ratios(self) -> Dict[str, float]:
        return {
            app: self.predicted[app] / self.simulated[app]
            for app in self.simulated
        }


def validate_log(
    specs: Sequence[AppSpec] | TMapping[str, AppSpec],
    mapping: Mapping,
    log: RuntimeLog,
    max_points: int = 3,
    min_residents: int = 2,
    target_iterations: int = 60,
) -> List[ValidationPoint]:
    """Simulate up to ``max_points`` resident-set snapshots of ``log``.

    Snapshots are drawn evenly from the records whose post-event
    resident set has at least ``min_residents`` applications and a
    recorded period prediction; each is simulated with the variant
    graphs of the admitted quality levels under the same mapping.
    """
    if max_points < 1:
        raise ResourceManagerError(
            f"max_points must be >= 1, got {max_points}"
        )
    by_name = (
        dict(specs)
        if isinstance(specs, TMapping)
        else {spec.name: spec for spec in specs}
    )
    eligible = [
        record
        for record in log.records
        # Rejected records predict the *tentative* state (residents
        # plus the refused candidate) — simulating only the residents
        # would skew the ratios, so they are not comparable here.
        if record.outcome != "rejected"
        and len(record.residents) >= min_residents
        and all(app in record.predicted_periods for app, _ in record.residents)
    ]
    if not eligible:
        return []
    stride = max(1, len(eligible) // max_points)
    selected = eligible[::stride][:max_points]

    points: List[ValidationPoint] = []
    for record in selected:
        graphs = [
            by_name[app].ladder.graph_at(quality)
            for app, quality in record.residents
        ]
        result = Simulator(
            graphs,
            mapping=mapping,
            config=SimulationConfig(target_iterations=target_iterations),
        ).run()
        points.append(
            ValidationPoint(
                record_index=record.index,
                residents=record.residents,
                predicted={
                    app: record.predicted_periods[app]
                    for app, _ in record.residents
                },
                simulated={
                    app: result.period_of(app)
                    for app, _ in record.residents
                },
            )
        )
    return points
