"""The sweep service: parallel use-case sweeps with a persistent store.

The paper's headline workflow — estimate every (sampled) use-case of a
gallery analytically — is embarrassingly parallel across use-cases and
perfectly cacheable: the estimate of a use-case depends only on the
gallery (how the graphs were generated), the use-case itself, the
waiting model and the analysis method.  :class:`SweepService` exploits
both:

* **fan-out** — misses are chunked round-robin (interleaving use-case
  sizes so chunks cost about the same) onto
  ``concurrent.futures.ProcessPoolExecutor`` workers; each worker
  rebuilds the gallery and its analysis engines once per chunk and then
  estimates its use-cases incrementally (warm-started weight-only
  solves), so the per-worker structural cost is paid once, not per
  use-case;
* **memoization** — results land in a :class:`ResultStore`, a JSON-lines
  file keyed by ``(gallery, seed, application count, use-case, waiting
  model, analysis method)``; a repeated sweep is pure cache hits and
  touches no solver at all.

Galleries are described by :class:`GallerySpec` — a *recipe*, not the
graphs themselves — so a spec pickles cheaply to workers and keys the
store deterministically.
"""

from __future__ import annotations

import json
import os
import time as _time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.backend import get_backend
from repro.core.estimator import ProbabilisticEstimator
from repro.core.registry import validate_model_spec
from repro.exceptions import ResourceManagerError
from repro.experiments.setup import (
    BenchmarkSuite,
    DEFAULT_SEED,
    paper_benchmark_suite,
)
from repro.platform.mapping import index_mapping
from repro.platform.usecase import (
    DEFAULT_SWEEP_SEED,
    UseCase,
    sampled_use_cases_by_size,
)
from repro.sdf.analysis import AnalysisMethod
from repro.telemetry import get_registry, get_tracer

#: Gallery kinds a :class:`GallerySpec` can rebuild from scratch.
GALLERY_KINDS: Tuple[str, ...] = ("paper", "media")

#: Application names of the fixed media gallery, in suite order.
_MEDIA_NAMES: Tuple[str, ...] = ("h263", "mp3", "jpeg", "modem", "src")


@dataclass(frozen=True)
class GallerySpec:
    """A reproducible application gallery, by recipe.

    ``paper`` regenerates the seeded benchmark suite
    (:func:`~repro.experiments.setup.paper_benchmark_suite`); ``media``
    is the fixed hand-built media-device gallery (``seed`` is kept in
    the key for uniformity but does not influence the graphs).
    """

    kind: str = "paper"
    seed: int = DEFAULT_SEED
    application_count: int = 8

    def __post_init__(self) -> None:
        if self.kind not in GALLERY_KINDS:
            raise ResourceManagerError(
                f"unknown gallery kind {self.kind!r} "
                f"(choose from {', '.join(GALLERY_KINDS)})"
            )
        if self.application_count < 1:
            raise ResourceManagerError(
                f"application_count must be >= 1, "
                f"got {self.application_count}"
            )
        if self.kind == "media" and self.application_count > len(
            _MEDIA_NAMES
        ):
            raise ResourceManagerError(
                f"the media gallery has {len(_MEDIA_NAMES)} "
                f"applications, got application_count="
                f"{self.application_count}"
            )

    def build(self) -> BenchmarkSuite:
        """Regenerate the gallery (graphs + platform + mapping)."""
        if self.kind == "paper":
            return paper_benchmark_suite(
                seed=self.seed,
                application_count=self.application_count,
            )
        from repro.generation.gallery import media_device_suite

        graphs = media_device_suite()[: self.application_count]
        mapping = index_mapping(graphs)
        return BenchmarkSuite(
            graphs=tuple(graphs),
            platform=mapping.platform,
            mapping=mapping,
            seed=self.seed,
        )

    def application_names(self) -> Tuple[str, ...]:
        """Gallery application names without building any graph."""
        if self.kind == "paper":
            from repro.experiments.setup import APPLICATION_NAMES

            if self.application_count <= len(APPLICATION_NAMES):
                return APPLICATION_NAMES[: self.application_count]
            return tuple(
                f"A{i}" for i in range(self.application_count)
            )
        return _MEDIA_NAMES[: self.application_count]

    def label(self) -> str:
        return f"{self.kind}:{self.seed}:{self.application_count}"


@dataclass(frozen=True)
class SweepRecord:
    """One stored/computed estimate: periods of one use-case."""

    use_case: Tuple[str, ...]
    model: str
    method: str
    periods: Dict[str, float]
    isolation: Dict[str, float]
    from_store: bool = False


class ResultStore:
    """JSON-lines store of sweep estimates, loaded once and appended to.

    Each line is ``{"key": {...}, "periods": {...}, "isolation":
    {...}}``; the key fields are the gallery label, the use-case label,
    the waiting model and the analysis method.  Corrupt or foreign
    lines fail loudly — the store is an artefact, not a cache that may
    silently rot.
    """

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)
        self._records: Dict[Tuple[str, str, str, str], SweepRecord] = {}
        if self.path.exists():
            for line_number, line in enumerate(
                self.path.read_text().splitlines(), start=1
            ):
                if not line.strip():
                    continue
                try:
                    data = json.loads(line)
                    key = data["key"]
                    record = SweepRecord(
                        use_case=tuple(key["use_case"].split("+")),
                        model=key["model"],
                        method=key["method"],
                        periods=dict(data["periods"]),
                        isolation=dict(data["isolation"]),
                        from_store=True,
                    )
                    self._records[
                        (
                            key["gallery"],
                            key["use_case"],
                            key["model"],
                            key["method"],
                        )
                    ] = record
                except (json.JSONDecodeError, KeyError, TypeError) as error:
                    raise ResourceManagerError(
                        f"result store {self.path}: bad line "
                        f"{line_number}: {error}"
                    ) from None

    def __len__(self) -> int:
        return len(self._records)

    @staticmethod
    def key(
        gallery: GallerySpec,
        use_case: UseCase,
        model: str,
        method: AnalysisMethod,
        fixed_point_iterations: int = 1,
    ) -> Tuple[str, str, str, str]:
        # Refinement depth changes the numbers, so it must change the
        # key; single-pass estimates keep the historical plain-model
        # spelling so existing store files stay valid.
        if fixed_point_iterations != 1:
            model = f"{model}#iterations={fixed_point_iterations}"
        return (
            gallery.label(),
            use_case.label(),
            model,
            method.value,
        )

    def get(
        self, key: Tuple[str, str, str, str]
    ) -> Optional[SweepRecord]:
        return self._records.get(key)

    def put(
        self, key: Tuple[str, str, str, str], record: SweepRecord
    ) -> None:
        if key in self._records:
            return
        self._records[key] = record
        gallery, use_case, model, method = key
        line = json.dumps(
            {
                "key": {
                    "gallery": gallery,
                    "use_case": use_case,
                    "model": model,
                    "method": method,
                },
                "periods": record.periods,
                "isolation": record.isolation,
            },
            sort_keys=True,
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as handle:
            handle.write(line + "\n")


@dataclass
class SweepOutcome:
    """Everything a sweep produced, in use-case selection order."""

    results: List[SweepRecord]
    hits: int
    misses: int
    jobs: int
    elapsed_seconds: float
    gallery: GallerySpec
    model: str
    method: str

    @property
    def use_case_count(self) -> int:
        return len(self.results)


def _estimate_chunk(
    gallery: GallerySpec,
    model: str,
    method_value: str,
    use_cases: List[Tuple[str, ...]],
    fixed_point_iterations: int,
    backend: Optional[str] = None,
) -> List[Dict[str, object]]:
    """Worker entry point: rebuild the gallery, estimate one chunk.

    Module-level (picklable) on purpose.  Engines are built once per
    chunk; every estimate in the chunk is then incremental.
    ``backend`` is the service's array-backend *name* (names pickle,
    instances need not), so workers inherit the caller's choice.
    """
    suite = gallery.build()
    estimator = ProbabilisticEstimator(
        list(suite.graphs),
        mapping=suite.mapping,
        waiting_model=model,
        analysis_method=AnalysisMethod(method_value),
        backend=backend,
    )
    results = estimator.estimate_many(
        [UseCase(tuple(names)) for names in use_cases],
        iterations=fixed_point_iterations,
    )
    return [
        {
            "use_case": list(result.use_case.applications),
            "periods": dict(result.periods),
            "isolation": dict(result.isolation_periods),
        }
        for result in results
    ]


class SweepService:
    """Batched, parallel, store-backed use-case sweeps.

    Parameters
    ----------
    store:
        Optional :class:`ResultStore`; omitted means every sweep
        recomputes (hits stay 0).
    jobs:
        Worker processes for misses.  ``1`` (default) runs inline —
        no pool, no pickling.  Capped at ``os.cpu_count()`` when a
        sweep actually fans out: extra processes beyond the CPUs only
        time-slice each other while still paying the per-chunk
        gallery rebuild.
    backend:
        Array backend selection forwarded to every estimator the
        service builds — in-process and in worker processes alike
        (``repro sweep --backend`` ends up here).  Accepts the same
        values as :func:`repro.backend.get_backend`; instances are
        reduced to their name so the choice survives pickling.
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        jobs: int = 1,
        backend: Optional[object] = None,
    ) -> None:
        if jobs < 1:
            raise ResourceManagerError(
                f"jobs must be >= 1, got {jobs}"
            )
        self.store = store
        self.jobs = jobs
        # Resolve eagerly so a bad name fails in the caller, not in a
        # worker; remember the *name* (picklable, env-independent).
        self.backend: Optional[str] = (
            get_backend(backend).name if backend is not None else None
        )
        registry = get_registry()
        self._tracer = get_tracer()
        self._metric_hits = registry.counter(
            "repro_sweep_store_hits_total",
            "Sweep use-cases answered from the result store",
        )
        self._metric_misses = registry.counter(
            "repro_sweep_store_misses_total",
            "Sweep use-cases that required an estimate",
        )

    def sweep(
        self,
        gallery: GallerySpec,
        model: str = "second_order",
        method: AnalysisMethod = AnalysisMethod.MCR,
        samples_per_size: Optional[int] = None,
        sweep_seed: int = DEFAULT_SWEEP_SEED,
        fixed_point_iterations: int = 1,
    ) -> SweepOutcome:
        """Estimate every (sampled) use-case of ``gallery``.

        Use-case selection follows the library-wide convention
        (:func:`~repro.platform.usecase.sampled_use_cases_by_size`), so
        the service's numbers are comparable with the experiment
        runner's and the CLI's.
        """
        started = _time.perf_counter()
        # Resolve the model through the registry *before* any work (or
        # worker processes) starts: an unknown name or a bad argument
        # fails here with the registered catalogue instead of inside a
        # pool worker.  Passing the gallery's application names also
        # catches per-app parameters naming apps outside the gallery
        # (e.g. 'wrr:Z=2') at submission — the same eager path the
        # service protocol and the placement search use.
        validate_model_spec(model, gallery.application_names())
        selected = sampled_use_cases_by_size(
            gallery.application_names(),
            samples_per_size=samples_per_size,
            seed=sweep_seed,
        )
        keys = [
            ResultStore.key(
                gallery, use_case, model, method, fixed_point_iterations
            )
            for use_case in selected
        ]
        by_key: Dict[Tuple[str, str, str, str], SweepRecord] = {}
        misses: List[Tuple[UseCase, Tuple[str, str, str, str]]] = []
        for use_case, key in zip(selected, keys):
            record = self.store.get(key) if self.store else None
            if record is not None:
                by_key[key] = record
            else:
                misses.append((use_case, key))

        self._metric_hits.inc(len(selected) - len(misses))
        self._metric_misses.inc(len(misses))
        if misses:
            with self._tracer.span(
                "sweep.compute",
                gallery=gallery.label(),
                model=model,
                method=method.value,
                misses=len(misses),
                jobs=self.jobs,
            ):
                for key, record in self._compute(
                    gallery, model, method, misses, fixed_point_iterations
                ):
                    by_key[key] = record
                    if self.store is not None:
                        self.store.put(key, record)

        return SweepOutcome(
            results=[by_key[key] for key in keys],
            hits=len(selected) - len(misses),
            misses=len(misses),
            jobs=self.jobs,
            elapsed_seconds=_time.perf_counter() - started,
            gallery=gallery,
            model=model,
            method=method.value,
        )

    # ------------------------------------------------------------------
    def _compute(
        self,
        gallery: GallerySpec,
        model: str,
        method: AnalysisMethod,
        misses: List[Tuple[UseCase, Tuple[str, str, str, str]]],
        fixed_point_iterations: int,
    ) -> List[Tuple[Tuple[str, str, str, str], SweepRecord]]:
        # Cap the pool at the machine: ``jobs`` above the CPU count
        # would spawn processes that only time-slice each other (each
        # one still paying the per-chunk gallery rebuild), so the
        # oversubscribed sweep was *slower* than the capped one.
        chunk_count = min(self.jobs, len(misses), os.cpu_count() or 1)
        chunks: List[List[Tuple[UseCase, Tuple[str, str, str, str]]]] = [
            [] for _ in range(chunk_count)
        ]
        # Round-robin interleaves use-case sizes (selection is ordered
        # by size), balancing per-chunk analysis cost.
        for position, item in enumerate(misses):
            chunks[position % chunk_count].append(item)

        def payload(chunk):
            return [tuple(uc.applications) for uc, _ in chunk]

        raw_chunks: List[List[Dict[str, object]]]
        if chunk_count == 1:
            raw_chunks = [
                _estimate_chunk(
                    gallery,
                    model,
                    method.value,
                    payload(chunks[0]),
                    fixed_point_iterations,
                    self.backend,
                )
            ]
        else:
            with ProcessPoolExecutor(max_workers=chunk_count) as pool:
                futures = [
                    pool.submit(
                        _estimate_chunk,
                        gallery,
                        model,
                        method.value,
                        payload(chunk),
                        fixed_point_iterations,
                        self.backend,
                    )
                    for chunk in chunks
                ]
                raw_chunks = [future.result() for future in futures]

        computed: List[
            Tuple[Tuple[str, str, str, str], SweepRecord]
        ] = []
        for chunk, raw in zip(chunks, raw_chunks):
            for (use_case, key), data in zip(chunk, raw):
                computed.append(
                    (
                        key,
                        SweepRecord(
                            use_case=tuple(use_case.applications),
                            model=model,
                            method=method.value,
                            periods=dict(data["periods"]),  # type: ignore[arg-type]
                            isolation=dict(data["isolation"]),  # type: ignore[arg-type]
                            from_store=False,
                        ),
                    )
                )
        return computed
