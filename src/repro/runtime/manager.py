"""The run-time resource manager: scenario events in, QoS decisions out.

:class:`ResourceManager` is the subsystem the paper's run-time story
asks for: applications start and stop at unpredictable times, and the
device must decide *on the fly* — fast enough to be interactive —
whether a newcomer fits, and what to degrade when it does not.  It
drives the incremental :class:`~repro.admission.AdmissionController`
(composability aggregates per processor, auto-rebuilt to stay
drift-free) over a stream of :class:`~repro.runtime.events.ScenarioEvent`
requests, with period analysis running on shared
:class:`~repro.analysis_engine.AnalysisEngine` instances so every
decision is a warm-started, weight-only solve.

Soft QoS enters through two mechanisms:

* every application is a :class:`~repro.runtime.quality.QualityLadder`
  — each quality level a variant SDF graph with scaled execution
  times — so "make it fit" can mean "run it smaller"; and
* a pluggable :class:`QoSPolicy` decides what happens when a request
  does not fit as asked: reject it (:class:`RejectPolicy`), evict
  lower-priority residents (:class:`EvictLowestPriorityPolicy`), or
  search quality assignments for the cheapest degradation that
  satisfies every requirement (:class:`DowngradePolicy`).

Every processed event yields a
:class:`~repro.runtime.log.DecisionRecord`; a full trace replay yields
a :class:`~repro.runtime.log.RuntimeLog`.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Dict, List, Mapping as TMapping, Optional, Sequence, Tuple

from repro.admission.controller import (
    AdmissionController,
    AdmissionDecision,
)
from repro.analysis_engine import AnalysisEngine, build_engines
from repro.exceptions import ResourceManagerError
from repro.platform.mapping import Mapping, index_mapping
from repro.runtime.events import EventKind, ScenarioEvent, Trace
from repro.runtime.log import DecisionRecord, RuntimeLog
from repro.runtime.quality import (
    DEFAULT_QUALITY_LEVELS,
    QualityLadder,
    QualityLevel,
)
from repro.sdf.analysis import AnalysisMethod
from repro.search.assignment import (
    QualityAssignmentProblem,
    search_assignment,
)
from repro.search.feasibility import evaluate_feasibility
from repro.telemetry import get_registry, get_tracer
from repro.sdf.graph import SDFGraph


@dataclass(frozen=True)
class AppSpec:
    """One application as the resource manager knows it.

    Attributes
    ----------
    ladder:
        Quality levels (best first); level 0 is what a plain start
        requests.
    required_period:
        Maximum acceptable contended period, registered with the
        admission controller while resident.  ``None`` = best effort.
    priority:
        Larger values are more important; the eviction policy only
        evicts residents of *strictly lower* priority than the
        newcomer, and the downgrade policy degrades low-priority
        residents first.
    """

    ladder: QualityLadder
    required_period: Optional[float] = None
    priority: int = 0

    @property
    def name(self) -> str:
        return self.ladder.application


def gallery_from_graphs(
    graphs: Sequence[SDFGraph],
    slack: float = 2.5,
    levels: Sequence[QualityLevel] = DEFAULT_QUALITY_LEVELS,
    priorities: Optional[TMapping[str, int]] = None,
) -> List[AppSpec]:
    """Wrap plain graphs into runtime specs with derived requirements.

    Each application's requirement is ``slack`` times its isolation
    period at best quality — tight enough that a loaded device rejects,
    loose enough that small parties co-exist — and its priority defaults
    to its position (earlier graphs are more important), mirroring how a
    device vendor ranks built-in features.
    """
    if slack <= 1.0:
        raise ResourceManagerError(
            f"slack must exceed 1.0 (isolation is the floor), got {slack}"
        )
    from repro.sdf.analysis import period as analytical_period

    specs: List[AppSpec] = []
    graphs = list(graphs)
    count = len(graphs)
    for position, graph in enumerate(graphs):
        priority = (
            priorities[graph.name]
            if priorities is not None and graph.name in priorities
            else count - position
        )
        specs.append(
            AppSpec(
                ladder=QualityLadder(graph, levels=levels),
                required_period=analytical_period(graph) * slack,
                priority=priority,
            )
        )
    return specs


@dataclass(frozen=True)
class PolicyResolution:
    """What a QoS policy did about a rejected request."""

    admitted: bool
    quality: Optional[str]
    reason: str
    evicted: Tuple[str, ...] = ()
    downgraded: Tuple[Tuple[str, str], ...] = ()
    decision: Optional[AdmissionDecision] = None


class QoSPolicy:
    """Base class: called when a start request is refused as asked."""

    name = "abstract"

    def resolve(
        self,
        manager: "ResourceManager",
        spec: AppSpec,
        requested_quality: str,
        decision: AdmissionDecision,
    ) -> PolicyResolution:
        raise NotImplementedError


class RejectPolicy(QoSPolicy):
    """Hard admission control: a request that does not fit is refused."""

    name = "reject"

    def resolve(self, manager, spec, requested_quality, decision):
        return PolicyResolution(
            admitted=False,
            quality=None,
            reason=decision.reason,
            decision=decision,
        )


class EvictLowestPriorityPolicy(QoSPolicy):
    """Make room by evicting strictly lower-priority residents.

    Victims leave lowest-priority-first (ties: most recently admitted
    first) until the newcomer fits; if it never fits, every victim is
    restored at its previous quality and the request is rejected.
    """

    name = "evict"

    def resolve(self, manager, spec, requested_quality, decision):
        order = {
            app: position
            for position, app in enumerate(
                manager.controller.admitted_applications
            )
        }
        victims = sorted(
            (
                app
                for app in order
                if manager.spec_of(app).priority < spec.priority
            ),
            key=lambda app: (manager.spec_of(app).priority, -order[app]),
        )
        evicted: List[Tuple[str, str]] = []
        last_decision = decision
        for victim in victims:
            evicted.append((victim, manager.quality_of(victim)))
            manager._withdraw(victim)
            last_decision = manager._admit(spec.name, requested_quality)
            if last_decision.admitted:
                return PolicyResolution(
                    admitted=True,
                    quality=requested_quality,
                    reason=(
                        f"{spec.name!r} admitted after evicting "
                        f"{', '.join(repr(v) for v, _ in evicted)}"
                    ),
                    evicted=tuple(v for v, _ in evicted),
                    decision=last_decision,
                )
        # Rollback: the original resident set was feasible, so
        # re-admission cannot be refused.
        for victim, quality in reversed(evicted):
            manager._restore(victim, quality)
        return PolicyResolution(
            admitted=False,
            quality=None,
            reason=last_decision.reason,
            decision=last_decision,
        )


class DowngradePolicy(QoSPolicy):
    """Soft QoS: degrade quality levels until everything fits.

    Searches assignments over the candidate's levels (requested or
    lower) and every resident's levels (current or lower — residents are
    never upgraded to make room).  ``search="exhaustive"`` enumerates
    the whole product in cheapest-first order (fewest total downgrade
    steps; ties degrade the newcomer and low-priority residents first),
    so it finds a feasible assignment whenever one exists;
    ``search="greedy"`` walks a single degradation chain (newcomer
    first, then lowest-priority residents) and is O(total steps).  The
    exhaustive search falls back to greedy beyond ``max_combinations``
    assignments.

    Feasibility of an assignment is checked with the same composability
    estimate the admission controller uses (fresh composition +
    warm-started engine solves), so a chosen assignment commits without
    surprises.
    """

    def __init__(
        self, search: str = "exhaustive", max_combinations: int = 4096
    ) -> None:
        if search not in ("greedy", "exhaustive"):
            raise ResourceManagerError(
                f"search must be 'greedy' or 'exhaustive', got {search!r}"
            )
        self.search = search
        self.max_combinations = max_combinations
        self.name = f"downgrade-{search}"

    # -- assignment search ------------------------------------------------
    def resolve(self, manager, spec, requested_quality, decision):
        residents = list(manager.controller.admitted_applications)
        assignment = self._find_assignment(
            manager, spec, requested_quality, residents
        )
        if assignment is None:
            return PolicyResolution(
                admitted=False,
                quality=None,
                reason=(
                    f"{decision.reason} — no feasible quality "
                    f"assignment ({self.name})"
                ),
                decision=decision,
            )
        return manager._apply_assignment(spec, assignment, residents)

    def _find_assignment(
        self,
        manager: "ResourceManager",
        spec: AppSpec,
        requested_quality: str,
        residents: List[str],
    ) -> Optional[Dict[str, str]]:
        """A feasible ``{app: level}`` covering residents + candidate.

        Thin client of :func:`repro.search.search_assignment`: this
        method only phrases the runtime state as a
        :class:`~repro.search.assignment.QualityAssignmentProblem`
        (admissible levels from each application's floor, newcomer
        last, resident priorities for the tie-break) — the enumeration
        order and the greedy chain live in the search layer.
        """
        ladders = {app: manager.spec_of(app).ladder for app in residents}
        ladders[spec.name] = spec.ladder
        floors = {
            app: ladders[app].index_of(manager.quality_of(app))
            for app in residents
        }
        floors[spec.name] = spec.ladder.index_of(requested_quality)
        apps = residents + [spec.name]
        problem = QualityAssignmentProblem(
            applications=tuple(apps),
            levels={
                app: tuple(
                    level.name
                    for level in ladders[app].levels[floors[app]:]
                )
                for app in apps
            },
            priorities={
                app: manager.spec_of(app).priority for app in residents
            },
            newcomer=spec.name,
        )
        return search_assignment(
            problem,
            manager.assignment_is_feasible,
            search=self.search,
            max_combinations=self.max_combinations,
        )


def make_qos_policy(spec: "QoSPolicy | str") -> QoSPolicy:
    """Policy factory: ``"reject"``, ``"evict"``, ``"downgrade"``
    (exhaustive with greedy fallback) or ``"downgrade-greedy"``."""
    if isinstance(spec, QoSPolicy):
        return spec
    policies = {
        "reject": RejectPolicy,
        "evict": EvictLowestPriorityPolicy,
        "downgrade": lambda: DowngradePolicy(search="exhaustive"),
        "downgrade-greedy": lambda: DowngradePolicy(search="greedy"),
    }
    try:
        return policies[spec]()
    except KeyError:
        raise ResourceManagerError(
            f"unknown QoS policy {spec!r} "
            f"(choose from {', '.join(sorted(policies))})"
        ) from None


class ResourceManager:
    """Event-driven admission + QoS adaptation over a gallery.

    Parameters
    ----------
    specs:
        The application gallery (see :func:`gallery_from_graphs`).
    mapping:
        Actor bindings covering every base graph (and hence every
        quality variant — topology is shared); defaults to the paper's
        index mapping.
    policy:
        QoS policy or its name (:func:`make_qos_policy`).
    analysis_method:
        Period engine for all estimates.
    rebuild_interval:
        Auto-rebuild period of the admission controller.  The default
        ``1`` recomposes the (cheap) per-processor aggregates after
        every commit, so every decision is drift-free and matches a
        cold-path re-estimate of the same resident set to <= 1e-9.
    engines:
        Pre-built shared analysis engines (one per base graph);
        built on demand when omitted.
    """

    def __init__(
        self,
        specs: Sequence[AppSpec],
        mapping: Optional[Mapping] = None,
        policy: "QoSPolicy | str" = "reject",
        analysis_method: AnalysisMethod = AnalysisMethod.MCR,
        rebuild_interval: Optional[int] = 1,
        engines: Optional[Dict[str, AnalysisEngine]] = None,
    ) -> None:
        if not specs:
            raise ResourceManagerError(
                "resource manager needs at least one application spec"
            )
        self.specs: Dict[str, AppSpec] = {}
        for spec in specs:
            if spec.name in self.specs:
                raise ResourceManagerError(
                    f"duplicate application {spec.name!r} in gallery"
                )
            self.specs[spec.name] = spec
        base_graphs = [spec.ladder.graph for spec in specs]
        self.mapping = (
            mapping if mapping is not None else index_mapping(base_graphs)
        )
        self.mapping.validate_against(base_graphs)
        self.analysis_method = analysis_method
        self.engines = (
            engines
            if engines is not None
            else build_engines(base_graphs, method=analysis_method)
        )
        self.policy = make_qos_policy(policy)
        self.controller = AdmissionController(
            self.mapping,
            analysis_method=analysis_method,
            engines=self.engines,
            rebuild_interval=rebuild_interval,
        )
        self._quality: Dict[str, str] = {}
        # Telemetry: per-outcome decision counters plus a latency
        # histogram for the decision loop (bound once; the replay hot
        # loop pays one no-op call per event when telemetry is off).
        registry = get_registry()
        self._tracer = get_tracer()
        self._metric_decisions = {
            outcome: registry.counter(
                "repro_runtime_decisions_total",
                "Decision-loop outcomes by kind",
                outcome=outcome,
            )
            for outcome in ("admitted", "rejected", "stopped", "ignored")
        }
        self._metric_decision_seconds = registry.histogram(
            "repro_runtime_decision_seconds",
            "Wall-clock seconds per decision-loop event",
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def residents(self) -> Tuple[Tuple[str, str], ...]:
        """``(application, quality)`` pairs in composition order."""
        return tuple(
            (app, self._quality[app])
            for app in self.controller.admitted_applications
        )

    def spec_of(self, application: str) -> AppSpec:
        try:
            return self.specs[application]
        except KeyError:
            raise ResourceManagerError(
                f"application {application!r} is not in the gallery"
            ) from None

    def quality_of(self, application: str) -> str:
        """Current quality level of a resident application."""
        try:
            return self._quality[application]
        except KeyError:
            raise ResourceManagerError(
                f"application {application!r} is not resident"
            ) from None

    def is_resident(self, application: str) -> bool:
        return application in self._quality

    def assignment_is_feasible(
        self, assignment: TMapping[str, str]
    ) -> bool:
        """Whether a ``{app: level}`` assignment meets every requirement.

        Deprecated alias of the public
        :func:`repro.search.evaluate_feasibility` (same rule, same
        evaluator); kept for one release for callers of the historical
        private path.  Pure query: evaluates a fresh composition of the
        assignment's variant graphs without touching the controller
        state.
        """
        return bool(self._evaluate_assignment(assignment))

    def assignment_periods(
        self, assignment: TMapping[str, str]
    ) -> Dict[str, float]:
        """Predicted contended periods of a quality assignment.

        Deprecated alias: the periods of
        :func:`repro.search.evaluate_feasibility`'s report.
        """
        return self._evaluate_assignment(assignment).periods

    def _evaluate_assignment(self, assignment: TMapping[str, str]):
        """The shared evaluator behind the deprecated aliases above."""
        graphs = {
            app: self.spec_of(app).ladder.graph_at(level)
            for app, level in assignment.items()
        }
        targets = {
            app: self.spec_of(app).required_period for app in assignment
        }
        return evaluate_feasibility(
            graphs,
            self.mapping,
            targets,
            method=self.analysis_method,
            engines=self.engines,
        )

    # ------------------------------------------------------------------
    # Event processing
    # ------------------------------------------------------------------
    def replay(self, trace: Trace) -> RuntimeLog:
        """Process every event of ``trace``; returns the decision log."""
        log = RuntimeLog(
            metadata={
                "trace_seed": trace.seed,
                "policy": self.policy.name,
                "analysis_method": self.analysis_method.value,
                "applications": list(self.specs),
            }
        )
        started = _time.perf_counter()
        with self._tracer.span(
            "runtime.replay", policy=self.policy.name, events=len(trace)
        ):
            for index, event in enumerate(trace):
                log.append(self.handle_event(event, index=index))
        log.elapsed_seconds = _time.perf_counter() - started
        return log

    def handle_event(
        self, event: ScenarioEvent, index: int = 0
    ) -> DecisionRecord:
        started = _time.perf_counter()
        if event.application not in self.specs:
            raise ResourceManagerError(
                f"event references unknown application "
                f"{event.application!r}"
            )
        if event.kind is EventKind.START:
            record = self._handle_start(event, index)
        elif event.kind is EventKind.STOP:
            record = self._handle_stop(event, index)
        else:
            record = self._handle_adjust(event, index)
        elapsed = _time.perf_counter() - started
        object.__setattr__(record, "decision_seconds", elapsed)
        metric = self._metric_decisions.get(record.outcome)
        if metric is not None:
            metric.inc()
        self._metric_decision_seconds.observe(elapsed)
        return record

    # -- start ----------------------------------------------------------
    def _handle_start(
        self, event: ScenarioEvent, index: int
    ) -> DecisionRecord:
        spec = self.spec_of(event.application)
        if self.is_resident(spec.name):
            return self._record(
                index, event, "ignored",
                quality=self.quality_of(spec.name),
                reason=f"{spec.name!r} is already resident",
            )
        quality = (
            event.quality if event.quality is not None else spec.ladder.best
        )
        spec.ladder.level(quality)  # validate the level name early
        decision = self._admit(spec.name, quality)
        if decision.admitted:
            return self._record(
                index, event, "admitted",
                quality=quality,
                reason=decision.reason,
                decision=decision,
            )
        resolution = self.policy.resolve(self, spec, quality, decision)
        outcome = "admitted" if resolution.admitted else "rejected"
        # Rejections keep the *original* decision: its tentative periods
        # describe the recorded resident set plus the candidate in
        # composition order (policy attempts may have rolled back
        # through a different fold order).
        record_decision = (
            resolution.decision
            if resolution.admitted and resolution.decision is not None
            else decision
        )
        return self._record(
            index, event, outcome,
            quality=resolution.quality,
            reason=resolution.reason,
            decision=record_decision,
            evicted=resolution.evicted,
            downgraded=resolution.downgraded,
        )

    # -- stop -----------------------------------------------------------
    def _handle_stop(
        self, event: ScenarioEvent, index: int
    ) -> DecisionRecord:
        if not self.is_resident(event.application):
            return self._record(
                index, event, "ignored",
                quality=None,
                reason=f"{event.application!r} is not resident",
            )
        self._withdraw(event.application)
        return self._record(
            index, event, "stopped",
            quality=None,
            reason=f"{event.application!r} stopped",
        )

    # -- adjust ---------------------------------------------------------
    def _handle_adjust(
        self, event: ScenarioEvent, index: int
    ) -> DecisionRecord:
        spec = self.spec_of(event.application)
        target = event.quality
        assert target is not None  # enforced by ScenarioEvent
        spec.ladder.level(target)
        if not self.is_resident(spec.name):
            return self._record(
                index, event, "ignored",
                quality=None,
                reason=f"{spec.name!r} is not resident",
            )
        current = self.quality_of(spec.name)
        if target == current:
            return self._record(
                index, event, "ignored",
                quality=current,
                reason=f"{spec.name!r} already at {current!r}",
            )
        self._withdraw(spec.name)
        decision = self._admit(spec.name, target)
        if decision.admitted:
            return self._record(
                index, event, "admitted",
                quality=target,
                reason=(
                    f"{spec.name!r} adjusted {current!r} -> {target!r}"
                ),
                decision=decision,
            )
        # Restore: the pre-adjust state was feasible.
        self._restore(spec.name, current)
        return self._record(
            index, event, "rejected",
            quality=current,
            reason=(
                f"adjust {current!r} -> {target!r} refused: "
                f"{decision.reason}"
            ),
            decision=decision,
        )

    # ------------------------------------------------------------------
    # Controller plumbing (also used by the QoS policies)
    # ------------------------------------------------------------------
    def _admit(self, application: str, quality: str) -> AdmissionDecision:
        spec = self.spec_of(application)
        decision = self.controller.request_admission(
            spec.ladder.graph_at(quality),
            max_period=spec.required_period,
        )
        if decision.admitted:
            self._quality[application] = quality
        return decision

    def _withdraw(self, application: str) -> None:
        self.controller.withdraw(application)
        del self._quality[application]

    def _restore(self, application: str, quality: str) -> None:
        """Re-admit a previously resident application, unconditionally.

        Restoring an operating state must not fail: the withdraw/
        re-admit cycle changes the ``(x)`` fold order, which can shift a
        borderline estimate past a requirement by the operator's
        second-order associativity error.  The state being restored was
        feasible when it was admitted; the unchecked commit keeps it.
        """
        spec = self.spec_of(application)
        self.controller.admit_unchecked(
            spec.ladder.graph_at(quality),
            max_period=spec.required_period,
        )
        self._quality[application] = quality

    def _apply_assignment(
        self,
        spec: AppSpec,
        assignment: Dict[str, str],
        residents: List[str],
    ) -> PolicyResolution:
        """Commit a feasible quality assignment found by a policy."""
        downgraded = [
            (app, assignment[app])
            for app in residents
            if assignment[app] != self.quality_of(app)
        ]
        previous = {app: self.quality_of(app) for app, _ in downgraded}
        for app, _ in downgraded:
            self._withdraw(app)
        for app, level in downgraded:
            self._restore(app, level)
        decision = self._admit(spec.name, assignment[spec.name])
        if decision.admitted:
            return PolicyResolution(
                admitted=True,
                quality=assignment[spec.name],
                reason=(
                    f"{spec.name!r} admitted at "
                    f"{assignment[spec.name]!r}"
                    + (
                        " after downgrading "
                        + ", ".join(
                            f"{app}->{level}" for app, level in downgraded
                        )
                        if downgraded
                        else ""
                    )
                ),
                downgraded=tuple(downgraded),
                decision=decision,
            )
        # The feasibility estimate and the committed fold can disagree
        # only in the last floating-point bits; if a borderline
        # assignment flips, restore the previous qualities and reject.
        for app, _ in downgraded:
            self._withdraw(app)
        for app, _ in downgraded:
            self._restore(app, previous[app])
        return PolicyResolution(
            admitted=False,
            quality=None,
            reason=decision.reason,
            decision=decision,
        )

    # ------------------------------------------------------------------
    def _record(
        self,
        index: int,
        event: ScenarioEvent,
        outcome: str,
        quality: Optional[str],
        reason: str,
        decision: Optional[AdmissionDecision] = None,
        evicted: Tuple[str, ...] = (),
        downgraded: Tuple[Tuple[str, str], ...] = (),
    ) -> DecisionRecord:
        if decision is not None:
            predicted = dict(decision.estimated_periods)
            required = dict(decision.required_periods)
        elif self._quality:
            predicted = self.controller.estimated_periods()
            required = {}
            for app in self.controller.admitted_applications:
                requirement = self.controller.required_period_of(app)
                if requirement is not None:
                    required[app] = requirement
        else:
            predicted = {}
            required = {}
        return DecisionRecord(
            index=index,
            event=event,
            outcome=outcome,
            quality=quality,
            reason=reason,
            predicted_periods=predicted,
            required_periods=required,
            residents=self.residents,
            evicted=evicted,
            downgraded=downgraded,
            utilization=self.controller.utilization(),
        )
