"""Quality levels: soft-QoS variants of an application.

A media application on a multi-featured device usually ships several
operating points — full frame rate, reduced resolution, audio-only —
and a resource manager degrades gracefully instead of rejecting
outright.  Here every quality level is a *variant SDF graph* of the same
application: identical topology (actors, channels, rates, tokens) with
execution times scaled by the level's ``scale`` factor.  Lower quality
means less work per firing, hence shorter execution times, lower node
utilization, and less contention inflicted on everyone else.

Because the topology is untouched, one
:class:`~repro.analysis_engine.AnalysisEngine` built from the base graph
answers period queries for *every* level (the engine only needs a full
per-actor time vector), and one actor-to-processor mapping covers all
variants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.exceptions import ResourceManagerError
from repro.sdf.graph import SDFGraph


@dataclass(frozen=True)
class QualityLevel:
    """One operating point of an application.

    ``scale`` multiplies every actor execution time of the base graph;
    the best level has scale 1.0 and degraded levels scale < 1.0.
    """

    name: str
    scale: float

    def __post_init__(self) -> None:
        if not 0.0 < self.scale <= 1.0:
            raise ResourceManagerError(
                f"quality level {self.name!r}: scale must be in (0, 1], "
                f"got {self.scale}"
            )


#: Default three-step ladder used by the gallery helpers and the CLI.
DEFAULT_QUALITY_LEVELS: Tuple[QualityLevel, ...] = (
    QualityLevel("high", 1.0),
    QualityLevel("medium", 0.7),
    QualityLevel("low", 0.45),
)


class QualityLadder:
    """The ordered quality levels of one application, best first.

    Parameters
    ----------
    graph:
        The application at its best quality (scale 1.0 reproduces it).
    levels:
        Strictly decreasing scales, unique names, best level first.
    """

    def __init__(
        self,
        graph: SDFGraph,
        levels: Sequence[QualityLevel] = DEFAULT_QUALITY_LEVELS,
    ) -> None:
        if not levels:
            raise ResourceManagerError(
                f"application {graph.name!r} needs at least one "
                "quality level"
            )
        names = [level.name for level in levels]
        if len(set(names)) != len(names):
            raise ResourceManagerError(
                f"application {graph.name!r}: duplicate quality level "
                f"names {names!r}"
            )
        for higher, lower in zip(levels, levels[1:]):
            if lower.scale >= higher.scale:
                raise ResourceManagerError(
                    f"application {graph.name!r}: quality scales must "
                    f"strictly decrease, got {higher.name}={higher.scale} "
                    f"then {lower.name}={lower.scale}"
                )
        self.graph = graph
        self.levels: Tuple[QualityLevel, ...] = tuple(levels)
        self._index: Dict[str, int] = {
            level.name: i for i, level in enumerate(self.levels)
        }
        self._variants: Dict[str, SDFGraph] = {}

    # ------------------------------------------------------------------
    @property
    def application(self) -> str:
        return self.graph.name

    @property
    def level_names(self) -> Tuple[str, ...]:
        return tuple(level.name for level in self.levels)

    @property
    def best(self) -> str:
        return self.levels[0].name

    @property
    def worst(self) -> str:
        return self.levels[-1].name

    def level(self, name: str) -> QualityLevel:
        try:
            return self.levels[self._index[name]]
        except KeyError:
            raise ResourceManagerError(
                f"application {self.application!r} has no quality level "
                f"{name!r} (levels: {', '.join(self.level_names)})"
            ) from None

    def index_of(self, name: str) -> int:
        """Position of ``name`` in the ladder (0 = best)."""
        self.level(name)
        return self._index[name]

    def below(self, name: str) -> Optional[str]:
        """The next lower level, or ``None`` at the bottom."""
        index = self.index_of(name)
        if index + 1 >= len(self.levels):
            return None
        return self.levels[index + 1].name

    def graph_at(self, name: str) -> SDFGraph:
        """The variant SDF graph of quality level ``name`` (cached)."""
        level = self.level(name)
        variant = self._variants.get(name)
        if variant is None:
            if level.scale == 1.0:
                variant = self.graph
            else:
                variant = self.graph.with_execution_times(
                    {
                        actor.name: actor.execution_time * level.scale
                        for actor in self.graph.actors
                    }
                )
            self._variants[name] = variant
        return variant
