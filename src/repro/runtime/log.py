"""The runtime log: what the resource manager decided, and why.

One :class:`DecisionRecord` per scenario event — outcome, predicted
contended periods of the post-event resident set, the resident set
itself (in the controller's composition order, which the cold-path
parity tests replay), any evictions/downgrades the QoS policy performed,
and per-processor utilization.  A :class:`RuntimeLog` aggregates the
records with summary statistics (admission ratio, decisions/sec) and
round-trips through JSON like every other artefact of the library.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.exceptions import ResourceManagerError
from repro.runtime.events import (
    ScenarioEvent,
    event_from_dict,
    event_to_dict,
)

#: Possible ``DecisionRecord.outcome`` values.
OUTCOMES: Tuple[str, ...] = (
    "admitted",      # start/adjust request satisfied (possibly degraded)
    "rejected",      # start/adjust request denied, state unchanged
    "stopped",       # resident application withdrawn
    "ignored",       # no-op (start of a resident app, stop of a non-resident)
)


@dataclass(frozen=True)
class DecisionRecord:
    """Everything recorded about one processed scenario event.

    Attributes
    ----------
    index / event:
        Position in the trace and the event itself.
    outcome:
        One of :data:`OUTCOMES`.
    quality:
        Quality level the application ended up at (``None`` unless the
        app is resident after the event).
    reason:
        Human-readable explanation from the admission controller or the
        QoS policy.
    predicted_periods / required_periods:
        Contended period estimate of every resident application after
        the event, and the registered requirements.  For rejections the
        predictions describe the *tentative* state that was refused
        (resident set plus candidate), matching the admission
        controller's decision output.
    residents:
        Post-event ``(application, quality)`` pairs in the controller's
        aggregate composition order.
    evicted / downgraded:
        QoS-policy side effects: evicted application names, and
        ``(application, new_quality)`` pairs for residents that were
        degraded to fit the newcomer.
    utilization:
        Post-event busy probability per processor.
    decision_seconds:
        Wall-clock cost of handling the event.
    """

    index: int
    event: ScenarioEvent
    outcome: str
    quality: Optional[str]
    reason: str
    predicted_periods: Dict[str, float]
    required_periods: Dict[str, float]
    residents: Tuple[Tuple[str, str], ...]
    evicted: Tuple[str, ...] = ()
    downgraded: Tuple[Tuple[str, str], ...] = ()
    utilization: Dict[str, float] = field(default_factory=dict)
    decision_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.outcome not in OUTCOMES:
            raise ResourceManagerError(
                f"unknown decision outcome {self.outcome!r}"
            )


@dataclass
class RuntimeLog:
    """All decision records of one trace replay plus summary statistics."""

    records: List[DecisionRecord] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[DecisionRecord]:
        return iter(self.records)

    def append(self, record: DecisionRecord) -> None:
        self.records.append(record)

    # ------------------------------------------------------------------
    # Summary statistics
    # ------------------------------------------------------------------
    def counts_by_outcome(self) -> Dict[str, int]:
        counts: Dict[str, int] = {outcome: 0 for outcome in OUTCOMES}
        for record in self.records:
            counts[record.outcome] += 1
        return counts

    @property
    def request_count(self) -> int:
        """Start/adjust requests that needed an admission decision."""
        return sum(
            1
            for record in self.records
            if record.outcome in ("admitted", "rejected")
        )

    @property
    def admitted_count(self) -> int:
        return sum(
            1 for record in self.records if record.outcome == "admitted"
        )

    @property
    def admission_ratio(self) -> float:
        """Admitted fraction of the start/adjust requests (1.0 if none)."""
        requests = self.request_count
        if requests == 0:
            return 1.0
        return self.admitted_count / requests

    @property
    def decisions_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return len(self.records) / self.elapsed_seconds

    @property
    def eviction_count(self) -> int:
        return sum(len(record.evicted) for record in self.records)

    @property
    def downgrade_count(self) -> int:
        return sum(len(record.downgraded) for record in self.records)

    def mean_utilization(self) -> Dict[str, float]:
        """Per-processor busy probability averaged over all records."""
        if not self.records:
            return {}
        totals: Dict[str, float] = {}
        for record in self.records:
            for processor, value in record.utilization.items():
                totals[processor] = totals.get(processor, 0.0) + value
        return {
            processor: total / len(self.records)
            for processor, total in totals.items()
        }


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
def record_to_dict(record: DecisionRecord) -> Dict[str, Any]:
    return {
        "index": record.index,
        "event": event_to_dict(record.event),
        "outcome": record.outcome,
        "quality": record.quality,
        "reason": record.reason,
        "predicted_periods": dict(record.predicted_periods),
        "required_periods": dict(record.required_periods),
        "residents": [list(pair) for pair in record.residents],
        "evicted": list(record.evicted),
        "downgraded": [list(pair) for pair in record.downgraded],
        "utilization": dict(record.utilization),
        "decision_seconds": record.decision_seconds,
    }


def record_from_dict(data: Mapping[str, Any]) -> DecisionRecord:
    try:
        return DecisionRecord(
            index=int(data["index"]),
            event=event_from_dict(data["event"]),
            outcome=data["outcome"],
            quality=data.get("quality"),
            reason=data.get("reason", ""),
            predicted_periods=dict(data["predicted_periods"]),
            required_periods=dict(data["required_periods"]),
            residents=tuple(
                (app, quality) for app, quality in data["residents"]
            ),
            evicted=tuple(data.get("evicted", ())),
            downgraded=tuple(
                (app, quality)
                for app, quality in data.get("downgraded", ())
            ),
            utilization=dict(data.get("utilization", {})),
            decision_seconds=float(data.get("decision_seconds", 0.0)),
        )
    except KeyError as missing:
        raise ResourceManagerError(
            f"decision record dict is missing key {missing}"
        ) from None


def log_to_dict(log: RuntimeLog) -> Dict[str, Any]:
    return {
        "elapsed_seconds": log.elapsed_seconds,
        "metadata": dict(log.metadata),
        "records": [record_to_dict(r) for r in log.records],
    }


def log_from_dict(data: Mapping[str, Any]) -> RuntimeLog:
    try:
        records = [record_from_dict(r) for r in data["records"]]
    except KeyError as missing:
        raise ResourceManagerError(
            f"runtime log dict is missing key {missing}"
        ) from None
    return RuntimeLog(
        records=records,
        elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
        metadata=dict(data.get("metadata", {})),
    )


def log_to_json(log: RuntimeLog, indent: int = 2) -> str:
    return json.dumps(log_to_dict(log), indent=indent, sort_keys=True)


def log_from_json(text: str) -> RuntimeLog:
    return log_from_dict(json.loads(text))
