"""Scenario event streams: the input language of the resource manager.

The paper motivates run-time use with a media device where "applications
are started and stopped by the user at unpredictable times".  A
:class:`ScenarioEvent` is one such request — start an application at some
quality level, stop it, or change its quality — and a :class:`Trace` is a
time-ordered stream of them, typically produced by
:class:`repro.generation.workload.WorkloadGenerator` and consumed by
:class:`repro.runtime.manager.ResourceManager`.

Traces are plain data: they serialize to JSON with sorted keys, so the
same seed and configuration always yield *byte-identical* text (the
workload-determinism tests assert exactly that).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple

from repro.exceptions import ResourceManagerError


class EventKind(enum.Enum):
    """What the user (or scenario) asks the resource manager to do."""

    START = "start"
    STOP = "stop"
    ADJUST = "adjust"


@dataclass(frozen=True)
class ScenarioEvent:
    """One timestamped request against the resource manager.

    Attributes
    ----------
    time:
        Request timestamp (same time base as actor execution times).
    kind:
        Start, stop or quality-adjust.
    application:
        Target application name.
    quality:
        Requested quality level — ``None`` means the application's best
        level for starts and is invalid for adjusts.
    """

    time: float
    kind: EventKind
    application: str
    quality: Optional[str] = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ResourceManagerError(
                f"event time must be non-negative, got {self.time}"
            )
        if self.kind is EventKind.ADJUST and self.quality is None:
            raise ResourceManagerError(
                f"adjust event for {self.application!r} needs a "
                "target quality level"
            )


@dataclass(frozen=True)
class Trace:
    """A time-ordered stream of scenario events plus its provenance.

    ``seed`` and ``metadata`` echo how the trace was generated so a
    result store can key on them and a reader can regenerate the trace.
    """

    events: Tuple[ScenarioEvent, ...]
    seed: Optional[int] = None
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        previous = 0.0
        for event in self.events:
            if event.time < previous:
                raise ResourceManagerError(
                    f"trace events are not time-ordered at t={event.time}"
                )
            previous = event.time

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[ScenarioEvent]:
        return iter(self.events)

    @property
    def applications(self) -> Tuple[str, ...]:
        """Every application referenced, in first-appearance order."""
        seen: Dict[str, None] = {}
        for event in self.events:
            seen.setdefault(event.application, None)
        return tuple(seen)

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {k.value: 0 for k in EventKind}
        for event in self.events:
            counts[event.kind.value] += 1
        return counts


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
def event_to_dict(event: ScenarioEvent) -> Dict[str, Any]:
    data: Dict[str, Any] = {
        "time": event.time,
        "kind": event.kind.value,
        "application": event.application,
    }
    if event.quality is not None:
        data["quality"] = event.quality
    return data


def event_from_dict(data: Mapping[str, Any]) -> ScenarioEvent:
    try:
        return ScenarioEvent(
            time=float(data["time"]),
            kind=EventKind(data["kind"]),
            application=data["application"],
            quality=data.get("quality"),
        )
    except KeyError as missing:
        raise ResourceManagerError(
            f"event dict is missing key {missing}"
        ) from None
    except ValueError as error:
        raise ResourceManagerError(str(error)) from None


def trace_to_dict(trace: Trace) -> Dict[str, Any]:
    return {
        "seed": trace.seed,
        "metadata": dict(trace.metadata),
        "events": [event_to_dict(e) for e in trace.events],
    }


def trace_from_dict(data: Mapping[str, Any]) -> Trace:
    try:
        events = tuple(event_from_dict(e) for e in data["events"])
    except KeyError as missing:
        raise ResourceManagerError(
            f"trace dict is missing key {missing}"
        ) from None
    return Trace(
        events=events,
        seed=data.get("seed"),
        metadata=dict(data.get("metadata", {})),
    )


def trace_to_json(trace: Trace, indent: int = 2) -> str:
    """JSON text; sorted keys make equal traces byte-identical."""
    return json.dumps(trace_to_dict(trace), indent=indent, sort_keys=True)


def trace_from_json(text: str) -> Trace:
    return trace_from_dict(json.loads(text))
