"""Incremental analysis engine — structure once, weights per solve.

This layer sits between ``repro.sdf`` (graph analysis primitives) and
``repro.core`` (the paper's estimation algorithm).  It owns, per
application graph, everything that survives between period queries: the
HSDF expansion, the generic ratio problem built from it, the SCC
decomposition, the last converged Howard policy, and a memo cache keyed
on response-time vectors.  See :mod:`repro.analysis_engine.engine` for
the full story.

Typical use::

    from repro.analysis_engine import build_engines
    from repro import ProbabilisticEstimator

    engines = build_engines(graphs)          # expansion happens here
    for model in ("second_order", "composability"):
        estimator = ProbabilisticEstimator(
            graphs, waiting_model=model, engines=engines
        )
        results = estimator.estimate_many(use_cases)
"""

from repro.analysis_engine.engine import (
    AnalysisEngine,
    EngineStats,
    build_engines,
)

__all__ = ["AnalysisEngine", "EngineStats", "build_engines"]
