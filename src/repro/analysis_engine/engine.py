"""Per-graph incremental period analysis.

:class:`AnalysisEngine` is the stateful core of the library's hot path.
The probabilistic estimator needs the period of the *same* SDF graph
over and over with nothing but the actor execution times changed (once
per application, per fixed-point iteration, per use-case of a sweep).
The cold path repeats all the structural work every time: copy the
graph, recompute the repetition vector, expand to HSDF, decompose into
SCCs, check for deadlock, and cold-start Howard's algorithm.  None of
that depends on the weights.

The engine computes structure exactly once per graph:

* the HSDF expansion and its dense vertex indexing,
* the generic :class:`~repro.sdf.mcm.RatioEdge` problem built from it,
  held inside an :class:`~repro.sdf.mcm.IncrementalMCRSolver` that also
  caches the SCC decomposition and deadlock check, and
* the last converged Howard policy, which warm-starts every subsequent
  solve.

:meth:`AnalysisEngine.period` is then a *weight-only* update — map the
response-time vector onto per-edge weights and re-run (warm-started)
policy iteration.  On top of that sits a memo cache keyed on the
response-time vector itself: across the use-cases of a sweep the same
per-application contention state recurs (e.g. whenever the set of
co-mapped contenders coincides), and a recurring vector is answered
without solving at all.

Results match the cold path to well within 1e-9 relative: the engine
feeds the identical edge problem to the identical solver, so the only
possible divergence is Howard terminating on a different tied-optimal
cycle (ratios within the solver's 1e-10 epsilon) after a warm start.
The parity suite (``tests/test_analysis_engine.py``) asserts the bound
for every waiting model and both analysis methods; in practice the
floats come out equal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.backend import ArrayBackend, get_backend
from repro.exceptions import AnalysisError, GraphError
from repro.sdf.analysis import AnalysisMethod, CriticalCycle
from repro.sdf.graph import SDFGraph
from repro.sdf.hsdf import HSDFGraph, to_hsdf
from repro.sdf.mcm import (
    CycleRatioResult,
    IncrementalMCRSolver,
    hsdf_ratio_edges,
)
from repro.sdf.statespace import self_timed_period
from repro.telemetry import get_registry, get_tracer


@dataclass
class EngineStats:
    """Observability counters for benchmarks and tests.

    ``solves`` counts actual MCR/state-space evaluations; ``cache_hits``
    counts period queries answered from the response-time-vector memo
    without solving.
    """

    solves: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def queries(self) -> int:
        return self.cache_hits + self.cache_misses


class AnalysisEngine:
    """Incremental period analysis for one SDF graph.

    Parameters
    ----------
    graph:
        Consistent, live SDF graph (one application).
    method:
        :class:`~repro.sdf.analysis.AnalysisMethod`; the MCR engine is
        incremental, the state-space engine only benefits from the memo
        cache (its structure cannot be pre-factored).
    mcr_algorithm:
        ``"howard"`` (warm-startable, default), ``"lawler"`` or
        ``"brute"``.
    max_cache_entries:
        Bound on the response-time memo; once reached, new vectors are
        still solved but no longer memoized (sweeps repeat early vectors
        far more often than late ones).
    """

    def __init__(
        self,
        graph: SDFGraph,
        method: AnalysisMethod = AnalysisMethod.MCR,
        mcr_algorithm: str = "howard",
        max_cache_entries: int = 65536,
    ) -> None:
        self.graph = graph
        self.method = method
        self.mcr_algorithm = mcr_algorithm
        self.stats = EngineStats()
        self._max_cache_entries = max_cache_entries
        # Telemetry instruments are bound once here; per-solve cost is a
        # single attribute lookup plus a no-op call when disabled.
        registry = get_registry()
        self._tracer = get_tracer()
        self._metric_solves = registry.counter(
            "repro_engine_solves_total",
            "MCR/state-space period solves across all analysis engines",
        )
        self._metric_cache_hits = registry.counter(
            "repro_engine_cache_hits_total",
            "Period queries answered from the response-time memo",
        )
        self._metric_cache_misses = registry.counter(
            "repro_engine_cache_misses_total",
            "Period queries that required a solve",
        )
        self._metric_batch_fallbacks = registry.counter(
            "repro_engine_batch_fallbacks_total",
            "Batched MCR rows whose candidate cycle failed certification",
        )
        self._actor_names: Tuple[str, ...] = graph.actor_names
        self._base_times: Dict[str, float] = graph.execution_times()
        self._cache: Dict[Optional[Tuple[float, ...]], float] = {}
        # Batch-certified periods live in their own memo: a certified
        # candidate ratio can differ from the scalar Howard result in
        # the last bits, and the scalar :meth:`period` path must keep
        # returning byte-stable values even on engines shared with a
        # vectorized sweep (the admission controller's decision logs
        # are byte-compared across backends).
        self._batch_cache: Dict[Tuple[float, ...], float] = {}

        if method is AnalysisMethod.MCR:
            with self._tracer.span(
                "engine.build", graph=graph.name, method=method.value
            ) as span:
                hsdf = to_hsdf(graph)
                vertex_count, edges = hsdf_ratio_edges(hsdf)
                span.set(vertices=vertex_count, edges=len(edges))
                self._hsdf: Optional[HSDFGraph] = hsdf
                self._vertex_keys: Tuple[Tuple[str, int], ...] = tuple(
                    v.key for v in hsdf.vertices
                )
                # Each edge's weight is the execution time of its *source
                # vertex's actor*; remember the actor's position in the
                # cache-key vector per edge so a response vector maps to
                # edge weights by integer indexing, no per-solve dict.
                actor_position = {
                    name: i for i, name in enumerate(self._actor_names)
                }
                self._edge_actor_indices: Tuple[int, ...] = tuple(
                    actor_position[e.source[0]] for e in hsdf.edges
                )
                self._solver: Optional[IncrementalMCRSolver] = (
                    IncrementalMCRSolver(
                        vertex_count, edges, method=mcr_algorithm
                    )
                )
        elif method is AnalysisMethod.STATE_SPACE:
            self._hsdf = None
            self._vertex_keys = ()
            self._edge_actor_indices = ()
            self._solver = None
        else:
            raise AnalysisError(f"unknown analysis method {method!r}")

    # ------------------------------------------------------------------
    @property
    def hsdf(self) -> HSDFGraph:
        """The cached HSDF expansion (MCR engines only)."""
        if self._hsdf is None:
            raise AnalysisError(
                "HSDF expansion is only available for the MCR engine"
            )
        return self._hsdf

    @property
    def last_policy(self) -> Optional[Tuple[int, ...]]:
        """Last converged Howard policy (``None`` before the first solve
        or for non-MCR engines)."""
        return self._solver.policy if self._solver is not None else None

    @property
    def isolation_period(self) -> float:
        """Period with the graph's own execution times (Definition 3)."""
        return self.period()

    # ------------------------------------------------------------------
    def _cache_key(
        self, response_times: Optional[Mapping[str, float]]
    ) -> Optional[Tuple[float, ...]]:
        """Canonical memo key: the full per-actor time vector.

        Actors missing from the mapping keep their base time (matching
        ``period_with_response_times``); unknown extra keys are ignored,
        so semantically equal inputs share one key.
        """
        if not response_times:
            return None
        base = self._base_times
        return tuple(
            response_times.get(name, base[name])
            for name in self._actor_names
        )

    def period(
        self, response_times: Optional[Mapping[str, float]] = None
    ) -> float:
        """Period of the graph under ``response_times`` (weight update).

        Without arguments this is the isolation period; with a mapping it
        is ``period_with_response_times`` — actors absent from the
        mapping keep their original execution time.  Identical
        response-time vectors are answered from the memo cache.
        """
        key = self._cache_key(response_times)
        cached = self._cache.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            self._metric_cache_hits.inc()
            return cached
        self.stats.cache_misses += 1
        self._metric_cache_misses.inc()
        self._validate_key(key)
        if self.method is AnalysisMethod.MCR:
            value = self._solve(key).ratio
        else:
            graph = self.graph
            if key is not None:
                graph = graph.with_execution_times(
                    dict(zip(self._actor_names, key))
                )
            self.stats.solves += 1
            self._metric_solves.inc()
            value = self_timed_period(graph)
        if len(self._cache) < self._max_cache_entries:
            self._cache[key] = value
        return value

    def period_for(
        self,
        time_vectors,
        backend: "Optional[str | ArrayBackend]" = None,
    ) -> list:
        """Periods for a whole batch of per-actor time vectors.

        Array-in/array-out flavour of :meth:`period`: ``time_vectors``
        is a sequence (or 2-D array) of full per-actor execution-time
        vectors in ``graph.actor_names`` order, and the result is the
        list of their periods, in row order, as plain floats.

        Rows already in a response-time memo are answered without
        solving.  With a vectorized backend and a warm-startable MCR
        solver the remaining rows go through
        :meth:`~repro.sdf.mcm.IncrementalMCRSolver.solve_many` —
        candidate cycles certified in batch, scalar warm solves only
        for the stragglers; any other configuration (the pure-Python
        backend, ``lawler``/``brute``, the state-space method) falls
        back to per-row :meth:`period` calls, preserving the scalar
        arithmetic exactly.

        Batch results are memoized separately from scalar ones: a
        certified candidate may differ from the scalar solve in the
        last bits (well inside the 1e-9 parity contract), and the
        scalar :meth:`period` path — shared with the byte-deterministic
        admission/runtime layer — must never serve them.  Batched
        queries *read* the scalar memo (scalar bits are the reference)
        but only ever *write* their own.
        """
        resolved = get_backend(backend)
        if resolved.vectorized:
            try:
                rows = resolved.xp.asarray(  # type: ignore[union-attr]
                    time_vectors, dtype=float
                ).tolist()
            except ValueError:  # ragged input: report lengths below
                rows = [
                    [float(value) for value in row]
                    for row in time_vectors
                ]
        else:
            rows = [
                [float(value) for value in row] for row in time_vectors
            ]
        keys = [tuple(row) for row in rows]
        for key in keys:
            if len(key) != len(self._actor_names):
                raise AnalysisError(
                    f"expected {len(self._actor_names)} times per "
                    f"vector, got {len(key)}"
                )
        use_batch = (
            resolved.vectorized
            and self.method is AnalysisMethod.MCR
            and self.mcr_algorithm == "howard"
        )
        if use_batch:
            # Deduplicate misses (against both memos) while keeping
            # first-seen order: sweeps routinely repeat vectors (same
            # contender set in several use-cases) and one solve should
            # serve all repeats.
            seen: Dict[Tuple[float, ...], None] = {}
            for key in keys:
                if (
                    key not in self._cache
                    and key not in self._batch_cache
                    and key not in seen
                ):
                    seen[key] = None
            misses = list(seen)
            resolved_values: Dict[Tuple[float, ...], float] = {}
            if misses:
                xp = resolved.xp  # type: ignore[union-attr]
                times = xp.asarray(misses, dtype=float)
                if bool(xp.any(times <= 0)):
                    for key in misses:
                        self._validate_key(key)
                weights = times[:, list(self._edge_actor_indices)]
                assert self._solver is not None
                fallbacks_before = self._solver.batch_fallbacks
                with self._tracer.span(
                    "engine.solve_batch",
                    graph=self.graph.name,
                    rows=len(keys),
                    misses=len(misses),
                ) as span:
                    ratios = self._solver.solve_many(weights, xp)
                    span.set(
                        fallbacks=self._solver.batch_fallbacks
                        - fallbacks_before
                    )
                self._metric_batch_fallbacks.inc(
                    self._solver.batch_fallbacks - fallbacks_before
                )
                self.stats.solves += len(misses)
                self._metric_solves.inc(len(misses))
                self.stats.cache_misses += len(misses)
                self._metric_cache_misses.inc(len(misses))
                for key, ratio in zip(misses, ratios):
                    if (
                        len(self._batch_cache)
                        < self._max_cache_entries
                    ):
                        self._batch_cache[key] = ratio
                resolved_values = dict(zip(misses, ratios))
            hit_rows = len(keys) - len(misses)
            self.stats.cache_hits += hit_rows
            if hit_rows:
                self._metric_cache_hits.inc(hit_rows)

            def lookup(key: Tuple[float, ...]) -> float:
                value = self._cache.get(key)
                if value is None:
                    value = self._batch_cache.get(key)
                if value is None:
                    value = resolved_values[key]
                return value

            return [lookup(key) for key in keys]
        # Non-vectorized (or non-warm-startable) configurations run the
        # plain scalar path, scalar memo only — the batch memo is never
        # consulted, so a python-backend run stays byte-pure even on an
        # engine previously used by a vectorized sweep.
        return [
            self.period(dict(zip(self._actor_names, key)))
            for key in keys
        ]

    def throughput(
        self, response_times: Optional[Mapping[str, float]] = None
    ) -> float:
        """``1 / period`` (Definition 3)."""
        return 1.0 / self.period(response_times)

    def critical_cycle(
        self, response_times: Optional[Mapping[str, float]] = None
    ) -> CriticalCycle:
        """Which firings bound the period (MCR engines only)."""
        if self.method is not AnalysisMethod.MCR:
            raise AnalysisError(
                "critical_cycle requires the MCR analysis method"
            )
        key = self._cache_key(response_times)
        self._validate_key(key)
        result = self._solve(key)
        firings = tuple(self._vertex_keys[i] for i in result.cycle)
        return CriticalCycle(ratio=result.ratio, firings=firings)

    def _validate_key(
        self, key: Optional[Tuple[float, ...]]
    ) -> None:
        """Same contract the cold path enforced through
        ``Actor.__post_init__`` when it rebuilt the graph; the MCR
        solver itself would silently accept non-positive weights."""
        if key is None:
            return
        for name, value in zip(self._actor_names, key):
            if value <= 0:
                raise GraphError(
                    f"actor {name!r}: execution time must be "
                    f"positive, got {value!r}"
                )

    def _solve(
        self, key: Optional[Tuple[float, ...]]
    ) -> CycleRatioResult:
        """Run the (warm-started) MCR solver for one time vector."""
        assert self._solver is not None
        self.stats.solves += 1
        self._metric_solves.inc()
        if key is None:
            return self._solver.solve()
        weights = [key[i] for i in self._edge_actor_indices]
        return self._solver.solve(weights)

    # ------------------------------------------------------------------
    def cache_clear(self) -> None:
        """Drop the response-time memos (keeps structure and policy)."""
        self._cache.clear()
        self._batch_cache.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AnalysisEngine({self.graph.name!r}, "
            f"method={self.method.value!r}, "
            f"solves={self.stats.solves}, hits={self.stats.cache_hits})"
        )


def build_engines(
    graphs: Sequence[SDFGraph],
    method: AnalysisMethod = AnalysisMethod.MCR,
    mcr_algorithm: str = "howard",
) -> Dict[str, AnalysisEngine]:
    """One engine per application, keyed by graph name.

    The estimator accepts this mapping via its ``engines`` parameter so
    several estimators (e.g. one per waiting model in a sweep) share a
    single set of expansions, solvers and memo caches.
    """
    return {
        graph.name: AnalysisEngine(
            graph, method=method, mcr_algorithm=mcr_algorithm
        )
        for graph in graphs
    }
