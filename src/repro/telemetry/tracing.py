"""Span-based tracer with thread-local context and a bounded ring buffer.

Usage mirrors the metrics registry: acquire the tracer once, then open
spans around units of work::

    tracer = get_tracer()
    with tracer.span("mcr.solve", gallery="seed7", model="pmd") as span:
        ...
        span.set(iterations=passes)

Design points that keep the hot paths cheap:

* When the tracer is disabled, :meth:`Tracer.span` returns one shared
  :data:`NULL_SPAN` whose ``__enter__``/``__exit__``/``set`` are empty —
  no allocation, no clock read, no string formatting.  Attribute values
  are passed as keyword arguments precisely so callers never pre-format
  f-strings.
* The parent stack and current trace id live in a ``threading.local``;
  spans opened on worker threads nest independently of the event loop.
* Exit removes the span from the context stack by identity rather than a
  blind pop, so interleaved async spans (a request span exiting while the
  batcher span is still open on the same loop thread) cannot corrupt
  parent attribution.
* Finished spans land in a bounded ``deque`` (oldest evicted first) and,
  optionally, in a user-supplied sink callable — the JSON-lines span log
  streams through such a sink.

Trace ids are caller-supplied opaque strings (the service propagates the
client's id through the JSON-lines protocol); spans opened without an
explicit id inherit the innermost enclosing span's id on the same thread.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from repro.telemetry.metrics import telemetry_enabled

__all__ = [
    "NULL_SPAN",
    "Span",
    "SpanRecord",
    "Tracer",
    "get_tracer",
    "set_tracing_enabled",
]


@dataclass(slots=True)
class SpanRecord:
    """One finished span: wall-clock placement plus identity and labels."""

    name: str
    start: float
    duration: float
    span_id: int
    parent_id: Optional[int] = None
    trace_id: Optional[str] = None
    thread: str = ""
    attributes: Dict[str, object] = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + self.duration


class Span:
    """Live span handed out by :meth:`Tracer.span`; a context manager.

    On exit the span *is* its own finished record — it carries the same
    fields as :class:`SpanRecord` and lands in the ring buffer directly,
    so the hot path allocates one object per span, not two.
    """

    __slots__ = (
        "_tracer",
        "name",
        "span_id",
        "parent_id",
        "trace_id",
        "attributes",
        "start",
        "duration",
        "thread",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: Optional[str],
        attributes: Dict[str, object],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = next(tracer._ids)
        self.parent_id: Optional[int] = None
        self.trace_id = trace_id
        self.attributes = attributes
        self.start = 0.0
        self.duration = 0.0
        self.thread = ""

    @property
    def end(self) -> float:
        return self.start + self.duration

    def set(self, **attributes: object) -> None:
        """Attach attributes discovered mid-span (batch size, pass count)."""
        self.attributes.update(attributes)

    def __enter__(self) -> "Span":
        context = self._tracer._context
        stack = getattr(context, "stack", None)
        if stack is None:
            stack = context.stack = []
        if stack:
            parent = stack[-1]
            self.parent_id = parent.span_id
            if self.trace_id is None:
                self.trace_id = parent.trace_id
        elif self.trace_id is None:
            self.trace_id = getattr(context, "trace_id", None)
        stack.append(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self.start
        context = self._tracer._context
        stack = context.stack
        # Identity removal from the tail: async interleaving may exit an
        # inner request span after an outer batch span already closed.
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is self:
                del stack[index]
                break
        # Thread names are stable; resolve once per thread, not per span.
        thread = getattr(context, "thread", None)
        if thread is None:
            thread = context.thread = threading.current_thread().name
        self.duration = duration
        self.thread = thread
        self._tracer._record(self)


class _NullSpan:
    __slots__ = ()

    def set(self, **attributes: object) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


#: Shared disabled span — the only object a disabled tracer ever returns.
NULL_SPAN = _NullSpan()


class _TraceContext:
    """Context manager installing a thread-local current trace id."""

    __slots__ = ("_tracer", "_trace_id", "_previous")

    def __init__(self, tracer: "Tracer", trace_id: Optional[str]) -> None:
        self._tracer = tracer
        self._trace_id = trace_id
        self._previous: Optional[str] = None

    def __enter__(self) -> "_TraceContext":
        context = self._tracer._context
        self._previous = getattr(context, "trace_id", None)
        context.trace_id = self._trace_id
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._context.trace_id = self._previous


class Tracer:
    """Factory for spans; owns the ring buffer of finished records."""

    def __init__(
        self,
        enabled: Optional[bool] = None,
        max_spans: int = 65536,
        sink: Optional[Callable[[SpanRecord], None]] = None,
    ) -> None:
        self.enabled = telemetry_enabled() if enabled is None else enabled
        self._spans: Deque[SpanRecord] = deque(maxlen=max_spans)
        self._context = threading.local()
        self._ids = itertools.count(1)
        self._sink = sink
        self._lock = threading.Lock()

    def span(
        self, name: str, trace_id: Optional[str] = None, **attributes: object
    ):
        """Open a span; returns :data:`NULL_SPAN` while disabled."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, trace_id, attributes)

    def trace(self, trace_id: Optional[str]) -> _TraceContext:
        """Bind a trace id to the current thread for nested spans."""
        return _TraceContext(self, trace_id)

    def current_trace_id(self) -> Optional[str]:
        context = self._context
        stack = getattr(context, "stack", None)
        if stack:
            return stack[-1].trace_id
        return getattr(context, "trace_id", None)

    def record(
        self,
        name: str,
        start: float,
        duration: float,
        trace_id: Optional[str] = None,
        **attributes: object,
    ) -> None:
        """Record an already-measured interval as a finished span (used
        for retroactive spans like per-request queue wait, where the
        region was timed before its trace context was at hand)."""
        if not self.enabled:
            return
        self._record(
            SpanRecord(
                name=name,
                start=start,
                duration=duration,
                span_id=next(self._ids),
                trace_id=trace_id,
                thread=threading.current_thread().name,
                attributes=dict(attributes),
            )
        )

    def _record(self, record: "Span | SpanRecord") -> None:
        with self._lock:
            self._spans.append(record)
        sink = self._sink
        if sink is not None:
            sink(record)

    def set_sink(
        self, sink: Optional[Callable[[SpanRecord], None]]
    ) -> None:
        self._sink = sink

    def spans(self) -> List["Span | SpanRecord"]:
        """Snapshot of the finished-span ring buffer, oldest first.

        Entries are finished :class:`Span` objects (which carry the
        full record field set) or :class:`SpanRecord` instances from
        :meth:`record`; exporters treat them interchangeably."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()


_GLOBAL_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-global tracer used by the library's instrumentation."""
    return _GLOBAL_TRACER


def set_tracing_enabled(enabled: bool) -> None:
    _GLOBAL_TRACER.enabled = enabled
