"""Unified telemetry layer: metrics registry, tracer, and exporters.

One import surface for the three observability primitives used across the
engine, estimator, service, runtime, and DES layers:

* :func:`get_registry` — the process-global :class:`MetricsRegistry`
  (counters, gauges, log-spaced-bucket histograms; Prometheus text
  exposition and JSON snapshot).
* :func:`get_tracer` — the process-global :class:`Tracer` producing
  :class:`SpanRecord` entries with thread-local parent/trace-id context.
* Exporters — Chrome-trace/Perfetto ``trace_event`` JSON, JSON-lines span
  logs, and the ``/metrics`` scrape endpoint.

Everything is stdlib-only and honours ``REPRO_TELEMETRY=0``: disabled
registries hand out shared null instruments and the tracer returns one
shared null span, so instrumented hot loops pay a single no-op call.
:func:`set_enabled` flips both the registry and the tracer at once
(instruments already bound by live objects keep their state; new
acquisitions see the new setting).
"""

from __future__ import annotations

from repro.telemetry.export import (
    JsonLinesSpanSink,
    chrome_trace_events,
    engine_stats_events,
    simulation_trace_events,
    span_to_dict,
    start_metrics_endpoint,
    validate_exposition,
    write_chrome_trace,
    write_span_log,
)
from repro.telemetry.metrics import (
    COUNT_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    log_buckets,
    render_merged,
    snapshot_merged,
    telemetry_enabled,
)
from repro.telemetry.metrics import set_enabled as _set_metrics_enabled
from repro.telemetry.tracing import (
    NULL_SPAN,
    Span,
    SpanRecord,
    Tracer,
    get_tracer,
)
from repro.telemetry.tracing import set_tracing_enabled as _set_tracing_enabled

__all__ = [
    "COUNT_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonLinesSpanSink",
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
    "SpanRecord",
    "Tracer",
    "chrome_trace_events",
    "engine_stats_events",
    "get_registry",
    "get_tracer",
    "log_buckets",
    "render_merged",
    "set_enabled",
    "simulation_trace_events",
    "snapshot_merged",
    "span_to_dict",
    "start_metrics_endpoint",
    "telemetry_enabled",
    "validate_exposition",
    "write_chrome_trace",
    "write_span_log",
]


def set_enabled(enabled: bool) -> None:
    """Enable or disable the global registry *and* tracer together."""
    _set_metrics_enabled(enabled)
    _set_tracing_enabled(enabled)
