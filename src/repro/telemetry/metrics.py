"""Zero-dependency metrics registry: counters, gauges, histograms.

The registry is deliberately small and allocation-light.  Three rules keep
the hot paths honest:

* Instruments are *acquired once* (at object construction time) and then
  mutated with plain attribute arithmetic — acquisition takes a lock,
  mutation never does.
* When telemetry is disabled (``REPRO_TELEMETRY=0``) acquisition returns a
  shared null instrument whose mutators are empty methods, so instrumented
  code pays one attribute lookup and one no-op call per event and never
  formats a string.
* Counters are cumulative floats mutated from one thread at a time by
  convention (each instrument belongs to the component that created it);
  readers tolerate torn reads because CPython float stores are atomic.

Histograms use *fixed* bucket boundaries chosen at registration — the
default time buckets are log-spaced (four per decade from 1 microsecond to
100 seconds) so one layout serves queue waits, solve times, and end-to-end
request latencies alike, and merged snapshots never need bucket
realignment.

Exposition comes in two flavours: :meth:`MetricsRegistry.render_prometheus`
emits the Prometheus text format (``# HELP`` / ``# TYPE`` / samples with
``{label="value"}`` pairs and cumulative ``_bucket`` rows), and
:meth:`MetricsRegistry.snapshot` returns a JSON-serialisable dict for
embedding in BENCH points and service responses.
"""

from __future__ import annotations

import math
import os
import re
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.exceptions import TelemetryError

__all__ = [
    "COUNT_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "get_registry",
    "log_buckets",
    "render_merged",
    "set_enabled",
    "snapshot_merged",
    "telemetry_enabled",
]

_FALSE_VALUES = frozenset({"0", "false", "off", "no"})


def telemetry_enabled() -> bool:
    """Read the ``REPRO_TELEMETRY`` switch (unset means enabled)."""
    value = os.environ.get("REPRO_TELEMETRY")
    if value is None or not value.strip():
        return True
    return value.strip().lower() not in _FALSE_VALUES


def log_buckets(
    minimum: float, maximum: float, per_decade: int = 4
) -> Tuple[float, ...]:
    """Fixed log-spaced bucket bounds: ``10**(k/per_decade)`` covering
    ``[minimum, maximum]``.  Deterministic for a given range, so two
    histograms built from the same spec always merge bucket-for-bucket."""
    if minimum <= 0 or maximum <= minimum or per_decade < 1:
        raise TelemetryError(
            "log_buckets needs 0 < minimum < maximum and per_decade >= 1"
        )
    first = math.floor(round(math.log10(minimum) * per_decade, 9))
    last = math.ceil(round(math.log10(maximum) * per_decade, 9))
    return tuple(round(10.0 ** (k / per_decade), 12) for k in range(first, last + 1))


#: Four-per-decade bounds from 1 microsecond to 100 seconds — one layout
#: for queue waits, MCR solves, and end-to-end request latencies.
DEFAULT_TIME_BUCKETS = log_buckets(1e-6, 100.0, per_decade=4)

#: Powers of two up to 4096 — batch sizes, fan-outs, active-row counts.
COUNT_BUCKETS = tuple(float(1 << k) for k in range(13))


class Counter:
    """Monotonically increasing cumulative value."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise TelemetryError("counters only go up; use a gauge")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Value that can go up and down (queue depths, high-water marks)."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = value

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    def set_max(self, value: float) -> None:
        if value > self._value:
            self._value = value

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bound histogram with cumulative-count exposition.

    ``observe`` is a linear scan over the bound tuple — bucket counts are
    small (a few dozen) and the scan is branch-predictable, which beats
    ``bisect`` call overhead at this size.
    """

    __slots__ = ("_bounds", "_counts", "_sum", "_count", "_min", "_max")

    def __init__(self, bounds: Sequence[float]) -> None:
        cleaned = tuple(float(b) for b in bounds)
        if not cleaned or any(
            b <= a for a, b in zip(cleaned, cleaned[1:])
        ):
            raise TelemetryError("histogram bounds must be strictly increasing")
        self._bounds = cleaned
        self._counts = [0] * (len(cleaned) + 1)  # trailing +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        index = len(self._bounds)
        for i, bound in enumerate(self._bounds):
            if value <= bound:
                index = i
                break
        self._counts[index] += 1
        self._sum += value
        self._count += 1
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def quantile(self, fraction: float) -> float:
        """Nearest-rank quantile estimated from bucket bounds.

        Returns the upper bound of the bucket holding the target rank,
        clamped to the observed min/max so degenerate distributions (all
        samples in one bucket) stay truthful.
        """
        if not 0.0 <= fraction <= 1.0:
            raise TelemetryError("quantile fraction must be within [0, 1]")
        if not self._count:
            return 0.0
        rank = max(1, math.ceil(fraction * self._count))
        seen = 0
        for i, bucket_count in enumerate(self._counts):
            seen += bucket_count
            if seen >= rank:
                estimate = (
                    self._bounds[i] if i < len(self._bounds) else self._max
                )
                return min(max(estimate, self._min), self._max)
        return self._max

    def bucket_counts(self) -> Dict[str, int]:
        """Cumulative counts keyed by upper bound (Prometheus ``le``)."""
        cumulative = 0
        out: Dict[str, int] = {}
        for bound, bucket_count in zip(self._bounds, self._counts):
            cumulative += bucket_count
            out[format_float(bound)] = cumulative
        out["+Inf"] = self._count
        return out


class _NullCounter:
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set_max(self, value: float) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass

    @property
    def count(self) -> int:
        return 0

    @property
    def sum(self) -> float:
        return 0.0

    @property
    def mean(self) -> float:
        return 0.0

    def quantile(self, fraction: float) -> float:
        return 0.0

    def bucket_counts(self) -> Dict[str, int]:
        return {"+Inf": 0}


#: Shared no-op instruments handed out while telemetry is disabled.  They
#: are never stored in a registry, so re-enabling telemetry and acquiring
#: the same metric name yields a live instrument.
NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

LabelKey = Tuple[Tuple[str, str], ...]


def format_float(value: float) -> str:
    """Render a sample value the way Prometheus expects: integers bare,
    floats via ``repr`` (shortest round-trip), infinities as ``+Inf``."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class _Family:
    """One metric name: shared kind, help text, buckets, labelled children."""

    __slots__ = ("kind", "name", "help", "bounds", "label_names", "children")

    def __init__(
        self,
        kind: str,
        name: str,
        help_text: str,
        bounds: Optional[Tuple[float, ...]],
        label_names: Tuple[str, ...],
    ) -> None:
        self.kind = kind
        self.name = name
        self.help = help_text
        self.bounds = bounds
        self.label_names = label_names
        self.children: Dict[
            LabelKey, Union[Counter, Gauge, Histogram]
        ] = {}


class MetricsRegistry:
    """Instrument factory plus exposition.

    ``always=True`` instruments are created live even while telemetry is
    disabled — the service layer uses this for the counters behind the
    byte-compatible ``stats`` verb, which must keep counting regardless of
    the observability switch.
    """

    def __init__(self, enabled: Optional[bool] = None) -> None:
        self.enabled = telemetry_enabled() if enabled is None else enabled
        self._families: Dict[str, _Family] = {}
        self._lock = threading.Lock()

    # -- acquisition ---------------------------------------------------

    def counter(
        self, name: str, help: str = "", always: bool = False, **labels: object
    ) -> Counter:
        return self._instrument("counter", name, help, None, always, labels)

    def gauge(
        self, name: str, help: str = "", always: bool = False, **labels: object
    ) -> Gauge:
        return self._instrument("gauge", name, help, None, always, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
        always: bool = False,
        **labels: object,
    ) -> Histogram:
        bounds = tuple(buckets) if buckets is not None else DEFAULT_TIME_BUCKETS
        return self._instrument("histogram", name, help, bounds, always, labels)

    def _instrument(self, kind, name, help_text, bounds, always, labels):
        if not (self.enabled or always):
            if kind == "counter":
                return NULL_COUNTER
            if kind == "gauge":
                return NULL_GAUGE
            return NULL_HISTOGRAM
        if not _METRIC_NAME.match(name):
            raise TelemetryError(f"invalid metric name {name!r}")
        label_names = tuple(sorted(labels))
        for label in label_names:
            if not _LABEL_NAME.match(label):
                raise TelemetryError(f"invalid label name {label!r}")
        key: LabelKey = tuple((k, str(labels[k])) for k in label_names)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(kind, name, help_text, bounds, label_names)
                self._families[name] = family
            else:
                if family.kind != kind:
                    raise TelemetryError(
                        f"metric {name!r} already registered as "
                        f"{family.kind}, not {kind}"
                    )
                if family.label_names != label_names:
                    raise TelemetryError(
                        f"metric {name!r} registered with labels "
                        f"{family.label_names}, got {label_names}"
                    )
                if kind == "histogram" and family.bounds != bounds:
                    raise TelemetryError(
                        f"histogram {name!r} registered with different buckets"
                    )
            child = family.children.get(key)
            if child is None:
                if kind == "counter":
                    child = Counter()
                elif kind == "gauge":
                    child = Gauge()
                else:
                    child = Histogram(bounds)
                family.children[key] = child
            return child

    # -- reading -------------------------------------------------------

    def value(self, name: str, **labels: object) -> Optional[float]:
        """Current value of a counter/gauge child, ``None`` if absent."""
        family = self._families.get(name)
        if family is None:
            return None
        key: LabelKey = tuple(
            (k, str(labels[k])) for k in sorted(labels)
        )
        child = family.children.get(key)
        if child is None or isinstance(child, Histogram):
            return None
        return child.value

    def label_values(self, name: str, label: str) -> List[str]:
        """Distinct values one label takes across a family's children."""
        family = self._families.get(name)
        if family is None:
            return []
        seen: List[str] = []
        for key in family.children:
            for k, v in key:
                if k == label and v not in seen:
                    seen.append(v)
        return sorted(seen)

    def reset(self) -> None:
        """Drop every family (tests and benchmark isolation)."""
        with self._lock:
            self._families.clear()

    # -- exposition ----------------------------------------------------

    def render_prometheus(self) -> str:
        return "".join(self._render_lines(frozenset()))

    def _render_lines(self, skip: Iterable[str]) -> List[str]:
        skip = frozenset(skip)
        lines: List[str] = []
        with self._lock:
            for name in sorted(self._families):
                if name in skip:
                    continue
                family = self._families[name]
                lines.append(f"# HELP {name} {family.help}\n")
                lines.append(f"# TYPE {name} {family.kind}\n")
                for key in sorted(family.children):
                    child = family.children[key]
                    if isinstance(child, Histogram):
                        for bound, cumulative in child.bucket_counts().items():
                            lines.append(
                                f"{name}_bucket"
                                f"{_label_text(key + (('le', bound),))} "
                                f"{cumulative}\n"
                            )
                        lines.append(
                            f"{name}_sum{_label_text(key)} "
                            f"{format_float(child.sum)}\n"
                        )
                        lines.append(
                            f"{name}_count{_label_text(key)} {child.count}\n"
                        )
                    else:
                        lines.append(
                            f"{name}{_label_text(key)} "
                            f"{format_float(child.value)}\n"
                        )
        return lines

    def snapshot(self) -> Dict[str, object]:
        """JSON-serialisable view: one entry per family, one sample per
        label set (histograms carry count/sum/mean plus cumulative
        buckets)."""
        out: Dict[str, object] = {}
        with self._lock:
            for name in sorted(self._families):
                family = self._families[name]
                samples: List[Dict[str, object]] = []
                for key in sorted(family.children):
                    child = family.children[key]
                    sample: Dict[str, object] = {"labels": dict(key)}
                    if isinstance(child, Histogram):
                        sample["count"] = child.count
                        sample["sum"] = child.sum
                        sample["mean"] = child.mean
                        sample["buckets"] = child.bucket_counts()
                    else:
                        sample["value"] = child.value
                    samples.append(sample)
                out[name] = {
                    "type": family.kind,
                    "help": family.help,
                    "samples": samples,
                }
        return out


def _label_text(key: LabelKey) -> str:
    if not key:
        return ""
    body = ",".join(
        f'{k}="{_escape_label(v)}"' for k, v in key
    )
    return "{" + body + "}"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def render_merged(*registries: MetricsRegistry) -> str:
    """Concatenate expositions; earlier registries win on name clashes so
    the output never repeats a metric family."""
    seen: set = set()
    parts: List[str] = []
    for registry in registries:
        parts.extend(registry._render_lines(seen))
        with registry._lock:
            seen.update(registry._families)
    return "".join(parts)


def snapshot_merged(*registries: MetricsRegistry) -> Dict[str, object]:
    """Merge JSON snapshots with the same earlier-wins rule."""
    merged: Dict[str, object] = {}
    for registry in registries:
        for name, family in registry.snapshot().items():
            merged.setdefault(name, family)
    return dict(sorted(merged.items()))


_GLOBAL_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry shared by the library's hot paths."""
    return _GLOBAL_REGISTRY


def set_enabled(enabled: bool) -> None:
    """Toggle the global registry (affects instruments acquired *after*
    the call — components bind instruments at construction time)."""
    _GLOBAL_REGISTRY.enabled = enabled
