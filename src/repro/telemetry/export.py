"""Telemetry exporters: Chrome-trace JSON, span logs, scrape endpoint.

Three output formats:

* :func:`write_chrome_trace` — the Chrome ``trace_event`` JSON format
  (``chrome://tracing`` / https://ui.perfetto.dev).  Service spans render
  as ``ph:"X"`` complete events grouped by thread; DES busy intervals
  (from :class:`repro.simulation.trace.TraceEntry` firing records) and
  per-phase engine timings render as separate process tracks, so one file
  shows batcher activity and simulator activity side by side.  Wall-clock
  spans use microseconds since the earliest span; simulation tracks are in
  *simulated* time units (one unit = one microsecond on the timeline) —
  they share the file, not the clock, and are labelled accordingly.
* :func:`write_span_log` / :class:`JsonLinesSpanSink` — one JSON object
  per finished span, either batched at shutdown or streamed live through
  a tracer sink.
* :func:`start_metrics_endpoint` — a deliberately tiny asyncio HTTP
  responder serving the Prometheus exposition on ``GET /metrics`` (and
  ``/``), enough for ``curl``, Prometheus, or the CI scrape step without
  pulling in an HTTP framework.

:func:`validate_exposition` is the schema check CI runs against scraped
output; it accepts exactly the grammar :meth:`MetricsRegistry
.render_prometheus` emits.
"""

from __future__ import annotations

import asyncio
import json
import re
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import TelemetryError
from repro.telemetry.tracing import SpanRecord

__all__ = [
    "JsonLinesSpanSink",
    "chrome_trace_events",
    "engine_stats_events",
    "simulation_trace_events",
    "span_to_dict",
    "start_metrics_endpoint",
    "validate_exposition",
    "write_chrome_trace",
    "write_span_log",
]

#: Fixed process ids for the timeline tracks.
SERVICE_PID = 1
SIMULATION_PID = 2
ENGINE_PID = 3


def span_to_dict(span: SpanRecord) -> Dict[str, object]:
    """JSON-serialisable form of one finished span."""
    out: Dict[str, object] = {
        "name": span.name,
        "start": span.start,
        "duration": span.duration,
        "span_id": span.span_id,
        "thread": span.thread,
    }
    if span.parent_id is not None:
        out["parent_id"] = span.parent_id
    if span.trace_id is not None:
        out["trace"] = span.trace_id
    if span.attributes:
        out["attributes"] = _plain_attributes(span.attributes)
    return out


def _plain_attributes(attributes: Mapping[str, object]) -> Dict[str, object]:
    plain: Dict[str, object] = {}
    for key, value in attributes.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            plain[key] = value
        elif isinstance(value, (list, tuple)):
            plain[key] = [str(item) for item in value]
        else:
            plain[key] = str(value)
    return plain


def write_span_log(path: object, spans: Iterable[SpanRecord]) -> int:
    """Write spans as JSON lines; returns the number written."""
    count = 0
    with Path(str(path)).open("w", encoding="utf-8") as handle:
        for span in spans:
            handle.write(json.dumps(span_to_dict(span), sort_keys=True))
            handle.write("\n")
            count += 1
    return count


class JsonLinesSpanSink:
    """Tracer sink streaming each finished span to a JSON-lines file."""

    def __init__(self, path: object) -> None:
        self._handle = Path(str(path)).open("w", encoding="utf-8")

    def __call__(self, span: SpanRecord) -> None:
        self._handle.write(json.dumps(span_to_dict(span), sort_keys=True))
        self._handle.write("\n")

    def close(self) -> None:
        self._handle.close()


# -- Chrome trace_event ------------------------------------------------


def chrome_trace_events(
    spans: Sequence[SpanRecord],
    pid: int = SERVICE_PID,
    process_name: str = "repro service",
) -> List[Dict[str, object]]:
    """Complete (``ph:"X"``) events for wall-clock spans, one Chrome
    thread track per originating thread, timestamps relative to the
    earliest span."""
    if not spans:
        return []
    base = min(span.start for span in spans)
    events: List[Dict[str, object]] = [
        _metadata(pid, 0, "process_name", name=process_name)
    ]
    thread_ids: Dict[str, int] = {}
    for span in spans:
        tid = thread_ids.get(span.thread)
        if tid is None:
            tid = len(thread_ids) + 1
            thread_ids[span.thread] = tid
            events.append(
                _metadata(pid, tid, "thread_name", name=span.thread)
            )
        args = _plain_attributes(span.attributes)
        if span.trace_id is not None:
            args["trace"] = span.trace_id
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "ts": (span.start - base) * 1e6,
                "dur": span.duration * 1e6,
                "pid": pid,
                "tid": tid,
                "cat": span.name.partition(".")[0],
                "args": args,
            }
        )
    return events


def simulation_trace_events(
    trace: Sequence[object],
    pid: int = SIMULATION_PID,
    process_name: str = "DES (simulated time)",
) -> List[Dict[str, object]]:
    """Busy intervals from DES firing records (``TraceEntry``) as one
    Chrome thread track per processor.  Timestamps are simulated time
    units rendered as microseconds."""
    if not trace:
        return []
    events: List[Dict[str, object]] = [
        _metadata(pid, 0, "process_name", name=process_name)
    ]
    processor_ids: Dict[str, int] = {}
    for entry in trace:
        processor = str(entry.processor)
        tid = processor_ids.get(processor)
        if tid is None:
            tid = len(processor_ids) + 1
            processor_ids[processor] = tid
            events.append(
                _metadata(pid, tid, "thread_name", name=processor)
            )
        events.append(
            {
                "name": f"{entry.application}.{entry.actor}",
                "ph": "X",
                "ts": float(entry.start) * 1e6,
                "dur": float(entry.end - entry.start) * 1e6,
                "pid": pid,
                "tid": tid,
                "cat": "des",
                "args": {"application": entry.application},
            }
        )
    return events


def engine_stats_events(
    stats_by_flavour: Mapping[str, object],
    pid: int = ENGINE_PID,
    process_name: str = "DES engine phases",
) -> List[Dict[str, object]]:
    """Sequential per-phase wall-clock events from ``EngineStats``
    (setup / step / collect), one thread track per flavour."""
    if not stats_by_flavour:
        return []
    events: List[Dict[str, object]] = [
        _metadata(pid, 0, "process_name", name=process_name)
    ]
    for tid, (flavour, stats) in enumerate(
        sorted(stats_by_flavour.items()), start=1
    ):
        events.append(_metadata(pid, tid, "thread_name", name=flavour))
        cursor = 0.0
        for phase, seconds in stats.phase_seconds.items():
            events.append(
                {
                    "name": phase,
                    "ph": "X",
                    "ts": cursor * 1e6,
                    "dur": seconds * 1e6,
                    "pid": pid,
                    "tid": tid,
                    "cat": "engine",
                    "args": {
                        "flavour": flavour,
                        "events_dispatched": stats.events_dispatched,
                    },
                }
            )
            cursor += seconds
    return events


def _metadata(pid: int, tid: int, event: str, **args: object) -> Dict[str, object]:
    return {"name": event, "ph": "M", "pid": pid, "tid": tid, "args": dict(args)}


def write_chrome_trace(
    path: object,
    spans: Sequence[SpanRecord] = (),
    simulation_trace: Sequence[object] = (),
    engine_stats: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """Assemble all tracks into one ``trace_event`` document and write it.

    Returns the document (callers embed it in reports or assert on it in
    tests without re-reading the file)."""
    events = chrome_trace_events(spans)
    events.extend(simulation_trace_events(simulation_trace))
    if engine_stats:
        events.extend(engine_stats_events(engine_stats))
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.telemetry"},
    }
    Path(str(path)).write_text(
        json.dumps(document, sort_keys=True), encoding="utf-8"
    )
    return document


# -- exposition validation --------------------------------------------

_HELP_LINE = re.compile(r"^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*$")
_TYPE_LINE = re.compile(
    r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$"
)
_SAMPLE_LINE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"
    r" (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|[+-]Inf|NaN)$"
)


def validate_exposition(text: str) -> int:
    """Validate Prometheus-text output; returns the number of samples.

    Checks the line grammar, that every sample belongs to a declared
    ``# TYPE`` family, and that histogram families expose the mandatory
    ``_bucket``/``_sum``/``_count`` series.  Raises
    :class:`~repro.exceptions.TelemetryError` on the first violation.
    """
    declared: Dict[str, str] = {}
    samples = 0
    seen_names: List[str] = []
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            if not _HELP_LINE.match(line):
                raise TelemetryError(f"malformed HELP line {number}: {line!r}")
            continue
        if line.startswith("# TYPE "):
            match = _TYPE_LINE.match(line)
            if not match:
                raise TelemetryError(f"malformed TYPE line {number}: {line!r}")
            declared[match.group(1)] = match.group(2)
            continue
        if line.startswith("#"):
            raise TelemetryError(f"unknown comment line {number}: {line!r}")
        match = _SAMPLE_LINE.match(line)
        if not match:
            raise TelemetryError(f"malformed sample line {number}: {line!r}")
        name = match.group(1)
        family = _family_name(name, declared)
        if family is None:
            raise TelemetryError(
                f"sample {name!r} on line {number} has no # TYPE declaration"
            )
        seen_names.append(name)
        samples += 1
    for family, kind in declared.items():
        if kind == "histogram":
            for suffix in ("_bucket", "_sum", "_count"):
                if family + suffix not in seen_names:
                    raise TelemetryError(
                        f"histogram {family!r} is missing {family + suffix}"
                    )
    return samples


def _family_name(sample: str, declared: Mapping[str, str]) -> Optional[str]:
    if sample in declared:
        return sample
    for suffix in ("_bucket", "_sum", "_count"):
        if sample.endswith(suffix):
            family = sample[: -len(suffix)]
            if declared.get(family) == "histogram":
                return family
    return None


# -- scrape endpoint ---------------------------------------------------


async def start_metrics_endpoint(
    render,
    host: str = "127.0.0.1",
    port: int = 0,
) -> Tuple[asyncio.AbstractServer, Tuple[str, int]]:
    """Serve ``render()`` (a callable returning exposition text) over a
    minimal HTTP/1.0 responder.  Returns the asyncio server and its bound
    ``(host, port)`` — pass ``port=0`` to let the OS pick."""

    async def handle(reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        try:
            request_line = await reader.readline()
            while True:
                header = await reader.readline()
                if not header or header in (b"\r\n", b"\n"):
                    break
            parts = request_line.decode("latin-1", "replace").split()
            method = parts[0] if parts else ""
            path = parts[1] if len(parts) > 1 else ""
            if method not in ("GET", "HEAD") or path.split("?")[0] not in (
                "/metrics",
                "/",
            ):
                body = b"not found\n"
                status = "404 Not Found"
                content_type = "text/plain; charset=utf-8"
            else:
                body = render().encode("utf-8")
                status = "200 OK"
                content_type = "text/plain; version=0.0.4; charset=utf-8"
            head = (
                f"HTTP/1.0 {status}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("latin-1")
            writer.write(head if method == "HEAD" else head + body)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()

    server = await asyncio.start_server(handle, host=host, port=port)
    bound = server.sockets[0].getsockname()[:2]
    return server, (bound[0], bound[1])
