"""repro — probabilistic resource-contention performance estimation.

A from-scratch reproduction of *"A Probabilistic Approach to Model
Resource Contention for Performance Estimation of Multi-featured Media
Devices"* (Kumar, Mesman, Corporaal, Theelen, Ha — DAC 2007).

Quick start::

    from repro import (
        GraphBuilder, estimate_use_case, simulate, index_mapping
    )

    app_a = (GraphBuilder("A")
             .actor("a0", 100).actor("a1", 50).actor("a2", 100)
             .channel("a0", "a1", production=2, consumption=1)
             .channel("a1", "a2", production=1, consumption=2)
             .channel("a2", "a0", initial_tokens=1)
             .build())
    # ... build app_b, then:
    estimate = estimate_use_case([app_a, app_b],
                                 waiting_model="second_order")
    reference = simulate([app_a, app_b])

Subpackages
-----------
``repro.sdf``
    SDF graphs, repetition vectors, HSDF expansion, period analysis.
``repro.analysis_engine``
    Incremental per-application analysis engine: cached HSDF expansion,
    warm-started MCR, response-time memoization (the sweep hot path).
``repro.generation``
    Random benchmark graphs and the hand-built gallery.
``repro.platform``
    Processors, mappings, use-cases.
``repro.simulation``
    Discrete-event reference simulator (non-preemptive FCFS).
``repro.core``
    The paper's probabilistic contention analysis (Eq. 1-9, Fig. 4).
``repro.wcrt``
    Worst-case response-time baselines ([3], [6]).
``repro.admission``
    Run-time admission control on the composability algebra.
``repro.runtime``
    The event-driven resource manager: scenario traces, quality
    ladders, QoS policies (reject / evict / downgrade), runtime logs,
    and the parallel store-backed sweep service.
``repro.search``
    Contention-aware placement: candidate spaces over mappings,
    arbitration weights and priorities, batched candidate evaluation,
    seeded search strategies, and the byte-deterministic
    ``PlacementResult`` behind ``repro place`` and the served
    ``place`` verb.
``repro.experiments``
    Reproduction of every evaluation artefact (Table 1, Figures 5-6,
    timing, runtime throughput).
``repro.backend``
    Pluggable array backends (NumPy vectorized / pure-Python scalar)
    behind the estimation hot paths; select per estimator, via
    ``repro sweep --backend`` or the ``REPRO_BACKEND`` environment
    variable.
"""

from repro.admission import AdmissionController, AdmissionDecision
from repro.backend import ArrayBackend, get_backend
from repro.analysis_engine import AnalysisEngine, EngineStats, build_engines
from repro.core import (
    ActorProfile,
    Composite,
    EstimationResult,
    ProbabilisticEstimator,
    build_profiles,
    compose,
    compose_all,
    decompose,
    estimate_use_case,
    make_waiting_model,
)
from repro.exceptions import (
    AdmissionError,
    AnalysisError,
    DeadlockError,
    ExperimentError,
    GraphError,
    InconsistentGraphError,
    MappingError,
    ReproError,
    ResourceManagerError,
)
from repro.generation import (
    GeneratorConfig,
    WorkloadConfig,
    WorkloadGenerator,
    random_sdf_graph,
)
from repro.platform import (
    Mapping,
    Platform,
    Processor,
    UseCase,
    all_use_cases,
    index_mapping,
    use_cases_of_size,
)
from repro.sdf import (
    Actor,
    AnalysisMethod,
    Channel,
    GraphBuilder,
    SDFGraph,
    period,
    repetition_vector,
    throughput,
)
from repro.runtime import (
    AppSpec,
    QualityLadder,
    QualityLevel,
    ResourceManager,
    RuntimeLog,
    ScenarioEvent,
    SweepService,
    Trace,
    gallery_from_graphs,
)
from repro.simulation import SimulationConfig, Simulator, simulate

__version__ = "1.0.0"

__all__ = [
    "Actor",
    "ActorProfile",
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionError",
    "AnalysisEngine",
    "AnalysisError",
    "AnalysisMethod",
    "AppSpec",
    "ArrayBackend",
    "Channel",
    "Composite",
    "DeadlockError",
    "EngineStats",
    "EstimationResult",
    "ExperimentError",
    "GeneratorConfig",
    "GraphBuilder",
    "GraphError",
    "InconsistentGraphError",
    "Mapping",
    "MappingError",
    "Platform",
    "ProbabilisticEstimator",
    "Processor",
    "QualityLadder",
    "QualityLevel",
    "ReproError",
    "ResourceManager",
    "ResourceManagerError",
    "RuntimeLog",
    "SDFGraph",
    "ScenarioEvent",
    "SimulationConfig",
    "Simulator",
    "SweepService",
    "Trace",
    "UseCase",
    "WorkloadConfig",
    "WorkloadGenerator",
    "all_use_cases",
    "build_engines",
    "build_profiles",
    "compose",
    "compose_all",
    "decompose",
    "estimate_use_case",
    "gallery_from_graphs",
    "get_backend",
    "index_mapping",
    "period",
    "random_sdf_graph",
    "repetition_vector",
    "simulate",
    "throughput",
    "use_cases_of_size",
]
