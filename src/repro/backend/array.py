"""Pluggable array backends for the estimation hot paths.

The estimation kernels — waiting-time formulas, blocking profiles,
``DiscreteTime`` moments, and the batched MCR verification — come in two
flavours:

* **scalar** — today's pure-Python implementations, exact to the last
  bit and dependency-free;
* **vectorized** — NumPy implementations that batch whole use-cases
  (arrays shaped ``(use_cases, actors)``) instead of looping per
  ``(actor, resource)`` pair.

An :class:`ArrayBackend` names which flavour a component should use.
The **python** backend deliberately does *not* re-implement NumPy in
pure Python: its contract is to preserve today's exact scalar
arithmetic, so every batched entry point dispatches on
:attr:`ArrayBackend.vectorized` and runs the established scalar loops
when it is ``False``.  The **numpy** backend exposes the module handle
(:attr:`NumpyBackend.xp`) to the vectorized kernels.

Selection (strongest wins):

1. an explicit ``backend=`` argument (an :class:`ArrayBackend` or one of
   the names ``"auto"``, ``"numpy"``, ``"python"``);
2. the ``REPRO_BACKEND`` environment variable (same names);
3. ``auto`` — NumPy when importable, the Python fallback otherwise.

Every layer that estimates — :class:`~repro.core.estimator.
ProbabilisticEstimator`, :class:`~repro.analysis_engine.AnalysisEngine.
period_for`, the :class:`~repro.runtime.service.SweepService` workers and
``repro sweep --backend`` — accepts the same names, so one flag selects
the flavour end to end.  The two backends agree to well within 1e-9
relative on every period and waiting time (asserted by
``tests/test_backend_parity.py`` and the golden fixtures).
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Sequence, Tuple

from repro.exceptions import AnalysisError

#: Environment variable consulted when no explicit backend is given.
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: Names accepted by :func:`get_backend` (and ``REPRO_BACKEND``).
BACKEND_NAMES: Tuple[str, ...] = ("auto", "numpy", "python")


class ArrayBackend:
    """Interface: the array flavour of the estimation kernels.

    Attributes
    ----------
    name:
        ``"numpy"`` or ``"python"``.
    vectorized:
        Whether batched kernels should run (``True`` only for NumPy).
    """

    name: str = "abstract"
    vectorized: bool = False

    # The scalar reductions below are the only operations the *shared*
    # code paths (e.g. DiscreteTime moments) need; the heavy batched
    # kernels are NumPy-only and receive the module handle instead.
    def dot(
        self, values: Sequence[float], weights: Sequence[float]
    ) -> float:
        """``sum(v * w)`` over two equal-length sequences."""
        raise NotImplementedError

    def weighted_second_moment(
        self, values: Sequence[float], weights: Sequence[float]
    ) -> float:
        """``sum(v * v * w)`` over two equal-length sequences."""
        raise NotImplementedError

    def sum(self, values: Sequence[float]) -> float:
        """Sum of a sequence."""
        raise NotImplementedError

    def scale(
        self, values: Sequence[float], factor: float
    ) -> Tuple[float, ...]:
        """``tuple(v * factor for v in values)``."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class PythonBackend(ArrayBackend):
    """Dependency-free fallback preserving today's exact arithmetic.

    All reductions run the same left-to-right Python loops the scalar
    implementations always used, so enabling the backend layer changes
    no float anywhere.
    """

    name = "python"
    vectorized = False

    def dot(
        self, values: Sequence[float], weights: Sequence[float]
    ) -> float:
        return sum(v * w for v, w in zip(values, weights))

    def weighted_second_moment(
        self, values: Sequence[float], weights: Sequence[float]
    ) -> float:
        return sum(v * v * w for v, w in zip(values, weights))

    def sum(self, values: Sequence[float]) -> float:
        return sum(values)

    def scale(
        self, values: Sequence[float], factor: float
    ) -> Tuple[float, ...]:
        return tuple(v * factor for v in values)


class NumpyBackend(ArrayBackend):
    """NumPy-vectorized flavour; carries the module handle for kernels."""

    name = "numpy"
    vectorized = True

    def __init__(self) -> None:
        import numpy

        self.xp = numpy

    def dot(
        self, values: Sequence[float], weights: Sequence[float]
    ) -> float:
        return float(
            self.xp.dot(
                self.xp.asarray(values, dtype=float),
                self.xp.asarray(weights, dtype=float),
            )
        )

    def weighted_second_moment(
        self, values: Sequence[float], weights: Sequence[float]
    ) -> float:
        v = self.xp.asarray(values, dtype=float)
        w = self.xp.asarray(weights, dtype=float)
        return float(self.xp.dot(v * v, w))

    def sum(self, values: Sequence[float]) -> float:
        return float(self.xp.sum(self.xp.asarray(values, dtype=float)))

    def scale(
        self, values: Sequence[float], factor: float
    ) -> Tuple[float, ...]:
        return tuple(
            float(x)
            for x in self.xp.asarray(values, dtype=float) * factor
        )


def numpy_available() -> bool:
    """Whether the numpy backend can be constructed."""
    try:
        import numpy  # noqa: F401
    except ImportError:  # pragma: no cover - depends on environment
        return False
    return True


_INSTANCES: Dict[str, ArrayBackend] = {}


def get_backend(
    backend: "Optional[str | ArrayBackend]" = None,
) -> ArrayBackend:
    """Resolve a backend selection to an :class:`ArrayBackend` instance.

    ``backend`` may be an instance (returned as-is), one of the names in
    :data:`BACKEND_NAMES`, or ``None`` — in which case the
    ``REPRO_BACKEND`` environment variable decides, defaulting to
    ``auto``.  ``numpy`` raises :class:`~repro.exceptions.AnalysisError`
    when NumPy is not importable; ``auto`` silently falls back to the
    Python backend instead.
    """
    if isinstance(backend, ArrayBackend):
        return backend
    name = backend
    if name is None:
        name = os.environ.get(BACKEND_ENV_VAR, "") or "auto"
    name = name.strip().lower()
    if name not in BACKEND_NAMES:
        raise AnalysisError(
            f"unknown array backend {backend!r}; choose from "
            f"{', '.join(BACKEND_NAMES)}"
        )
    if name == "auto":
        name = "numpy" if numpy_available() else "python"
    cached = _INSTANCES.get(name)
    if cached is not None:
        return cached
    if name == "numpy":
        if not numpy_available():
            raise AnalysisError(
                "backend 'numpy' requested but numpy is not installed; "
                "install the 'numpy' extra or use backend='python'"
            )
        instance: ArrayBackend = NumpyBackend()
    else:
        instance = PythonBackend()
    _INSTANCES[name] = instance
    return instance
