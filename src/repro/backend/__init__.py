"""Pluggable array backends (NumPy or pure Python) for estimation.

See :mod:`repro.backend.array` for the selection rules and the parity
contract between the two flavours.
"""

from repro.backend.array import (
    BACKEND_ENV_VAR,
    BACKEND_NAMES,
    ArrayBackend,
    NumpyBackend,
    PythonBackend,
    get_backend,
    numpy_available,
)

__all__ = [
    "BACKEND_ENV_VAR",
    "BACKEND_NAMES",
    "ArrayBackend",
    "NumpyBackend",
    "PythonBackend",
    "get_backend",
    "numpy_available",
]
