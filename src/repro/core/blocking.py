"""Blocking probability and average blocking time (Definitions 4 and 5).

For an actor ``a`` of application ``A`` executing in isolation with period
``Per(A)``:

* ``P(a) = tau(a) * q(a) / Per(A)`` — the probability that, at a random
  instant, the processor hosting ``a`` is busy executing ``a``
  (Definition 4).  ``a`` runs ``q(a)`` times per iteration for ``tau(a)``
  each, so it occupies the node for ``tau*q`` out of every ``Per(A)`` time
  units.
* ``mu(a) = tau(a) / 2`` — the expected *remaining* execution time when an
  independent observer arrives and finds ``a`` running (Definition 5):
  the arrival instant is uniform over the execution interval (Eq. 1–2).
  For stochastic execution times ``mu`` generalizes to the mean residual
  life ``E[X^2] / (2 E[X])`` — see :mod:`repro.core.distributions`.

:func:`build_profiles` assembles these quantities for every actor of every
application of a use-case, which is what every waiting model consumes.

For the vectorized estimation pipeline, :func:`resident_vectors` lowers
the profiles of one processor's residents into parallel arrays
(probability, ``mu``, ``tau``, ``mu * P``) — the representation the
batched waiting kernels consume — and
:func:`blocking_probabilities_batch` is the array flavour of
Definition 4 covering a whole application at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.exceptions import AnalysisError
from repro.sdf.analysis import period as analytical_period
from repro.sdf.graph import SDFGraph
from repro.sdf.repetition import repetition_vector


@dataclass(frozen=True)
class ActorProfile:
    """Everything the contention formulas need to know about one actor.

    Attributes
    ----------
    application / actor:
        Identity of the actor instance.
    tau:
        Execution time on its node (``tau(a)``).
    repetitions:
        Repetition-vector entry ``q(a)``.
    period:
        Period of the owning application used when computing ``P``
        (isolation period in the paper's single-pass algorithm; updated
        periods in the fixed-point variant).
    probability:
        Blocking probability ``P(a)``.
    mu:
        Average blocking time ``mu(a)``.
    priority:
        Static arbitration priority (larger = more urgent), populated
        from the :class:`~repro.platform.mapping.Mapping`; only
        priority-aware waiting models read it (default 0 everywhere, in
        which case those models degrade to their FCFS behaviour).
    """

    application: str
    actor: str
    tau: float
    repetitions: int
    period: float
    probability: float
    mu: float
    priority: float = 0.0

    @property
    def waiting_product(self) -> float:
        """``mu(a) * P(a)`` — the actor's expected-delay contribution."""
        return self.mu * self.probability

    def with_period(self, period: float) -> "ActorProfile":
        """Profile re-derived for a different application period."""
        return build_profile(
            application=self.application,
            actor=self.actor,
            tau=self.tau,
            repetitions=self.repetitions,
            period=period,
            mu=self.mu,
            priority=self.priority,
        )


def blocking_probability(
    tau: float, repetitions: int, period: float
) -> float:
    """``P(a) = tau(a) . q(a) / Per(A)`` (Definition 4).

    The utilization of the node by this actor; values above 1 are
    impossible for a feasible application and rejected.
    """
    if period <= 0:
        raise AnalysisError(f"period must be positive, got {period}")
    if tau < 0 or repetitions < 1:
        raise AnalysisError(
            f"invalid actor timing: tau={tau}, q={repetitions}"
        )
    probability = tau * repetitions / period
    if probability > 1.0 + 1e-9:
        raise AnalysisError(
            f"blocking probability {probability:.4f} exceeds 1: actor "
            f"busy time tau*q={tau * repetitions:g} exceeds period "
            f"{period:g}"
        )
    return min(probability, 1.0)


def average_blocking_time(tau: float) -> float:
    """``mu(a) = tau(a) / 2`` for a constant execution time (Eq. 2)."""
    if tau <= 0:
        raise AnalysisError(f"execution time must be positive, got {tau}")
    return tau / 2.0


def build_profile(
    application: str,
    actor: str,
    tau: float,
    repetitions: int,
    period: float,
    mu: Optional[float] = None,
    priority: float = 0.0,
) -> ActorProfile:
    """Assemble one :class:`ActorProfile`; ``mu`` defaults to ``tau/2``."""
    return ActorProfile(
        application=application,
        actor=actor,
        tau=tau,
        repetitions=repetitions,
        period=period,
        probability=blocking_probability(tau, repetitions, period),
        mu=mu if mu is not None else average_blocking_time(tau),
        priority=priority,
    )


def build_profiles(
    graphs: Sequence[SDFGraph],
    periods: Optional[Mapping[str, float]] = None,
    mus: Optional[Mapping[Tuple[str, str], float]] = None,
    backend=None,
    priorities: Optional[Mapping[Tuple[str, str], float]] = None,
) -> Dict[Tuple[str, str], ActorProfile]:
    """Profiles for every actor of every application.

    Parameters
    ----------
    graphs:
        The applications of the use-case.
    periods:
        Per-application periods to use for ``P``; computed analytically
        (isolation periods, Definition 3) when omitted.
    mus:
        Optional ``(application, actor) -> mu`` overrides, used by the
        stochastic-execution-time extension where ``mu`` is the mean
        residual life rather than ``tau/2``.
    backend:
        Optional :class:`~repro.backend.ArrayBackend`; a *vectorized*
        backend computes each application's blocking probabilities with
        one array operation.  The default (``None``) always runs the
        scalar arithmetic — callers that must produce bit-identical
        output regardless of the environment (the run-time manager's
        decision logs are byte-compared across configurations) rely on
        that.
    priorities:
        Optional ``(application, actor) -> priority`` values (from the
        mapping); absent keys default to 0.

    Returns
    -------
    dict
        ``(application, actor) -> ActorProfile``.
    """
    vectorized = backend is not None and getattr(
        backend, "vectorized", False
    )
    profiles: Dict[Tuple[str, str], ActorProfile] = {}
    for graph in graphs:
        if periods is not None and graph.name in periods:
            app_period = periods[graph.name]
        else:
            app_period = analytical_period(graph)
        q = repetition_vector(graph)
        actors = list(graph.actors)
        if vectorized:
            xp = backend.xp
            probabilities = blocking_probabilities_batch(
                xp.asarray(
                    [a.execution_time for a in actors], dtype=float
                ),
                xp.asarray([q[a.name] for a in actors], dtype=float),
                app_period,
                xp,
            ).tolist()
            for actor, probability in zip(actors, probabilities):
                key = (graph.name, actor.name)
                mu = mus.get(key) if mus is not None else None
                profiles[key] = ActorProfile(
                    application=graph.name,
                    actor=actor.name,
                    tau=actor.execution_time,
                    repetitions=q[actor.name],
                    period=app_period,
                    probability=probability,
                    mu=(
                        mu
                        if mu is not None
                        else average_blocking_time(
                            actor.execution_time
                        )
                    ),
                    priority=(
                        priorities.get(key, 0.0)
                        if priorities is not None
                        else 0.0
                    ),
                )
        else:
            for actor in actors:
                key = (graph.name, actor.name)
                profiles[key] = build_profile(
                    application=graph.name,
                    actor=actor.name,
                    tau=actor.execution_time,
                    repetitions=q[actor.name],
                    period=app_period,
                    mu=mus.get(key) if mus is not None else None,
                    priority=(
                        priorities.get(key, 0.0)
                        if priorities is not None
                        else 0.0
                    ),
                )
    return profiles


def blocking_probabilities_batch(taus, repetitions, period: float, xp):
    """Vectorized Definition 4 for all actors of one application.

    ``taus`` and ``repetitions`` are equal-length arrays; ``period`` is
    the application's period.  Enforces the same contract as
    :func:`blocking_probability` (positive period, sane timings, no
    utilization above 1) and returns the clamped probability array.
    """
    if period <= 0:
        raise AnalysisError(f"period must be positive, got {period}")
    if bool(xp.any(taus < 0)) or bool(xp.any(repetitions < 1)):
        raise AnalysisError(
            "invalid actor timing in batch: need tau >= 0 and q >= 1"
        )
    probabilities = taus * repetitions / period
    if bool(xp.any(probabilities > 1.0 + 1e-9)):
        worst = int(xp.argmax(probabilities))
        raise AnalysisError(
            f"blocking probability {float(probabilities[worst]):.4f} "
            f"exceeds 1: actor busy time tau*q="
            f"{float(taus[worst] * repetitions[worst]):g} exceeds "
            f"period {period:g}"
        )
    return xp.minimum(probabilities, 1.0)


@dataclass(frozen=True)
class ResidentVectors:
    """One processor's resident profiles as parallel arrays.

    The layout consumed by the batched waiting kernels: entry ``i`` of
    every array describes the ``i``-th resident of the processor, in the
    deterministic resident order of
    :meth:`~repro.platform.mapping.Mapping.actors_on` (which is also the
    fold order of the scalar composability model).
    """

    probability: object  # (n,) array — or (U, n) per-row (fixed point)
    mu: object  # (n,) array
    tau: object  # (n,) array
    waiting_product: object  # mu * probability, same shape as probability
    priority: object = None  # (n,) array (0.0 where unset)
    applications: Tuple[str, ...] = ()  # owning application per resident

    def with_probability(self, probability) -> "ResidentVectors":
        """Same residents with replaced blocking probabilities.

        ``probability`` may be ``(n,)`` or per-batch-row ``(U, n)``;
        ``waiting_product`` is re-derived (``mu`` is period-independent,
        so it carries over).  This is how the fixed-point estimator
        re-derives the period-dependent fields each refinement pass
        without rebuilding the whole structure.
        """
        return ResidentVectors(
            probability=probability,
            mu=self.mu,
            tau=self.tau,
            waiting_product=self.mu * probability,
            priority=self.priority,
            applications=self.applications,
        )


def resident_vectors(
    profiles: Sequence[ActorProfile], xp
) -> ResidentVectors:
    """Lower resident profiles into :class:`ResidentVectors` arrays."""
    probability = xp.asarray(
        [p.probability for p in profiles], dtype=float
    )
    mu = xp.asarray([p.mu for p in profiles], dtype=float)
    tau = xp.asarray([p.tau for p in profiles], dtype=float)
    return ResidentVectors(
        probability=probability,
        mu=mu,
        tau=tau,
        waiting_product=mu * probability,
        priority=xp.asarray(
            [p.priority for p in profiles], dtype=float
        ),
        applications=tuple(p.application for p in profiles),
    )
