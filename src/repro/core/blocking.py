"""Blocking probability and average blocking time (Definitions 4 and 5).

For an actor ``a`` of application ``A`` executing in isolation with period
``Per(A)``:

* ``P(a) = tau(a) * q(a) / Per(A)`` — the probability that, at a random
  instant, the processor hosting ``a`` is busy executing ``a``
  (Definition 4).  ``a`` runs ``q(a)`` times per iteration for ``tau(a)``
  each, so it occupies the node for ``tau*q`` out of every ``Per(A)`` time
  units.
* ``mu(a) = tau(a) / 2`` — the expected *remaining* execution time when an
  independent observer arrives and finds ``a`` running (Definition 5):
  the arrival instant is uniform over the execution interval (Eq. 1–2).
  For stochastic execution times ``mu`` generalizes to the mean residual
  life ``E[X^2] / (2 E[X])`` — see :mod:`repro.core.distributions`.

:func:`build_profiles` assembles these quantities for every actor of every
application of a use-case, which is what every waiting model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import AnalysisError
from repro.sdf.analysis import AnalysisMethod, period as analytical_period
from repro.sdf.graph import SDFGraph
from repro.sdf.repetition import repetition_vector


@dataclass(frozen=True)
class ActorProfile:
    """Everything the contention formulas need to know about one actor.

    Attributes
    ----------
    application / actor:
        Identity of the actor instance.
    tau:
        Execution time on its node (``tau(a)``).
    repetitions:
        Repetition-vector entry ``q(a)``.
    period:
        Period of the owning application used when computing ``P``
        (isolation period in the paper's single-pass algorithm; updated
        periods in the fixed-point variant).
    probability:
        Blocking probability ``P(a)``.
    mu:
        Average blocking time ``mu(a)``.
    """

    application: str
    actor: str
    tau: float
    repetitions: int
    period: float
    probability: float
    mu: float

    @property
    def waiting_product(self) -> float:
        """``mu(a) * P(a)`` — the actor's expected-delay contribution."""
        return self.mu * self.probability

    def with_period(self, period: float) -> "ActorProfile":
        """Profile re-derived for a different application period."""
        return build_profile(
            application=self.application,
            actor=self.actor,
            tau=self.tau,
            repetitions=self.repetitions,
            period=period,
            mu=self.mu,
        )


def blocking_probability(
    tau: float, repetitions: int, period: float
) -> float:
    """``P(a) = tau(a) . q(a) / Per(A)`` (Definition 4).

    The utilization of the node by this actor; values above 1 are
    impossible for a feasible application and rejected.
    """
    if period <= 0:
        raise AnalysisError(f"period must be positive, got {period}")
    if tau < 0 or repetitions < 1:
        raise AnalysisError(
            f"invalid actor timing: tau={tau}, q={repetitions}"
        )
    probability = tau * repetitions / period
    if probability > 1.0 + 1e-9:
        raise AnalysisError(
            f"blocking probability {probability:.4f} exceeds 1: actor "
            f"busy time tau*q={tau * repetitions:g} exceeds period "
            f"{period:g}"
        )
    return min(probability, 1.0)


def average_blocking_time(tau: float) -> float:
    """``mu(a) = tau(a) / 2`` for a constant execution time (Eq. 2)."""
    if tau <= 0:
        raise AnalysisError(f"execution time must be positive, got {tau}")
    return tau / 2.0


def build_profile(
    application: str,
    actor: str,
    tau: float,
    repetitions: int,
    period: float,
    mu: Optional[float] = None,
) -> ActorProfile:
    """Assemble one :class:`ActorProfile`; ``mu`` defaults to ``tau/2``."""
    return ActorProfile(
        application=application,
        actor=actor,
        tau=tau,
        repetitions=repetitions,
        period=period,
        probability=blocking_probability(tau, repetitions, period),
        mu=mu if mu is not None else average_blocking_time(tau),
    )


def build_profiles(
    graphs: Sequence[SDFGraph],
    periods: Optional[Mapping[str, float]] = None,
    mus: Optional[Mapping[Tuple[str, str], float]] = None,
) -> Dict[Tuple[str, str], ActorProfile]:
    """Profiles for every actor of every application.

    Parameters
    ----------
    graphs:
        The applications of the use-case.
    periods:
        Per-application periods to use for ``P``; computed analytically
        (isolation periods, Definition 3) when omitted.
    mus:
        Optional ``(application, actor) -> mu`` overrides, used by the
        stochastic-execution-time extension where ``mu`` is the mean
        residual life rather than ``tau/2``.

    Returns
    -------
    dict
        ``(application, actor) -> ActorProfile``.
    """
    profiles: Dict[Tuple[str, str], ActorProfile] = {}
    for graph in graphs:
        if periods is not None and graph.name in periods:
            app_period = periods[graph.name]
        else:
            app_period = analytical_period(graph)
        q = repetition_vector(graph)
        for actor in graph.actors:
            key = (graph.name, actor.name)
            profiles[key] = build_profile(
                application=graph.name,
                actor=actor.name,
                tau=actor.execution_time,
                repetitions=q[actor.name],
                period=app_period,
                mu=mus.get(key) if mus is not None else None,
            )
    return profiles
