"""Elementary symmetric polynomials.

The exact waiting-time formula (Eq. 4 of the paper) weighs each actor's
contribution with elementary symmetric polynomials ``e_j`` of the *other*
actors' blocking probabilities (reference [17] of the paper)::

    e_0(x1..xn) = 1
    e_1(x1..xn) = x1 + x2 + ... + xn
    e_2(x1..xn) = sum_{i<j} xi xj
    ...
    e_n(x1..xn) = x1 x2 ... xn

Evaluating all ``e_j`` naively costs ``O(2^n)``; the product recurrence

    E_k(x1..xi) = E_k(x1..x{i-1}) + xi * E_{k-1}(x1..x{i-1})

computes the first ``m`` of them in ``O(n*m)``.  The leave-one-out values
needed by Eq. 4 (symmetric polynomials of all probabilities *except*
``x_i``) follow from the synthetic-division recurrence

    e_j^{(-i)} = e_j - x_i * e_{j-1}^{(-i)}

in ``O(m)`` per excluded element — this is the "clever implementation"
that brings the m-th order approximation to ``O(n*m)`` per actor and
``O(n^m)`` overall complexity quoted in Section 4.1.

:func:`elementary_symmetric_batch` is the array flavour of the product
recurrence used by the vectorized waiting kernels: the element loop is
unchanged, but the coefficients are arrays over arbitrary leading batch
dimensions (use-cases x actors in practice) and each element carries a
0/1 inclusion weight per batch entry.  An excluded element contributes
``x = 0`` and the update ``e_k += 0 * e_{k-1}`` is an exact no-op, so
every batch entry runs precisely the scalar recurrence over its own
sub-multiset.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.exceptions import AnalysisError


def elementary_symmetric_all(
    values: Sequence[float], max_order: int | None = None
) -> List[float]:
    """``[e_0, e_1, ..., e_m]`` of ``values`` via the product recurrence.

    ``max_order`` defaults to ``len(values)``; orders above ``len(values)``
    are identically zero and not returned.
    """
    n = len(values)
    m = n if max_order is None else min(max_order, n)
    if m < 0:
        raise AnalysisError(f"max_order must be >= 0, got {max_order}")
    coefficients = [0.0] * (m + 1)
    coefficients[0] = 1.0
    filled = 0
    for value in values:
        filled = min(filled + 1, m)
        for k in range(filled, 0, -1):
            coefficients[k] += value * coefficients[k - 1]
    return coefficients


def elementary_symmetric(values: Sequence[float], order: int) -> float:
    """``e_order(values)``; zero when ``order`` exceeds ``len(values)``."""
    if order < 0:
        raise AnalysisError(f"order must be >= 0, got {order}")
    if order > len(values):
        return 0.0
    return elementary_symmetric_all(values, max_order=order)[order]


def leave_one_out(
    coefficients: Sequence[float],
    excluded: float,
    max_order: int | None = None,
) -> List[float]:
    """Symmetric polynomials of the multiset with ``excluded`` removed.

    ``coefficients`` must be ``[e_0..e_m]`` of the *full* multiset (from
    :func:`elementary_symmetric_all`).  Uses the synthetic-division
    recurrence ``e_j' = e_j - excluded * e_{j-1}'``, which is numerically
    benign for probabilities in ``[0, 1)``.

    Only sound when ``excluded`` is genuinely one of the roots used to
    build ``coefficients`` — callers (the approximation models) guarantee
    this by construction.
    """
    m = len(coefficients) - 1 if max_order is None else max_order
    if m >= len(coefficients):
        raise AnalysisError(
            "cannot derive leave-one-out values beyond the order of the "
            "full polynomial"
        )
    result = [0.0] * (m + 1)
    result[0] = 1.0
    for j in range(1, m + 1):
        result[j] = coefficients[j] - excluded * result[j - 1]
    return result


def elementary_symmetric_batch(values, include, max_order: int, xp):
    """Batched ``[e_0..e_m]`` of per-entry sub-multisets of ``values``.

    Parameters
    ----------
    values:
        Array of shape ``(n,)`` — the candidate elements (blocking
        probabilities of the residents of one processor) — or
        ``(U, n)`` with one value row per leading batch entry (the
        fixed-point pipeline, where every use-case row carries its own
        periods and therefore its own probabilities).
    include:
        0/1 array of shape ``(..., n)``: which elements belong to each
        batch entry's multiset.
    max_order:
        Highest order ``m`` to compute (clipped to ``n``).
    xp:
        The array module (NumPy).

    Returns
    -------
    array of shape ``(..., m + 1)`` with entry ``[..., j] = e_j`` of the
    selected sub-multiset — the same product recurrence as
    :func:`elementary_symmetric_all`, run once over the element axis for
    every batch entry simultaneously.
    """
    n = int(values.shape[-1])
    m = min(max_order, n)
    if m < 0:
        raise AnalysisError(f"max_order must be >= 0, got {max_order}")
    rowwise = getattr(values, "ndim", 1) > 1
    coefficients = xp.zeros(include.shape[:-1] + (m + 1,))
    coefficients[..., 0] = 1.0
    for k in range(n):
        if rowwise:
            # (U,) value column broadcast over the owner axis of
            # ``include[..., k]`` (shape (U, n)).
            x = values[..., k][..., None] * include[..., k]
        else:
            x = values[k] * include[..., k]
        for j in range(min(k + 1, m), 0, -1):
            coefficients[..., j] += x * coefficients[..., j - 1]
    return coefficients
