"""The shared ``name:argument`` specification grammar.

Every place the library accepts a model selection — the CLI's
``--model`` flags, the sweep store keys, the service protocol's
``model`` field, the conformance harness, and the placement search —
speaks the same tiny grammar::

    name                      # e.g. "second_order"
    name:argument             # e.g. "order:4", "wrr:A=2,B=1"

and the weighted-round-robin family layers a pair grammar on top of the
argument::

    APP=WEIGHT[,APP=WEIGHT...]   # e.g. "A=2,B=1"

Historically the split/normalize logic lived in
:func:`repro.core.registry.parse_model_spec` and the pair grammar in
:func:`repro.wcrt.weighted_round_robin.parse_weights`, with the CLI and
the service protocol each reaching them through different wrappers.
This module is now the single owner of both grammars —
:func:`parse_spec`/:func:`format_spec` round-trip the spec string and
:func:`parse_weight_argument`/:func:`format_weight_argument` round-trip
the weights payload — and every historical entry point delegates here,
so error messages are identical no matter which edge a bad spec hits.

Only grammar lives here (``repro.core.specs`` is import-light by
design); *semantic* validation — does the name resolve, does the model
accept an argument, do the weights name real applications — stays with
:func:`repro.core.registry.validate_model_spec`, which the sweep
service, the service protocol, and the placement search all share as
their one eager validation path.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.exceptions import AnalysisError


def parse_spec(specification: str) -> Tuple[str, Optional[str]]:
    """Split ``"name"`` / ``"name:argument"``, normalized.

    Only the name is case-normalized (registries resolve
    case-insensitively); the argument may carry case-sensitive payload
    — application names in WRR weights — and is preserved verbatim.
    """
    if not isinstance(specification, str):
        raise AnalysisError(
            f"waiting-model specification must be a string, got "
            f"{type(specification).__name__}"
        )
    spec = specification.strip()
    if ":" in spec:
        name, argument = spec.split(":", 1)
        return name.lower(), argument
    return spec.lower(), None


def format_spec(name: str, argument: Optional[str] = None) -> str:
    """The inverse of :func:`parse_spec`: a canonical spec string.

    ``format_spec(*parse_spec(s))`` normalizes ``s`` (name lowered,
    surrounding whitespace dropped); an empty/None argument renders the
    bare name.
    """
    if not isinstance(name, str) or not name.strip():
        raise AnalysisError(
            f"specification name must be a non-empty string, got {name!r}"
        )
    base = name.strip().lower()
    if argument is None or argument == "":
        return base
    return f"{base}:{argument}"


def parse_weight_argument(argument: Optional[str]) -> Dict[str, int]:
    """Parse an ``"A=2,B=1"`` weights argument into ``{app: weight}``.

    The grammar half of the historical
    :func:`repro.wcrt.weighted_round_robin.parse_weights` (which also
    applies the positive-integer weight rule); empty/None arguments
    yield the all-defaults ``{}``.
    """
    if argument is None or not argument.strip():
        return {}
    weights: Dict[str, int] = {}
    for part in argument.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise AnalysisError(
                f"bad weight specification {part!r}; expected "
                "APP=WEIGHT pairs, e.g. 'weighted_round_robin:A=2,B=1'"
            )
        app, _, raw = part.partition("=")
        try:
            weights[app.strip()] = int(raw)
        except ValueError:
            raise AnalysisError(
                f"bad weight {raw!r} for application {app.strip()!r}; "
                "weights are positive integers"
            ) from None
    return weights


def format_weight_argument(weights: Mapping[str, int]) -> str:
    """The inverse of :func:`parse_weight_argument`, canonically ordered.

    Applications are sorted by name so semantically equal weight
    vectors always render the same argument — the property the
    placement search relies on for byte-deterministic candidate specs
    and cache keys.
    """
    return ",".join(
        f"{app}={int(weights[app])}" for app in sorted(weights)
    )
