"""Expected waiting under preemptive static-priority arbitration.

The paper's Eq. 4 assumes arrival-order (FCFS) service: an arriving
actor waits for the residual of whoever executes plus the *full*
execution of everyone queued ahead.  Under preemptive static priority
the picture changes in three ways:

* a *lower*-priority actor never delays the arrival — the newcomer
  preempts it immediately;
* queued *higher-or-equal*-priority actors are all served first (equal
  priorities do not preempt each other, so among peers service stays
  arrival-ordered — exactly Eq. 4's discipline);
* while the actor executes, freshly arriving strictly-higher-priority
  actors preempt it, stretching its response.

Keeping the paper's independence model (each contender ``i`` busy with
probability ``P_i``, uniformly random queue head among those present),
restricting the Eq.-4 enumeration to the higher-or-equal-priority set
``D`` gives the closed form::

    E[wait] = sum_{i in D} P_i ( mu_i A_i  +  tau_i (1 - A_i) )
              +  tau_own * sum_{i: prio_i > prio_own} P_i        (*)

where ``A_i = E[1 / (1 + K_i)]`` — ``K_i`` the number of *other*
members of ``D`` present — expands into the same alternating
elementary-symmetric series as Eq. 4::

    A_i = sum_{j >= 0} (-1)^j e_j(P_{D minus i}) / (j + 1).

``mu_i A_i`` is the residual of the head, ``tau_i (1 - A_i)`` the full
demand of a queued peer, and the ``(*)`` term is the first-order
preemption interference: during its own execution window ``tau_own``
each strictly-higher-priority contender runs ``~ tau_own / Per_i`` more
iterations, i.e. ``tau_own * P_i`` extra delay.

Two structural properties anchor the test suite:

* **all priorities equal** — ``D`` is everyone, the preemption term
  vanishes, and (*) is algebraically Eq. 4 (with ``tau = 2 mu``), so
  the model collapses to the FCFS-exact estimate;
* **monotonicity** — every term is non-decreasing in each contender's
  blocking probability (for profiles with ``tau >= mu``).

Priorities travel on the :class:`~repro.core.blocking.ActorProfile`
(``priority`` field, populated from the
:class:`~repro.platform.mapping.Mapping`); larger values mean more
urgent.  The batched kernel reproduces the scalar loop bit for bit —
same recurrences, same accumulation order, inactive contenders
contributing exact float no-ops — which the property suite asserts.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.blocking import ActorProfile, ResidentVectors
from repro.core.symmetric import (
    elementary_symmetric_all,
    elementary_symmetric_batch,
    leave_one_out,
)


def waiting_time_priority(
    own: ActorProfile, others: Sequence[ActorProfile]
) -> float:
    """Closed form (*) above for one actor; ``O(n^2)`` arithmetic."""
    ahead: List[ActorProfile] = [
        other for other in others if other.priority >= own.priority
    ]
    total = 0.0
    if ahead:
        probabilities = [other.probability for other in ahead]
        full = elementary_symmetric_all(probabilities)
        for other in ahead:
            loo = leave_one_out(full, other.probability)
            head_share = 1.0
            sign = -1.0
            for j in range(1, len(ahead)):
                head_share = head_share + sign * loo[j] / (j + 1)
                sign = -sign
            total = total + other.probability * (
                other.mu * head_share
                + other.tau * (1.0 - head_share)
            )
    interference = 0.0
    for other in others:
        if other.priority > own.priority:
            interference = interference + other.probability
    total = total + own.tau * interference
    return total


class PriorityWaitingModel:
    """Preemptive static-priority contention as a waiting model.

    Mean-semantics: targets the *expected* delay per firing (initial
    wait plus preemption interference), like the paper's probabilistic
    techniques — not a bound.  Priorities default to 0 everywhere, in
    which case the estimate coincides with the FCFS-exact Eq. 4.
    """

    name = "priority-preemptive"
    complexity = "O(n^2) per actor"
    #: The batch kernel accepts per-row (U, n) blocking probabilities.
    batch_rowwise = True

    def waiting_time(
        self, own: ActorProfile, others: Sequence[ActorProfile]
    ) -> float:
        return waiting_time_priority(own, others)

    def waiting_times_batch(
        self, vectors: ResidentVectors, inc, own_active, xp
    ):
        """Batched (*) for every ``(use-case, own actor)`` pair.

        Runs the scalar recurrences with the batch dimensions in front
        and per-pair series truncation (``head_share`` terms are added
        only up to each pair's higher-or-equal contender count), so the
        result is bit-identical to the scalar loop — not merely within
        the 1e-9 parity band.
        """
        U, n, _ = inc.shape
        if n == 0 or U == 0:
            return xp.zeros((U, n))
        priority = vectors.priority
        probability = vectors.probability
        rowwise = getattr(probability, "ndim", 1) > 1
        # ahead[o, i]: may contender i delay owner o at the queue?
        ahead = (priority[None, :] >= priority[:, None]).astype(float)
        strictly = (priority[None, :] > priority[:, None]).astype(float)
        inc_ahead = inc * ahead[None, :, :]
        counts = inc_ahead.sum(axis=2)  # (U, o): |D| per pair
        highest = n - 1
        full = elementary_symmetric_batch(
            probability, inc_ahead, highest, xp
        )
        probability_i = (
            probability[:, None, :]
            if rowwise
            else probability[None, None, :]
        )
        head_share = xp.ones((U, n, n))
        loo = xp.ones((U, n, n))
        sign = -1.0
        for j in range(1, highest + 1):
            loo = full[..., j][:, :, None] - probability_i * loo
            term = sign * loo / (j + 1)
            # The scalar loop runs j = 1 .. |D|-1; beyond that the
            # coefficients are only *mathematically* zero (float residue
            # remains), so gate exactly like the per-pair truncation.
            head_share = head_share + xp.where(
                (counts >= j + 1)[:, :, None], term, 0.0
            )
            sign = -sign
        waiting = xp.zeros((U, n))
        for i in range(n):
            p_i = (
                probability[:, i][:, None]
                if rowwise
                else float(probability[i])
            )
            contribution = p_i * (
                float(vectors.mu[i]) * head_share[:, :, i]
                + float(vectors.tau[i]) * (1.0 - head_share[:, :, i])
            )
            waiting = waiting + inc_ahead[:, :, i] * contribution
        interference = xp.zeros((U, n))
        inc_strict = inc * strictly[None, :, :]
        for i in range(n):
            p_i = (
                probability[:, i][:, None]
                if rowwise
                else float(probability[i])
            )
            interference = interference + inc_strict[:, :, i] * p_i
        return waiting + vectors.tau[None, :] * interference
