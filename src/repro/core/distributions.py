"""Stochastic execution times (the paper's "varying execution times"
extension, Sections 2 and 6).

The probabilistic framework only needs two moments of an actor's execution
time ``X``:

* ``P(a)`` uses the mean: the actor occupies its node for
  ``E[X] * q / Per`` of the time;
* ``mu(a)`` generalizes from ``tau/2`` to the *mean residual life*
  ``E[X^2] / (2 E[X])`` — when an observer arrives while the actor runs,
  longer executions are proportionally more likely to be hit (the
  inspection paradox), so the expected remaining time is not ``E[X]/2``.
  For a constant ``tau`` this reduces to exactly ``tau/2`` (Eq. 2).

Each distribution also plugs into the simulator through
:class:`DistributionTimeModel`, so estimate and simulation stay
comparable under the same randomness.
"""

from __future__ import annotations

import random
from dataclasses import InitVar, dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.backend import get_backend
from repro.exceptions import AnalysisError
from repro.simulation.engine import TimeModel


class ExecutionTimeDistribution:
    """Interface: a positive random execution time."""

    def mean(self) -> float:
        raise NotImplementedError

    def second_moment(self) -> float:
        raise NotImplementedError

    def sample(self, rng: random.Random) -> float:
        raise NotImplementedError

    def mean_residual(self) -> float:
        """``E[X^2] / (2 E[X])`` — the generalized ``mu`` of Definition 5."""
        return self.second_moment() / (2.0 * self.mean())


@dataclass(frozen=True)
class FixedTime(ExecutionTimeDistribution):
    """Deterministic execution time (the paper's base assumption)."""

    value: float

    def __post_init__(self) -> None:
        if self.value <= 0:
            raise AnalysisError(f"execution time must be > 0, got {self.value}")

    def mean(self) -> float:
        return self.value

    def second_moment(self) -> float:
        return self.value * self.value

    def sample(self, rng: random.Random) -> float:
        return self.value


@dataclass(frozen=True)
class UniformTime(ExecutionTimeDistribution):
    """Uniform on ``[low, high]`` — e.g. data-dependent decoding times."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not 0 < self.low <= self.high:
            raise AnalysisError(
                f"need 0 < low <= high, got [{self.low}, {self.high}]"
            )

    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    def second_moment(self) -> float:
        # E[X^2] = Var + mean^2 = (high-low)^2/12 + mean^2
        spread = self.high - self.low
        return spread * spread / 12.0 + self.mean() ** 2

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


@dataclass(frozen=True)
class NormalTime(ExecutionTimeDistribution):
    """Truncated normal (resampled below ``minimum``).

    Moments are computed for the *untruncated* normal; keep
    ``minimum`` a few standard deviations below the mean so the
    truncation bias is negligible (asserted at construction).
    """

    mean_value: float
    std: float
    minimum: float = 1e-9

    def __post_init__(self) -> None:
        if self.mean_value <= 0 or self.std < 0:
            raise AnalysisError(
                f"need mean > 0 and std >= 0, got mean={self.mean_value}, "
                f"std={self.std}"
            )
        if self.std > 0 and self.mean_value - 3 * self.std < self.minimum:
            raise AnalysisError(
                "mean - 3*std falls below the minimum; truncation would "
                "bias the moments. Use a smaller std."
            )

    def mean(self) -> float:
        return self.mean_value

    def second_moment(self) -> float:
        return self.std * self.std + self.mean_value * self.mean_value

    def sample(self, rng: random.Random) -> float:
        for _ in range(64):
            value = rng.gauss(self.mean_value, self.std)
            if value >= self.minimum:
                return value
        raise AnalysisError(
            "NormalTime: 64 consecutive samples below minimum; "
            "distribution is badly parameterized"
        )


@dataclass(frozen=True)
class DiscreteTime(ExecutionTimeDistribution):
    """Finite support: e.g. I/P/B-frame decode times with frequencies.

    Every weight must be a *strictly positive* frequency/probability
    mass — a zero or negative weight is always a modelling mistake (the
    value either cannot occur and should be dropped, or the input was
    mangled), and silently accepting it would skew the normalization.

    ``backend`` (init-only) selects the array flavour of the
    normalization/moment reductions.  Unlike the estimation pipeline,
    the default here is the *scalar* arithmetic rather than the
    ``REPRO_BACKEND`` environment: distributions are constructed
    independently of any estimator, their supports are a handful of
    values (no speed to gain), and their moments feed ``mus`` overrides
    whose bits must not depend on what happens to be installed.  Pass
    ``backend="numpy"`` (or an :class:`~repro.backend.ArrayBackend`)
    to opt in to the vectorized reductions — they agree with the scalar
    ones to ~1e-16 relative.
    """

    values: Tuple[float, ...]
    weights: Tuple[float, ...]
    backend: InitVar[Optional[object]] = None

    def __post_init__(self, backend: Optional[object] = None) -> None:
        if len(self.values) != len(self.weights) or not self.values:
            raise AnalysisError(
                "values and weights must be equal-length and non-empty"
            )
        if any(v <= 0 for v in self.values):
            raise AnalysisError("all execution times must be positive")
        for index, weight in enumerate(self.weights):
            if not weight > 0:
                raise AnalysisError(
                    f"DiscreteTime weights must be strictly positive "
                    f"probabilities; weight {weight!r} for value "
                    f"{self.values[index]!r} (index {index}) is not"
                )
        total = sum(self.weights)
        # The distribution is frozen, so normalization and the moments
        # are computed once here instead of on every mean() /
        # second_moment() call (the estimator queries them per actor per
        # estimate).  object.__setattr__ is the sanctioned backdoor for
        # frozen-dataclass caches.
        resolved = (
            get_backend(backend) if backend is not None else None
        )
        if resolved is not None and resolved.vectorized:
            normalized = resolved.scale(self.weights, 1.0 / total)
            mean = resolved.dot(self.values, normalized)
            second = resolved.weighted_second_moment(
                self.values, normalized
            )
        else:
            normalized = tuple(w / total for w in self.weights)
            mean = sum(
                v * w for v, w in zip(self.values, normalized)
            )
            second = sum(
                v * v * w for v, w in zip(self.values, normalized)
            )
        object.__setattr__(self, "_normalized_weights", normalized)
        object.__setattr__(self, "_mean", mean)
        object.__setattr__(self, "_second_moment", second)

    @classmethod
    def of(
        cls,
        pairs: Sequence[Tuple[float, float]],
        backend: Optional[object] = None,
    ) -> "DiscreteTime":
        """Build from ``(value, weight)`` pairs.

        Raises :class:`~repro.exceptions.AnalysisError` when any weight
        is zero or negative (see the class docstring).  ``backend``
        opts the moment reductions into an explicit array backend.
        """
        return cls(
            values=tuple(v for v, _ in pairs),
            weights=tuple(w for _, w in pairs),
            backend=backend,
        )

    def _normalized(self) -> Tuple[float, ...]:
        return self._normalized_weights  # type: ignore[attr-defined]

    def mean(self) -> float:
        return self._mean  # type: ignore[attr-defined]

    def second_moment(self) -> float:
        return self._second_moment  # type: ignore[attr-defined]

    def sample(self, rng: random.Random) -> float:
        return rng.choices(self.values, weights=self.weights, k=1)[0]


class DistributionTimeModel(TimeModel):
    """Simulator time model drawing from per-actor distributions.

    Actors without an assigned distribution run at their nominal fixed
    execution time.
    """

    def __init__(
        self,
        distributions: Mapping[Tuple[str, str], ExecutionTimeDistribution],
    ) -> None:
        self.distributions: Dict[
            Tuple[str, str], ExecutionTimeDistribution
        ] = dict(distributions)

    def sample(
        self, application: str, actor: str, nominal: float, rng: random.Random
    ) -> float:
        distribution = self.distributions.get((application, actor))
        if distribution is None:
            return nominal
        return distribution.sample(rng)

    def mus(self) -> Dict[Tuple[str, str], float]:
        """``(app, actor) -> mean residual`` overrides for the estimator."""
        return {
            key: dist.mean_residual()
            for key, dist in self.distributions.items()
        }

    def mean_times(self) -> Dict[Tuple[str, str], float]:
        """``(app, actor) -> E[X]`` — what ``tau`` should be set to in the
        analysed graph so that ``P`` uses the mean execution time."""
        return {
            key: dist.mean() for key, dist in self.distributions.items()
        }
