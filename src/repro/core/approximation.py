"""m-th order approximations of the exact formula (Eq. 5, Section 4.1).

The elementary-symmetric series of Eq. 4 is a sum of products of blocking
probabilities; higher-order products are small, so truncating the series
at order ``m - 1`` yields the paper's *m-th order approximation* with
complexity ``O(n^m)`` (for the naive expansion; this implementation uses
the leave-one-out recurrence and costs ``O(n*m)`` per actor).  The paper
evaluates the second order

    mu.P ~= sum_i mu_i P_i (1 + (1/2) sum_{j != i} P_j)          (Eq. 5)

and the fourth order (terms up to ``e_3``).  For ``m >= n`` the
approximation coincides with Eq. 4 exactly — a property the test suite
exploits.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.blocking import ActorProfile, ResidentVectors
from repro.core.symmetric import (
    elementary_symmetric_all,
    elementary_symmetric_batch,
    leave_one_out,
)
from repro.exceptions import AnalysisError


def waiting_time_order_m(
    others: Sequence[ActorProfile], order: int
) -> float:
    """Expected waiting caused by ``others``, series truncated at
    ``e_{order-1}``.

    ``order=2`` reproduces Eq. 5; ``order=4`` the paper's fourth-order
    variant; ``order >= len(others)`` equals :func:`waiting_time_exact`.
    """
    if order < 1:
        raise AnalysisError(f"approximation order must be >= 1, got {order}")
    n = len(others)
    if n == 0:
        return 0.0
    highest = min(order - 1, n - 1)
    probabilities = [p.probability for p in others]
    full = elementary_symmetric_all(probabilities, max_order=highest)
    total = 0.0
    for own in others:
        loo = leave_one_out(full, own.probability, max_order=highest)
        series = 1.0
        sign = 1.0
        for j in range(1, highest + 1):
            series += sign * loo[j] / (j + 1)
            sign = -sign
        total += own.mu * own.probability * series
    return total


def batched_waiting_series(
    vectors: ResidentVectors,
    inc,
    order: Optional[int],
    xp,
):
    """Eq. 4/5 for every ``(use-case, own actor)`` pair in one pass.

    Parameters
    ----------
    vectors:
        The processor's residents as parallel arrays.  ``probability``
        and ``waiting_product`` are ``(n,)`` — shared by all batch rows
        — or ``(U, n)`` with one row per batch entry (the fixed-point
        pipeline, where each use-case row carries its own periods).
    inc:
        0/1 array of shape ``(U, n, n)``; ``inc[u, o, i] = 1`` iff
        resident ``i`` is an active contender of resident ``o`` in batch
        row ``u`` (never the diagonal).
    order:
        Truncation order ``m`` of Eq. 5, or ``None`` for the full Eq. 4
        series.
    xp:
        The array module (NumPy).

    Returns
    -------
    array of shape ``(U, n)`` — expected waiting time of each resident
    per batch row (0 wherever a resident has no contenders).

    The computation runs the scalar pipeline's exact recurrences with
    the batch dimensions in front: full coefficients via the product
    recurrence (:func:`elementary_symmetric_batch`), leave-one-out
    values via synthetic division, then the alternating series.  The
    series is truncated at the *processor-wide* highest order; for batch
    entries whose active multiset is smaller, the extra coefficients are
    mathematically zero (a sub-multiset's ``e_j`` vanishes beyond its
    size), so the result matches the scalar per-pair truncation to float
    round-off — well inside the 1e-9 parity contract.
    """
    U, n, _ = inc.shape
    if n == 0 or U == 0:
        return xp.zeros((U, n))
    highest = n - 1 if order is None else min(order - 1, n - 1)
    probability = vectors.probability
    rowwise = getattr(probability, "ndim", 1) > 1
    # e_0..e_highest of each (u, own) pair's active-contender multiset.
    full = elementary_symmetric_batch(probability, inc, highest, xp)
    probability_i = (
        probability[:, None, :] if rowwise else probability[None, None, :]
    )
    series = xp.ones((U, n, n))
    loo = xp.ones((U, n, n))
    sign = 1.0
    for j in range(1, highest + 1):
        loo = full[..., j][:, :, None] - probability_i * loo
        series = series + sign * loo / (j + 1)
        sign = -sign
    if rowwise:
        return xp.einsum(
            "uoi,ui->uo", inc * series, vectors.waiting_product
        )
    return xp.einsum("uoi,i->uo", inc * series, vectors.waiting_product)


class OrderMWaitingModel:
    """Eq. 5 (generalized to any order) as a waiting model."""

    #: The batch kernel accepts per-row (U, n) blocking probabilities.
    batch_rowwise = True

    def __init__(self, order: int) -> None:
        if order < 1:
            raise AnalysisError(
                f"approximation order must be >= 1, got {order}"
            )
        self.order = order
        self.name = f"order-{order}"
        self.complexity = f"O(n^{order})"

    def waiting_time(
        self, own: ActorProfile, others: Sequence[ActorProfile]
    ) -> float:
        return waiting_time_order_m(others, self.order)

    def waiting_times_batch(
        self, vectors: ResidentVectors, inc, own_active, xp
    ):
        """Batched Eq. 5 over ``(use-case, actor)`` pairs."""
        return batched_waiting_series(vectors, inc, self.order, xp)
