"""m-th order approximations of the exact formula (Eq. 5, Section 4.1).

The elementary-symmetric series of Eq. 4 is a sum of products of blocking
probabilities; higher-order products are small, so truncating the series
at order ``m - 1`` yields the paper's *m-th order approximation* with
complexity ``O(n^m)`` (for the naive expansion; this implementation uses
the leave-one-out recurrence and costs ``O(n*m)`` per actor).  The paper
evaluates the second order

    mu.P ~= sum_i mu_i P_i (1 + (1/2) sum_{j != i} P_j)          (Eq. 5)

and the fourth order (terms up to ``e_3``).  For ``m >= n`` the
approximation coincides with Eq. 4 exactly — a property the test suite
exploits.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.blocking import ActorProfile
from repro.core.symmetric import elementary_symmetric_all, leave_one_out
from repro.exceptions import AnalysisError


def waiting_time_order_m(
    others: Sequence[ActorProfile], order: int
) -> float:
    """Expected waiting caused by ``others``, series truncated at
    ``e_{order-1}``.

    ``order=2`` reproduces Eq. 5; ``order=4`` the paper's fourth-order
    variant; ``order >= len(others)`` equals :func:`waiting_time_exact`.
    """
    if order < 1:
        raise AnalysisError(f"approximation order must be >= 1, got {order}")
    n = len(others)
    if n == 0:
        return 0.0
    highest = min(order - 1, n - 1)
    probabilities = [p.probability for p in others]
    full = elementary_symmetric_all(probabilities, max_order=highest)
    total = 0.0
    for own in others:
        loo = leave_one_out(full, own.probability, max_order=highest)
        series = 1.0
        sign = 1.0
        for j in range(1, highest + 1):
            series += sign * loo[j] / (j + 1)
            sign = -sign
        total += own.mu * own.probability * series
    return total


class OrderMWaitingModel:
    """Eq. 5 (generalized to any order) as a waiting model."""

    def __init__(self, order: int) -> None:
        if order < 1:
            raise AnalysisError(
                f"approximation order must be >= 1, got {order}"
            )
        self.order = order
        self.name = f"order-{order}"
        self.complexity = f"O(n^{order})"

    def waiting_time(
        self, own: ActorProfile, others: Sequence[ActorProfile]
    ) -> float:
        return waiting_time_order_m(others, self.order)
