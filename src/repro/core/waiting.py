"""Uniform interface over waiting-time models.

Every estimation technique the paper evaluates — exact Eq. 4, the m-th
order approximations, the composability algebra, and the worst-case
baselines — answers the same question: *given the other actors bound to my
processor, how long do I expect to wait per firing?*  A
:class:`WaitingModel` is anything with a ``waiting_time(own, others)``
method (plus ``name``/``complexity`` attributes for reporting).

Model selection goes through the
:data:`~repro.core.registry.WAITING_MODELS` registry: every builtin
technique is registered here under its historical specification string
(with semantics/batch/arbiter metadata — see
:mod:`repro.core.registry`), and :func:`make_waiting_model` is the
long-standing convenience wrapper over
:func:`repro.core.registry.create_waiting_model`.  Third-party models
register their own :class:`~repro.core.registry.WaitingModelInfo` and
become selectable everywhere a model name is accepted — the estimator,
``repro sweep``/``repro estimate``, the sweep service, the estimation
server and ``repro conformance``.
"""

from __future__ import annotations

from typing import Optional, Protocol, Sequence, runtime_checkable

from repro.core.approximation import OrderMWaitingModel
from repro.core.blocking import ActorProfile
from repro.core.composability import CompositionWaitingModel
from repro.core.exact import ExactWaitingModel
from repro.core.priority import PriorityWaitingModel
from repro.core.registry import (
    WAITING_MODELS,
    WaitingModelInfo,
    create_waiting_model,
)
from repro.exceptions import AnalysisError


@runtime_checkable
class WaitingModel(Protocol):
    """Protocol implemented by all estimation techniques."""

    name: str
    complexity: str

    def waiting_time(
        self, own: ActorProfile, others: Sequence[ActorProfile]
    ) -> float:
        """Expected waiting time of ``own`` per firing, given that
        ``others`` are bound to the same processor."""


def supports_batch(model: WaitingModel) -> bool:
    """Whether ``model`` offers the vectorized batch entry point.

    Batch-capable models additionally implement
    ``waiting_times_batch(vectors, inc, own_active, xp)`` — see
    :func:`repro.core.approximation.batched_waiting_series` for the
    array contract (``own_active`` is the ``(U, n)`` activity mask of
    the *owning* resident, which lets kernels reproduce scalar-path
    errors exactly — e.g. the Eq. 8 ``P != 1`` restriction).  All
    built-in techniques do; the helper exists so the estimator can fall
    back to the scalar loop for third-party models that only implement
    the scalar protocol.
    """
    return callable(getattr(model, "waiting_times_batch", None))


def supports_rowwise_batch(model: WaitingModel) -> bool:
    """Whether ``model``'s batch kernel accepts per-row probabilities.

    The fixed-point estimator re-derives every use-case row's blocking
    probabilities from that row's refined periods, so its kernels see a
    ``(U, n)`` ``vectors.probability`` instead of the shared ``(n,)``
    vector.  Models opt in with a truthy ``batch_rowwise`` class
    attribute (all builtins do; the WCRT bounds never read probabilities
    and are trivially safe).  Third-party models that only handle the
    1-D layout keep the flag unset and the estimator falls back to the
    scalar fixed-point loop for them.
    """
    return supports_batch(model) and bool(
        getattr(model, "batch_rowwise", False)
    )


def make_waiting_model(specification: str) -> WaitingModel:
    """Build a registered waiting model from a specification string.

    Built-in specifications:

    * ``"exact"`` — Eq. 4;
    * ``"second_order"`` / ``"fourth_order"`` — Eq. 5 at m=2 / m=4;
    * ``"order:M"`` — Eq. 5 at any order M >= 1;
    * ``"composability"`` — Eq. 6/7 (direct composition);
    * ``"composability_incremental"`` — Eq. 6–9 (inverse-based);
    * ``"priority_preemptive"`` — preemptive static priority, expected
      delay (priorities from the mapping);
    * ``"worst_case"`` — the non-preemptive round-robin WCRT baseline
      (reference [6] of the paper);
    * ``"weighted_round_robin"`` (alias ``"wrr"``) — weighted
      round-robin WCRT, optionally ``wrr:A=2,B=1`` per-app weights;
    * ``"tdma"`` — the TDMA WCRT baseline (reference [3]).

    Unknown names raise :class:`~repro.exceptions.AnalysisError`
    listing every registered model.  The full catalogue (including any
    third-party registrations) is ``repro models`` /
    :func:`repro.core.registry.render_model_table`.
    """
    return create_waiting_model(specification)


def _make_order(argument: Optional[str]) -> OrderMWaitingModel:
    try:
        order = int(argument) if argument is not None else None
    except ValueError:
        order = None
    if order is None:
        raise AnalysisError(
            f"bad order specification {('order:' + str(argument))!r}; "
            "expected 'order:M' with integer M"
        )
    return OrderMWaitingModel(order)


def _make_worst_case():
    # Imported lazily: repro.wcrt depends on repro.core for the
    # profile type, so a module-level import would be circular.
    from repro.wcrt.round_robin import WorstCaseRRWaitingModel

    return WorstCaseRRWaitingModel()


def _make_tdma():
    from repro.wcrt.tdma import TDMAWaitingModel

    return TDMAWaitingModel()


def _make_weighted_rr(argument: Optional[str] = None):
    from repro.wcrt.weighted_round_robin import (
        WeightedRRWaitingModel,
        parse_weights,
    )

    return WeightedRRWaitingModel(weights=parse_weights(argument))


#: Conformance band of the paper's mean estimators: the DAC-2007
#: evaluation reports ~10-20% period error across use-cases; the band
#: leaves headroom for the scaled-down seeded galleries (cf. the 0.40
#: integration-test bound against the 5-app suite).
_MEAN_TOLERANCE = 0.45

_BUILTIN_MODELS = (
    WaitingModelInfo(
        name="exact",
        factory=ExactWaitingModel,
        summary="Eq. 4 exact expected waiting (FCFS service)",
        semantics="mean",
        tolerance=_MEAN_TOLERANCE,
        arbiter="fcfs",
    ),
    WaitingModelInfo(
        name="second_order",
        factory=lambda: OrderMWaitingModel(2),
        summary="Eq. 5 second-order truncation of Eq. 4",
        semantics="mean",
        tolerance=_MEAN_TOLERANCE,
        arbiter="fcfs",
    ),
    WaitingModelInfo(
        name="fourth_order",
        factory=lambda: OrderMWaitingModel(4),
        summary="Eq. 5 fourth-order truncation of Eq. 4",
        semantics="mean",
        tolerance=_MEAN_TOLERANCE,
        arbiter="fcfs",
    ),
    WaitingModelInfo(
        name="order",
        factory=_make_order,
        summary="Eq. 5 truncated at any order M",
        semantics="mean",
        tolerance=_MEAN_TOLERANCE,
        arbiter="fcfs",
        parameters={"M": "truncation order, an integer >= 1"},
        takes_argument=True,
        requires_argument=True,
    ),
    WaitingModelInfo(
        name="composability",
        factory=lambda: CompositionWaitingModel(incremental=False),
        summary="Eq. 6/7 composition algebra (direct fold)",
        semantics="mean",
        tolerance=_MEAN_TOLERANCE,
        arbiter="fcfs",
    ),
    WaitingModelInfo(
        name="composability_incremental",
        factory=lambda: CompositionWaitingModel(incremental=True),
        summary="Eq. 6-9 composition algebra (inverse-based)",
        semantics="mean",
        tolerance=_MEAN_TOLERANCE,
        arbiter="fcfs",
    ),
    WaitingModelInfo(
        name="priority_preemptive",
        factory=PriorityWaitingModel,
        summary=(
            "preemptive static priority, expected delay "
            "(priorities from the mapping)"
        ),
        semantics="mean",
        # Preemption couples the supposedly independent arrivals harder
        # than FCFS does (a low-priority actor's backlog compounds), so
        # the declared band is wider than the FCFS techniques'.
        tolerance=0.60,
        arbiter="priority_preemptive",
    ),
    WaitingModelInfo(
        name="worst_case",
        factory=_make_worst_case,
        summary="round-robin WCRT bound (reference [6])",
        semantics="conservative",
        arbiter="round_robin",
    ),
    WaitingModelInfo(
        name="weighted_round_robin",
        factory=_make_weighted_rr,
        summary="weighted round-robin WCRT bound (per-app weights)",
        semantics="conservative",
        arbiter="weighted_round_robin",
        parameters={
            "weights": (
                "per-application slice weights, e.g. "
                "'weighted_round_robin:A=2,B=1' (default 1)"
            )
        },
        takes_argument=True,
        aliases=("wrr",),
    ),
    WaitingModelInfo(
        name="tdma",
        factory=_make_tdma,
        summary="TDMA WCRT bound (reference [3]); needs preemption",
        semantics="conservative",
        # The DES engine is non-preemptive; TDMA's slicing cannot be
        # simulated, so the bound has no conformance reference.
        arbiter=None,
    ),
)

for _info in _BUILTIN_MODELS:
    if _info.name not in WAITING_MODELS:
        WAITING_MODELS.register(_info)
del _info
