"""Uniform interface over waiting-time models.

Every estimation technique the paper evaluates — exact Eq. 4, the m-th
order approximations, the composability algebra, and the worst-case
baselines — answers the same question: *given the other actors bound to my
processor, how long do I expect to wait per firing?*  A
:class:`WaitingModel` is anything with a ``waiting_time(own, others)``
method (plus ``name``/``complexity`` attributes for reporting);
:func:`make_waiting_model` builds one from a configuration string so the
experiment harness and CLI examples can select techniques by name.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

from repro.core.approximation import OrderMWaitingModel
from repro.core.blocking import ActorProfile
from repro.core.composability import CompositionWaitingModel
from repro.core.exact import ExactWaitingModel
from repro.exceptions import AnalysisError


@runtime_checkable
class WaitingModel(Protocol):
    """Protocol implemented by all estimation techniques."""

    name: str
    complexity: str

    def waiting_time(
        self, own: ActorProfile, others: Sequence[ActorProfile]
    ) -> float:
        """Expected waiting time of ``own`` per firing, given that
        ``others`` are bound to the same processor."""


def supports_batch(model: WaitingModel) -> bool:
    """Whether ``model`` offers the vectorized batch entry point.

    Batch-capable models additionally implement
    ``waiting_times_batch(vectors, inc, own_active, xp)`` — see
    :func:`repro.core.approximation.batched_waiting_series` for the
    array contract (``own_active`` is the ``(U, n)`` activity mask of
    the *owning* resident, which lets kernels reproduce scalar-path
    errors exactly — e.g. the Eq. 8 ``P != 1`` restriction).  All five
    built-in techniques do; the helper exists so the estimator can fall
    back to the scalar loop for third-party models that only implement
    the scalar protocol.
    """
    return callable(getattr(model, "waiting_times_batch", None))


def make_waiting_model(specification: str) -> WaitingModel:
    """Build a waiting model from a name.

    Accepted specifications:

    * ``"exact"`` — Eq. 4;
    * ``"second_order"`` / ``"fourth_order"`` — Eq. 5 at m=2 / m=4;
    * ``"order:M"`` — Eq. 5 at any order M >= 1;
    * ``"composability"`` — Eq. 6/7 (direct composition);
    * ``"composability_incremental"`` — Eq. 6–9 (inverse-based);
    * ``"worst_case"`` — the non-preemptive round-robin WCRT baseline
      (reference [6] of the paper);
    * ``"tdma"`` — the TDMA WCRT baseline (reference [3]).
    """
    spec = specification.strip().lower()
    if spec == "exact":
        return ExactWaitingModel()
    if spec == "second_order":
        return OrderMWaitingModel(2)
    if spec == "fourth_order":
        return OrderMWaitingModel(4)
    if spec.startswith("order:"):
        try:
            order = int(spec.split(":", 1)[1])
        except ValueError:
            raise AnalysisError(
                f"bad order specification {specification!r}; expected "
                "'order:M' with integer M"
            ) from None
        return OrderMWaitingModel(order)
    if spec == "composability":
        return CompositionWaitingModel(incremental=False)
    if spec == "composability_incremental":
        return CompositionWaitingModel(incremental=True)
    if spec == "worst_case":
        # Imported lazily: repro.wcrt depends on repro.core for the
        # profile type, so a module-level import would be circular.
        from repro.wcrt.round_robin import WorstCaseRRWaitingModel

        return WorstCaseRRWaitingModel()
    if spec == "tdma":
        from repro.wcrt.tdma import TDMAWaitingModel

        return TDMAWaitingModel()
    raise AnalysisError(
        f"unknown waiting model {specification!r}; see "
        "make_waiting_model.__doc__ for valid names"
    )
