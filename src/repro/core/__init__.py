"""The paper's contribution: probabilistic resource-contention estimation.

Modules
-------
* :mod:`repro.core.blocking` — per-actor blocking probability ``P(a)`` and
  average blocking time ``mu(a)`` (Definitions 4 and 5).
* :mod:`repro.core.symmetric` — elementary symmetric polynomials, the
  combinatorial backbone of the exact formula.
* :mod:`repro.core.exact` — the exact n-actor waiting-time formula (Eq. 4).
* :mod:`repro.core.approximation` — m-th order truncations (Eq. 5).
* :mod:`repro.core.composability` — the ⊕/⊗ composition algebra and its
  inverses (Eq. 6–9).
* :mod:`repro.core.priority` — expected waiting under preemptive static
  priority (priorities from the mapping).
* :mod:`repro.core.registry` — the pluggable model/arbiter registry with
  semantics metadata (what the conformance harness asserts).
* :mod:`repro.core.waiting` — uniform :class:`WaitingModel` interface over
  all of the above (plus the worst-case baselines in :mod:`repro.wcrt`),
  registered under their specification names.
* :mod:`repro.core.estimator` — the Fig.-4 estimation algorithm, producing
  per-application period/throughput estimates for a use-case.
* :mod:`repro.core.distributions` — stochastic execution times (the
  paper's "varying execution times" extension).
"""

from repro.core.approximation import OrderMWaitingModel, waiting_time_order_m
from repro.core.blocking import (
    ActorProfile,
    average_blocking_time,
    blocking_probability,
    build_profiles,
)
from repro.core.composability import (
    Composite,
    CompositionWaitingModel,
    compose,
    compose_all,
    decompose,
    prob_compose,
    prob_decompose,
)
from repro.core.distributions import (
    DiscreteTime,
    DistributionTimeModel,
    ExecutionTimeDistribution,
    FixedTime,
    NormalTime,
    UniformTime,
)
from repro.core.estimator import (
    EstimationResult,
    ProbabilisticEstimator,
    estimate_use_case,
)
from repro.core.exact import ExactWaitingModel, waiting_time_exact
from repro.core.priority import (
    PriorityWaitingModel,
    waiting_time_priority,
)
from repro.core.registry import (
    ARBITERS,
    WAITING_MODELS,
    ArbiterInfo,
    WaitingModelInfo,
)
from repro.core.symmetric import (
    elementary_symmetric,
    elementary_symmetric_all,
    leave_one_out,
)
from repro.core.waiting import WaitingModel, make_waiting_model

__all__ = [
    "ARBITERS",
    "ActorProfile",
    "ArbiterInfo",
    "Composite",
    "CompositionWaitingModel",
    "DiscreteTime",
    "DistributionTimeModel",
    "EstimationResult",
    "ExactWaitingModel",
    "ExecutionTimeDistribution",
    "FixedTime",
    "NormalTime",
    "OrderMWaitingModel",
    "PriorityWaitingModel",
    "ProbabilisticEstimator",
    "UniformTime",
    "WAITING_MODELS",
    "WaitingModel",
    "WaitingModelInfo",
    "average_blocking_time",
    "blocking_probability",
    "build_profiles",
    "compose",
    "compose_all",
    "decompose",
    "elementary_symmetric",
    "elementary_symmetric_all",
    "estimate_use_case",
    "leave_one_out",
    "make_waiting_model",
    "prob_compose",
    "prob_decompose",
    "waiting_time_exact",
    "waiting_time_order_m",
    "waiting_time_priority",
]
