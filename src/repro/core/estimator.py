"""The estimation algorithm of the paper's Figure 4.

Given a use-case (set of concurrently active applications), a mapping, and
a waiting model, the estimator:

1. computes each application's *isolation* period analytically
   (Definition 3, via MCR analysis of the HSDF expansion);
2. derives every actor's blocking probability ``P`` and average blocking
   time ``mu`` from it (steps 2–4 of Fig. 4);
3. asks the waiting model for every actor's expected waiting time, given
   the other actors bound to the same processor (step 8);
4. inflates each actor's execution time to its *response time*
   ``tau + t_wait`` (step 9);
5. recomputes every application's period with the response times
   (step 11).

The paper runs this once.  ``iterations > 1`` enables the fixed-point
variant explored in the ablation benches: recompute ``P`` from the new
periods (contention lowers utilization, which lowers ``P``) and repeat.

Period analysis runs on one :class:`~repro.analysis_engine.AnalysisEngine`
per application: the HSDF expansion, SCC decomposition and converged
Howard policy are computed once at construction and every subsequent
period query — across fixed-point iterations *and* across the use-cases
of :meth:`ProbabilisticEstimator.estimate_many` /
:meth:`~ProbabilisticEstimator.sweep_all_sizes` — is a weight-only,
warm-started solve (memoized on the response-time vector).  Pass
``incremental=False`` to fall back to the stateless cold path; the two
paths agree to <= 1e-9 relative (equal floats in practice), which the
parity tests assert.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping as TMapping, Optional, Sequence, Tuple

from repro.analysis_engine import AnalysisEngine, build_engines
from repro.backend import ArrayBackend, get_backend
from repro.core.blocking import (
    ActorProfile,
    ResidentVectors,
    build_profiles,
    resident_vectors,
)
from repro.core.waiting import (
    WaitingModel,
    make_waiting_model,
    supports_batch,
    supports_rowwise_batch,
)
from repro.exceptions import AnalysisError
from repro.platform.mapping import Mapping, index_mapping
from repro.platform.usecase import (
    DEFAULT_SWEEP_SEED,
    UseCase,
    sampled_use_cases_by_size,
)
from repro.sdf.analysis import (
    AnalysisMethod,
    period as analytical_period,
    period_with_response_times,
)
from repro.sdf.graph import SDFGraph
from repro.telemetry import COUNT_BUCKETS, get_registry, get_tracer


@dataclass
class EstimationResult:
    """Outcome of one estimation run for one use-case.

    Attributes
    ----------
    use_case:
        The analysed use-case.
    model_name:
        ``name`` of the waiting model used.
    periods:
        Estimated per-application periods under contention.
    isolation_periods:
        Periods in isolation (the normalization basis of Figure 5).
    waiting_times / response_times:
        Per ``(application, actor)`` expected waiting and response times.
    iterations_used:
        Number of Fig.-4 passes executed (1 = the paper's algorithm).
    analysis_seconds:
        Wall-clock cost of the estimate (used by the timing bench).
    """

    use_case: UseCase
    model_name: str
    periods: Dict[str, float]
    isolation_periods: Dict[str, float]
    waiting_times: Dict[Tuple[str, str], float]
    response_times: Dict[Tuple[str, str], float]
    iterations_used: int
    analysis_seconds: float

    def period_of(self, application: str) -> float:
        try:
            return self.periods[application]
        except KeyError:
            raise AnalysisError(
                f"no estimate for application {application!r}"
            ) from None

    def throughput_of(self, application: str) -> float:
        return 1.0 / self.period_of(application)

    def isolation_period_of(self, application: str) -> float:
        try:
            return self.isolation_periods[application]
        except KeyError:
            raise AnalysisError(
                f"no isolation period for application {application!r}"
            ) from None

    def normalized_period_of(self, application: str) -> float:
        """Estimated period over isolation period (Figure 5's y-axis)."""
        return self.period_of(application) / self.isolation_period_of(
            application
        )


class ProbabilisticEstimator:
    """Reusable estimator over a fixed application set and mapping.

    Parameters
    ----------
    graphs:
        All applications that may appear in use-cases.
    mapping:
        Actor-to-processor binding covering every graph; defaults to the
        paper's index mapping.
    waiting_model:
        A :class:`~repro.core.waiting.WaitingModel` or a specification
        string for :func:`~repro.core.waiting.make_waiting_model`.
    analysis_method:
        Period engine for isolation and response-time periods.
    include_same_application:
        When True (paper behaviour) an actor waits for *all* other actors
        on its node, including co-mapped actors of its own application.
    mus:
        Optional ``(application, actor) -> mu`` overrides for the
        stochastic execution-time extension.
    engines:
        Pre-built ``{application: AnalysisEngine}`` to share structural
        work (HSDF expansions, warm Howard policies, period memo caches)
        with other estimators, e.g. one per waiting model in a sweep.
        Must cover every graph and use ``analysis_method``.  The
        engines' ``mcr_algorithm`` is deliberately not constrained:
        Lawler/brute engines are correct, just slower (no warm start).
    incremental:
        When True (default) period analysis runs on the per-application
        engines; when False the estimator replicates the stateless cold
        path (re-expansion + cold solve per query).  Both produce
        identical results; the flag exists for parity tests and the
        ablation benches.
    backend:
        Array backend selection — an
        :class:`~repro.backend.ArrayBackend`, one of the names
        ``"auto"``/``"numpy"``/``"python"``, or ``None`` to honor the
        ``REPRO_BACKEND`` environment variable.  With a vectorized
        backend, estimates run the batched pipeline: one waiting-kernel
        evaluation per processor covering every use-case at once, and
        one :meth:`AnalysisEngine.period_for` call per application —
        per fixed-point pass, with converged rows frozen and only the
        still-active rows refined when ``iterations > 1``.  The Python
        backend (and any configuration the batched pipeline does not
        cover — the cold path, scalar-only waiting models, fixed-point
        refinement of models without a row-wise batch kernel) runs
        today's scalar loops; the two flavours agree to <= 1e-9
        relative.
    """

    def __init__(
        self,
        graphs: Sequence[SDFGraph],
        mapping: Optional[Mapping] = None,
        waiting_model: WaitingModel | str = "second_order",
        analysis_method: AnalysisMethod = AnalysisMethod.MCR,
        include_same_application: bool = True,
        mus: Optional[TMapping[Tuple[str, str], float]] = None,
        engines: Optional[Dict[str, AnalysisEngine]] = None,
        incremental: bool = True,
        backend: "Optional[str | ArrayBackend]" = None,
    ) -> None:
        if not graphs:
            raise AnalysisError("estimator needs at least one application")
        self.graphs: Dict[str, SDFGraph] = {g.name: g for g in graphs}
        if len(self.graphs) != len(graphs):
            raise AnalysisError("duplicate application names")
        self.mapping = (
            mapping if mapping is not None else index_mapping(graphs)
        )
        self.mapping.validate_against(graphs)
        if isinstance(waiting_model, str):
            waiting_model = make_waiting_model(waiting_model)
        self.waiting_model = waiting_model
        # Models carrying per-application parameters (e.g. WRR weights)
        # expose check_applications; validating against the actual
        # application set here catches typo'd or mis-cased names that
        # spec-level validation cannot see.
        check = getattr(self.waiting_model, "check_applications", None)
        if callable(check):
            check(tuple(g.name for g in graphs))
        self.analysis_method = analysis_method
        self.include_same_application = include_same_application
        self.mus = dict(mus) if mus is not None else None
        # Arbitration priorities ride on the mapping; profiles carry
        # them so priority-aware waiting models can read them.  The
        # common all-zero case passes None, keeping the established
        # profile-construction arithmetic untouched.
        priorities = self.mapping.priorities()
        self.priorities: Optional[Dict[Tuple[str, str], float]] = (
            priorities if priorities else None
        )
        self.incremental = incremental
        self.backend = get_backend(backend)
        self._batch_structure: Optional[_BatchStructure] = None
        if incremental:
            if engines is None:
                engines = build_engines(graphs, method=analysis_method)
            else:
                missing = [n for n in self.graphs if n not in engines]
                if missing:
                    raise AnalysisError(
                        f"shared engines missing applications: {missing!r}"
                    )
                mismatched = [
                    name
                    for name in self.graphs
                    if engines[name].method is not analysis_method
                ]
                if mismatched:
                    raise AnalysisError(
                        f"shared engines for {mismatched!r} use a "
                        f"different analysis method than "
                        f"{analysis_method!r}"
                    )
                for name, graph in self.graphs.items():
                    if not _same_analysis_graph(
                        engines[name].graph, graph
                    ):
                        raise AnalysisError(
                            f"shared engine for {name!r} was built "
                            "from a different graph (actor timings or "
                            "topology differ); rebuild the engines for "
                            "this application set"
                        )
            self.engines: Dict[str, AnalysisEngine] = engines
            # Isolation periods are use-case independent; compute once.
            self.isolation_periods: Dict[str, float] = {
                name: self.engines[name].period() for name in self.graphs
            }
            # P and mu depend only on tau, q and the period; with the
            # paper's single-pass algorithm the period is always the
            # isolation period, so these profiles serve every estimate.
            self._base_profiles: Dict[Tuple[str, str], ActorProfile] = (
                build_profiles(
                    list(self.graphs.values()),
                    periods=self.isolation_periods,
                    mus=self.mus,
                    backend=self.backend,
                    priorities=self.priorities,
                )
            )
        else:
            if engines is not None:
                raise AnalysisError(
                    "engines were supplied together with "
                    "incremental=False; the cold path would silently "
                    "ignore them"
                )
            self.engines = {}
            self._base_profiles = {}
            self.isolation_periods = {
                name: analytical_period(graph, method=analysis_method)
                for name, graph in self.graphs.items()
            }

        # Telemetry instruments are bound once per estimator; the hot
        # loops pay a single no-op call when telemetry is disabled.
        registry = get_registry()
        self._tracer = get_tracer()
        self._metric_use_cases = registry.counter(
            "repro_estimator_use_cases_total",
            "Use-case estimates produced (scalar and batched paths)",
        )
        self._metric_passes = registry.counter(
            "repro_estimator_fixed_point_passes_total",
            "Fixed-point refinement passes across batched estimates",
        )
        self._metric_active_rows = registry.histogram(
            "repro_estimator_active_rows",
            "Unconverged rows entering each batched fixed-point pass",
            buckets=COUNT_BUCKETS,
        )

    # ------------------------------------------------------------------
    def _can_batch(self, iterations: int) -> bool:
        """Whether the vectorized pipeline covers this configuration.

        The batched path implements the paper's single-pass algorithm
        (``iterations == 1``) on the incremental engines, and — for
        waiting models whose batch kernels accept per-row probabilities
        (:func:`~repro.core.waiting.supports_rowwise_batch`; all
        builtins) — the fixed-point refinement as well, with a per-row
        convergence mask.  The stateless cold path, waiting models
        without a batch kernel, and fixed-point refinement of
        third-party models with 1-D-only kernels stay on the scalar
        loops.
        """
        if not (
            self.incremental
            and self.backend.vectorized
            and supports_batch(self.waiting_model)
        ):
            return False
        return iterations == 1 or supports_rowwise_batch(
            self.waiting_model
        )

    def estimate(
        self,
        use_case: Optional[UseCase] = None,
        iterations: int = 1,
        tolerance: float = 1e-6,
    ) -> EstimationResult:
        """Run Fig. 4 for ``use_case`` (default: all applications active).

        ``iterations`` bounds the fixed-point refinement; the loop stops
        early when the largest relative period change drops below
        ``tolerance``.
        """
        if use_case is None:
            use_case = UseCase(tuple(self.graphs.keys()))
        if iterations < 1:
            raise AnalysisError("iterations must be >= 1")
        if self._can_batch(iterations):
            return self._estimate_many_batched(
                [use_case], iterations=iterations, tolerance=tolerance
            )[0]
        active = use_case.select(list(self.graphs.values()))
        self._metric_use_cases.inc()
        started = _time.perf_counter()

        current_periods = {
            g.name: self.isolation_periods[g.name] for g in active
        }
        waiting: Dict[Tuple[str, str], float] = {}
        response: Dict[Tuple[str, str], float] = {}
        iterations_used = 0

        for _ in range(iterations):
            iterations_used += 1
            profiles = self._profiles_for(active, current_periods)
            waiting, response = self._waiting_and_response(
                use_case, profiles
            )
            new_periods = {}
            for graph in active:
                responses_of_app = {
                    actor: response[(graph.name, actor)]
                    for actor in graph.actor_names
                }
                if self.incremental:
                    new_periods[graph.name] = self.engines[
                        graph.name
                    ].period(responses_of_app)
                else:
                    new_periods[graph.name] = period_with_response_times(
                        graph,
                        responses_of_app,
                        method=self.analysis_method,
                    )
            converged = all(
                abs(new_periods[name] - current_periods[name])
                <= tolerance * max(1.0, abs(new_periods[name]))
                for name in new_periods
            )
            # The paper's P is derived from *isolation* periods on the
            # first pass; later passes re-derive it from the estimated
            # contended periods (fixed-point ablation).
            current_periods = new_periods
            if converged and iterations_used > 1:
                break

        elapsed = _time.perf_counter() - started
        return EstimationResult(
            use_case=use_case,
            model_name=self.waiting_model.name,
            periods=current_periods,
            isolation_periods={
                g.name: self.isolation_periods[g.name] for g in active
            },
            waiting_times=waiting,
            response_times=response,
            iterations_used=iterations_used,
            analysis_seconds=elapsed,
        )

    # ------------------------------------------------------------------
    def estimate_many(
        self,
        use_cases: Sequence[UseCase],
        iterations: int = 1,
        tolerance: float = 1e-6,
    ) -> List[EstimationResult]:
        """Batched Fig. 4 over many use-cases of one application set.

        All estimates share the per-application engines, so the HSDF
        expansions and solver structures are paid once for the whole
        batch, Howard warm-starts from the previous use-case's policy,
        and identical per-application response-time vectors (recurring
        whenever an application faces the same co-mapped contenders in
        several use-cases) are answered from the engine memo without
        solving.  This is the API behind the experiment runner's sweep
        and the ``repro sweep`` CLI.

        With a vectorized backend the whole batch runs through the
        array pipeline: one waiting-kernel evaluation per processor
        covering every use-case and one
        :meth:`AnalysisEngine.period_for` call per application — per
        fixed-point pass, when ``iterations > 1``, with converged rows
        frozen under a per-row mask so only still-moving rows pay for
        further refinement.
        """
        if iterations < 1:
            raise AnalysisError("iterations must be >= 1")
        if self._can_batch(iterations):
            return self._estimate_many_batched(
                list(use_cases),
                iterations=iterations,
                tolerance=tolerance,
            )
        with self._tracer.span(
            "estimator.estimate_many",
            model=self.waiting_model.name,
            use_cases=len(use_cases),
            iterations=iterations,
            batched=False,
        ):
            return [
                self.estimate(
                    use_case, iterations=iterations, tolerance=tolerance
                )
                for use_case in use_cases
            ]

    def sweep_all_sizes(
        self,
        samples_per_size: Optional[int] = None,
        seed: int = DEFAULT_SWEEP_SEED,
        iterations: int = 1,
        tolerance: float = 1e-6,
    ) -> List[EstimationResult]:
        """Estimate use-cases of every size 1..N (the paper's 2^N sweep).

        ``samples_per_size=None`` is exhaustive; otherwise each
        cardinality contributes a deterministic sample (the shared
        :func:`repro.platform.usecase.sampled_use_cases_by_size`
        convention, identical to the experiment runner's selection).
        """
        selected = sampled_use_cases_by_size(
            tuple(self.graphs.keys()),
            samples_per_size=samples_per_size,
            seed=seed,
        )
        return self.estimate_many(
            selected, iterations=iterations, tolerance=tolerance
        )

    # ------------------------------------------------------------------
    def _profiles_for(
        self,
        active: Sequence[SDFGraph],
        current_periods: TMapping[str, float],
    ) -> Dict[Tuple[str, str], ActorProfile]:
        """Steps 2–4 of Fig. 4: per-actor ``P`` and ``mu`` profiles.

        The incremental path reuses the profiles built at construction —
        ``tau``, ``q`` and ``mu`` never change, and with the paper's
        single-pass algorithm the period is always the isolation period;
        fixed-point iterations re-derive only the period-dependent
        fields.  The cold path rebuilds everything (repetition vectors
        included) exactly like the stateless implementation.
        """
        if not self.incremental:
            return build_profiles(
                active,
                periods=current_periods,
                mus=self.mus,
                priorities=self.priorities,
            )
        profiles: Dict[Tuple[str, str], ActorProfile] = {}
        for graph in active:
            period = current_periods[graph.name]
            for actor in graph.actor_names:
                base = self._base_profiles[(graph.name, actor)]
                profiles[(graph.name, actor)] = (
                    base
                    if base.period == period
                    else base.with_period(period)
                )
        return profiles

    # ------------------------------------------------------------------
    def _waiting_and_response(
        self,
        use_case: UseCase,
        profiles: Dict[Tuple[str, str], ActorProfile],
    ) -> Tuple[Dict[Tuple[str, str], float], Dict[Tuple[str, str], float]]:
        """Steps 7–10 of Fig. 4 for every actor of the use-case."""
        waiting: Dict[Tuple[str, str], float] = {}
        response: Dict[Tuple[str, str], float] = {}
        active_apps = tuple(use_case)
        for processor in self.mapping.platform.processor_names:
            residents = self.mapping.actors_on(processor, active_apps)
            for app, actor in residents:
                own = profiles[(app, actor)]
                others = [
                    profiles[(other_app, other_actor)]
                    for other_app, other_actor in residents
                    if (other_app, other_actor) != (app, actor)
                    and (
                        self.include_same_application or other_app != app
                    )
                ]
                t_wait = self.waiting_model.waiting_time(own, others)
                if t_wait < 0:
                    raise AnalysisError(
                        f"waiting model {self.waiting_model.name!r} "
                        f"returned negative waiting {t_wait} for "
                        f"{app}.{actor}"
                    )
                waiting[(app, actor)] = t_wait
                response[(app, actor)] = own.tau + t_wait
        return waiting, response

    # ------------------------------------------------------------------
    # Vectorized pipeline (NumPy backend, single-pass estimates)
    # ------------------------------------------------------------------
    def _batch_structure_for(self) -> "_BatchStructure":
        """Lazy per-estimator arrays describing the contention layout.

        All of it depends only on the application set, the mapping and
        the isolation profiles — never on the use-case — so it is built
        once and reused by every batched call.
        """
        if self._batch_structure is not None:
            return self._batch_structure
        xp = self.backend.xp  # type: ignore[union-attr]
        app_columns = {
            name: column for column, name in enumerate(self.graphs)
        }
        processors: List[_ProcessorBatch] = []
        location: Dict[Tuple[str, str], Tuple[int, int]] = {}
        for processor in self.mapping.platform.processor_names:
            # The mapping may bind applications beyond this estimator's
            # set (a shared platform mapping); only our own actors can
            # ever be active, matching the scalar path's
            # ``actors_on(processor, active_apps)`` filter.
            residents = [
                key
                for key in self.mapping.actors_on(processor)
                if key[0] in self.graphs
            ]
            if len(residents) < 2:
                # A lone resident never waits; the assembly step emits
                # zero waiting for actors without a location entry.
                continue
            profiles = [self._base_profiles[key] for key in residents]
            count = len(residents)
            apps = [app for app, _ in residents]
            other_ok = xp.ones((count, count)) - xp.eye(count)
            if not self.include_same_application:
                same = xp.asarray(
                    [
                        [
                            1.0 if apps[own] == apps[i] else 0.0
                            for i in range(count)
                        ]
                        for own in range(count)
                    ]
                )
                other_ok = other_ok * (1.0 - same)
            index = len(processors)
            for resident, key in enumerate(residents):
                location[key] = (index, resident)
            processors.append(
                _ProcessorBatch(
                    residents=list(residents),
                    vectors=resident_vectors(profiles, xp),
                    app_columns=xp.asarray(
                        [app_columns[app] for app in apps], dtype=int
                    ),
                    other_ok=other_ok,
                    # tau*q per resident (the numerator of Definition
                    # 4) — the only period-independent ingredient the
                    # fixed-point passes need to re-derive P.
                    tauq=xp.asarray(
                        [p.tau * p.repetitions for p in profiles],
                        dtype=float,
                    ),
                )
            )
        self._batch_structure = _BatchStructure(
            app_columns=app_columns,
            processors=processors,
            location=location,
        )
        return self._batch_structure

    def _row_probabilities(
        self, processor: "_ProcessorBatch", row_periods, xp
    ):
        """Definition 4 per batch row: ``tau*q`` over the row's period.

        ``row_periods`` is the ``(u, A)`` slice of the current period
        matrix for the rows being refined; the result is the ``(u, n)``
        blocking-probability matrix of the processor's residents, with
        the same over-1 rejection (and clamp) as the scalar
        :func:`~repro.core.blocking.blocking_probability`.
        """
        period = row_periods[:, processor.app_columns]
        probability = processor.tauq[None, :] / period
        over = probability > 1.0 + 1e-9
        if bool(xp.any(over)):
            row, resident = (int(axis[0]) for axis in xp.nonzero(over))
            raise AnalysisError(
                f"blocking probability "
                f"{float(probability[row, resident]):.4f} exceeds 1: "
                f"actor busy time "
                f"tau*q={float(processor.tauq[resident]):g} exceeds "
                f"period {float(period[row, resident]):g}"
            )
        return xp.minimum(probability, 1.0)

    def _estimate_many_batched(
        self,
        use_cases: Sequence[UseCase],
        iterations: int = 1,
        tolerance: float = 1e-6,
    ) -> List[EstimationResult]:
        """Span-wrapped entry to the array pipeline (:meth:`_run_batched`)."""
        with self._tracer.span(
            "estimator.estimate_many",
            model=self.waiting_model.name,
            use_cases=len(use_cases),
            iterations=iterations,
            batched=True,
        ) as span:
            results = self._run_batched(use_cases, iterations, tolerance)
            if results:
                span.set(passes=max(r.iterations_used for r in results))
            return results

    def _run_batched(
        self,
        use_cases: Sequence[UseCase],
        iterations: int = 1,
        tolerance: float = 1e-6,
    ) -> List[EstimationResult]:
        """The array flavour of :meth:`estimate_many`.

        Produces the same :class:`EstimationResult` values as the scalar
        loop (parity <= 1e-9 relative, asserted by the test suite), with
        ``analysis_seconds`` carrying the *amortized* per-use-case cost
        of the batch.

        ``iterations > 1`` runs the fixed-point refinement on the whole
        batch at once with a per-row convergence mask: each pass
        re-derives every still-active row's blocking probabilities from
        that row's current periods (``tau*q / period`` per resident),
        re-evaluates the waiting kernels for the active rows only, and
        pushes all their response vectors through one
        :meth:`AnalysisEngine.period_for` call per application (batch
        candidate certification via ``solve_many`` under the hood).
        Rows whose periods move less than ``tolerance`` relative freeze
        — keeping the waiting/response values of their final pass, like
        the scalar loop's early break — while the remaining rows keep
        refining, so the wall-clock cost tracks the *slowest* row, not
        the batch size.
        """
        started = _time.perf_counter()
        if not use_cases:
            return []
        self._metric_use_cases.inc(len(use_cases))
        xp = self.backend.xp  # type: ignore[union-attr]
        structure = self._batch_structure_for()
        batch = len(use_cases)
        mask = xp.zeros((batch, len(structure.app_columns)))
        for row, use_case in enumerate(use_cases):
            # select() performs the same unknown-application check the
            # scalar path relies on (and keeps its error message).
            use_case.select(list(self.graphs.values()))
            for app in use_case:
                mask[row, structure.app_columns[app]] = 1.0

        # Row-wise current periods, seeded with isolation (Definition
        # 3); entries of inactive applications are never refined (and
        # never read by the assembly below).
        periods = xp.ones((batch, 1)) * xp.asarray(
            [self.isolation_periods[app] for app in self.graphs],
            dtype=float,
        )[None, :]
        waits: List[object] = [None] * len(structure.processors)
        iterations_used = [1] * batch
        active_rows = xp.ones(batch, dtype=bool)

        for pass_index in range(1, iterations + 1):
            rows = xp.nonzero(active_rows)[0]
            if int(rows.size) == 0:
                break
            # Convergence-mask shrinkage: each pass observes how many
            # rows are still refining, so the histogram shows the decay.
            self._metric_passes.inc()
            self._metric_active_rows.observe(int(rows.size))
            sub_mask = mask[rows]
            for index, processor in enumerate(structure.processors):
                active = sub_mask[:, processor.app_columns]
                inc = active[:, None, :] * processor.other_ok[None, :, :]
                vectors = processor.vectors
                if pass_index > 1:
                    # Later passes re-derive P from the refined periods
                    # (steps 2-4 of Fig. 4 on the contended periods).
                    vectors = vectors.with_probability(
                        self._row_probabilities(
                            processor, periods[rows], xp
                        )
                    )
                waiting = self.waiting_model.waiting_times_batch(
                    vectors, inc, active, xp
                )
                negative = xp.logical_and(waiting < 0, active > 0)
                if bool(xp.any(negative)):
                    row, resident = (
                        int(axis[0]) for axis in xp.nonzero(negative)
                    )
                    app, actor = processor.residents[resident]
                    raise AnalysisError(
                        f"waiting model {self.waiting_model.name!r} "
                        f"returned negative waiting "
                        f"{float(waiting[row, resident])} for "
                        f"{app}.{actor}"
                    )
                if waits[index] is None:
                    waits[index] = waiting
                else:
                    # Frozen rows keep the waiting of their final pass.
                    waits[index][rows] = waiting

            row_converged = xp.ones(batch, dtype=bool)
            for app, graph in self.graphs.items():
                column = structure.app_columns[app]
                rows_of_app = xp.nonzero(
                    active_rows & (mask[:, column] > 0)
                )[0]
                if int(rows_of_app.size) == 0:
                    continue
                names = graph.actor_names
                responses = xp.empty(
                    (int(rows_of_app.size), len(names))
                )
                for slot, actor in enumerate(names):
                    tau = self._base_profiles[(app, actor)].tau
                    where = structure.location.get((app, actor))
                    if where is None:
                        responses[:, slot] = tau
                    else:
                        responses[:, slot] = (
                            tau + waits[where[0]][rows_of_app, where[1]]
                        )
                values = xp.asarray(
                    self.engines[app].period_for(
                        responses, self.backend
                    ),
                    dtype=float,
                )
                current = periods[rows_of_app, column]
                settled = xp.abs(values - current) <= (
                    tolerance * xp.maximum(1.0, xp.abs(values))
                )
                row_converged[rows_of_app] &= settled
                periods[rows_of_app, column] = values
            for row in rows.tolist():
                iterations_used[row] = pass_index
            if pass_index > 1:
                # Mirror the scalar loop: the paper's first pass always
                # completes; convergence can stop refinement only from
                # the second pass on.
                active_rows = active_rows & ~row_converged

        # Python-land assembly works on nested lists (one C-level
        # conversion per processor) instead of per-element numpy reads.
        wait_lists = [w.tolist() for w in waits]
        period_lists = periods.tolist()
        app_columns = structure.app_columns
        locations = structure.location
        taus = {
            key: profile.tau
            for key, profile in self._base_profiles.items()
        }
        actor_names = {
            app: graph.actor_names for app, graph in self.graphs.items()
        }
        elapsed = _time.perf_counter() - started
        per_use_case = elapsed / batch if batch else 0.0
        results: List[EstimationResult] = []
        for row, use_case in enumerate(use_cases):
            waiting_times: Dict[Tuple[str, str], float] = {}
            response_times: Dict[Tuple[str, str], float] = {}
            for app in use_case:
                for actor in actor_names[app]:
                    key = (app, actor)
                    where = locations.get(key)
                    t_wait = (
                        0.0
                        if where is None
                        else wait_lists[where[0]][row][where[1]]
                    )
                    waiting_times[key] = t_wait
                    response_times[key] = taus[key] + t_wait
            results.append(
                EstimationResult(
                    use_case=use_case,
                    model_name=self.waiting_model.name,
                    periods={
                        app: period_lists[row][app_columns[app]]
                        for app in use_case
                    },
                    isolation_periods={
                        app: self.isolation_periods[app]
                        for app in use_case
                    },
                    waiting_times=waiting_times,
                    response_times=response_times,
                    iterations_used=iterations_used[row],
                    analysis_seconds=per_use_case,
                )
            )
        return results


@dataclass
class _ProcessorBatch:
    """One shared processor's residents lowered into kernel arrays."""

    residents: List[Tuple[str, str]]
    vectors: ResidentVectors
    app_columns: object  # (n,) int array: resident -> mask column
    other_ok: object  # (n, n) 0/1: who may delay whom
    tauq: object = None  # (n,) array: tau * q per resident (Def. 4)


@dataclass
class _BatchStructure:
    """Everything use-case independent about the batched pipeline."""

    app_columns: Dict[str, int]
    processors: List[_ProcessorBatch]
    location: Dict[Tuple[str, str], Tuple[int, int]]


def _same_analysis_graph(first: SDFGraph, second: SDFGraph) -> bool:
    """Whether two graphs are interchangeable for period analysis.

    A shared engine built from a *different* design variant (same
    application name, scaled timings or re-wired channels) would
    silently answer for the wrong graph — compare the analysis-relevant
    content, not object identity, so re-deserialized but equal graphs
    stay accepted.
    """
    if first is second:
        return True
    if first.actor_names != second.actor_names:
        return False
    if first.execution_times() != second.execution_times():
        return False
    def channel_signature(graph: SDFGraph):
        return sorted(
            (
                c.source,
                c.target,
                c.production_rate,
                c.consumption_rate,
                c.initial_tokens,
            )
            for c in graph.channels
        )
    return channel_signature(first) == channel_signature(second)


def estimate_use_case(
    graphs: Sequence[SDFGraph],
    use_case: Optional[UseCase] = None,
    mapping: Optional[Mapping] = None,
    waiting_model: WaitingModel | str = "second_order",
    iterations: int = 1,
) -> EstimationResult:
    """One-shot convenience wrapper around :class:`ProbabilisticEstimator`."""
    estimator = ProbabilisticEstimator(
        graphs, mapping=mapping, waiting_model=waiting_model
    )
    return estimator.estimate(use_case=use_case, iterations=iterations)
