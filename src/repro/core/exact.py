"""The exact n-actor waiting-time formula (Eq. 4 of the paper).

``waiting_time_exact(others)`` answers: *when an actor arrives at its
processor, how long does it expect to wait for the actors in ``others``?*
Underlying queueing model (Section 3.2):

* each other actor ``a_i`` independently occupies the node with its
  blocking probability ``P_i``;
* among the actors present, every arrival order is equally likely, so
  each is at the head of the queue with equal probability;
* the head actor is half-way through on average (``mu = tau/2``), every
  queued actor still needs its full ``tau = 2 mu``.

Eq. 4 is the closed form of that model::

    mu.P(a1..an) = sum_i mu_i P_i (1 + sum_{j=1}^{n-1} (-1)^(j+1)/(j+1)
                                       e_j(P_1..P_{i-1}, P_{i+1}..P_n))

with ``e_j`` the elementary symmetric polynomials.  The module also ships
:func:`waiting_time_enumeration`, a direct ``O(2^n)`` evaluation of the
queueing model, kept as an independent oracle: the test suite checks both
agree to machine precision, standing in for the proofs in the paper's
unavailable technical report [8].
"""

from __future__ import annotations

from typing import Sequence

from repro.core.blocking import ActorProfile, ResidentVectors
from repro.core.symmetric import elementary_symmetric_all


def waiting_time_exact(others: Sequence[ActorProfile]) -> float:
    """Expected waiting time caused by ``others`` sharing the node (Eq. 4).

    Complexity ``O(n^2)`` arithmetic operations with the symmetric-
    polynomial recurrence (the paper quotes ``O(n.n^n)`` for a naive
    expansion; the combinatorics are identical).
    """
    n = len(others)
    if n == 0:
        return 0.0
    total = 0.0
    for i, own in enumerate(others):
        other_probabilities = [
            profile.probability for j, profile in enumerate(others) if j != i
        ]
        coefficients = elementary_symmetric_all(other_probabilities)
        series = 1.0
        sign = 1.0
        for j in range(1, n):
            series += sign * coefficients[j] / (j + 1)
            sign = -sign
        total += own.mu * own.probability * series
    return total


def waiting_time_enumeration(others: Sequence[ActorProfile]) -> float:
    """Direct evaluation of the queueing model behind Eq. 4 (test oracle).

    Enumerates every subset ``S`` of present actors; the arriving actor
    waits for the head's residual time plus the full execution time of
    everyone queued behind the head::

        E[wait] = sum_S  P(S present) * (1/|S|) *
                  sum_{head in S} ( mu_head + sum_{s != head} tau_s )

    Exponential in ``len(others)``; use only for validation.
    """
    n = len(others)
    if n == 0:
        return 0.0
    total = 0.0
    for mask in range(1, 2**n):
        present = [
            others[i] for i in range(n) if mask & (1 << i)
        ]
        probability = 1.0
        for i in range(n):
            if mask & (1 << i):
                probability *= others[i].probability
            else:
                probability *= 1.0 - others[i].probability
        if probability == 0.0:
            continue
        size = len(present)
        scenario_wait = 0.0
        sum_tau = sum(p.tau for p in present)
        for head in present:
            scenario_wait += head.mu + (sum_tau - head.tau)
        total += probability * scenario_wait / size
    return total


class ExactWaitingModel:
    """Eq. 4 as a :class:`~repro.core.waiting.WaitingModel`."""

    name = "exact"
    complexity = "O(n^2) per actor"
    #: The batch kernel accepts per-row (U, n) blocking probabilities
    #: (fixed-point refinement); see supports_rowwise_batch.
    batch_rowwise = True

    def waiting_time(
        self, own: ActorProfile, others: Sequence[ActorProfile]
    ) -> float:
        """Expected waiting of ``own`` given co-mapped ``others``."""
        return waiting_time_exact(others)

    def waiting_times_batch(
        self, vectors: ResidentVectors, inc, own_active, xp
    ):
        """Batched Eq. 4: the untruncated series for every pair.

        Imported lazily for the same reason as in
        :mod:`repro.core.waiting`: the batched series lives next to the
        approximation models, which import this module.
        """
        from repro.core.approximation import batched_waiting_series

        return batched_waiting_series(vectors, inc, None, xp)
