"""Pluggable arbitration-model registry.

The paper's probabilistic contention framework (Eq. 4-8) is
arbitration-agnostic: any policy whose expected (or worst-case) waiting
can be written over the co-mapped actors' blocking profiles fits the
:class:`~repro.core.waiting.WaitingModel` protocol, and any queueing
discipline fits the DES :class:`~repro.simulation.arbiter.Arbiter`
interface.  Historically both families were closed enumerations inside
``make_waiting_model`` / ``make_arbiter``; this module opens them up:

* :data:`WAITING_MODELS` — estimation techniques, registered under the
  exact specification strings the CLI, the sweep store and the service
  protocol have always used (``"exact"``, ``"second_order"``, ...);
* :data:`ARBITERS` — DES arbitration policies (``"fcfs"``,
  ``"round_robin"``, ...).

Every entry carries *metadata*, not just a factory:

* ``semantics`` — ``"mean"`` (the estimate targets the expected value;
  the conformance harness checks it lands within ``tolerance`` of the
  simulated period) or ``"conservative"`` (a sound bound; conformance
  checks it upper-bounds the simulated period);
* ``supports_batch`` — whether instances ship the vectorized
  ``waiting_times_batch`` kernel;
* ``arbiter`` — the name of the matching DES policy, or ``None`` when
  the model's assumptions cannot be simulated (TDMA needs preemptive
  slicing the non-preemptive engine does not model);
* ``parameters`` — the ``name:argument`` spec schema, e.g.
  ``order:M`` or ``weighted_round_robin:A=2,B=1``.

Third-party models plug in without touching core::

    from repro.core.registry import WAITING_MODELS, WaitingModelInfo

    WAITING_MODELS.register(WaitingModelInfo(
        name="my_model", factory=lambda: MyModel(),
        summary="...", semantics="mean", tolerance=0.3,
        supports_batch=False, arbiter="fcfs",
    ))

and from then on ``repro sweep --model my_model``, the estimation
service, and ``repro conformance`` all resolve it.  Registration is
process-wide; tests use :meth:`Registry.temporary` to keep entries
scoped.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterator,
    Mapping,
    Optional,
    Tuple,
)

from repro.core.specs import parse_spec
from repro.exceptions import AnalysisError, MappingError

#: Accepted ``semantics`` declarations.
MODEL_SEMANTICS: Tuple[str, ...] = ("mean", "conservative")


@dataclass(frozen=True)
class WaitingModelInfo:
    """One registered estimation technique plus its declared contract.

    Attributes
    ----------
    name:
        Canonical registry key (also the CLI/store/protocol spelling).
    factory:
        ``factory()`` builds a default instance; entries with
        ``takes_argument=True`` are built as ``factory(argument)`` from
        a ``name:argument`` specification.
    summary:
        One-line description (the ``repro models`` table).
    semantics:
        ``"mean"`` or ``"conservative"`` — what the conformance harness
        asserts against the discrete-event simulator.
    tolerance:
        Mean models: the declared relative band around the simulated
        period; must be ``None`` for conservative models (their check
        is one-sided).
    supports_batch:
        Whether instances implement ``waiting_times_batch``.
    arbiter:
        Name of the matching DES arbitration policy in
        :data:`ARBITERS`, or ``None`` when the model's platform
        assumptions cannot be simulated by the engine.
    parameters:
        Specification-argument schema, ``name -> description``.
        An entry named ``weights`` signals the conformance harness to
        exercise the model under seeded per-application weights.
    takes_argument:
        Whether ``name:argument`` specifications are accepted.
    requires_argument:
        Whether the bare ``name`` (no argument) is invalid — such
        entries cannot be auto-instantiated by the conformance harness.
    aliases:
        Additional accepted spellings.
    """

    name: str
    factory: Callable[..., object]
    summary: str
    semantics: str
    tolerance: Optional[float] = None
    supports_batch: bool = True
    arbiter: Optional[str] = None
    parameters: Mapping[str, str] = field(default_factory=dict)
    takes_argument: bool = False
    requires_argument: bool = False
    aliases: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.semantics not in MODEL_SEMANTICS:
            raise AnalysisError(
                f"model {self.name!r} declares semantics "
                f"{self.semantics!r}; expected one of "
                f"{', '.join(MODEL_SEMANTICS)}"
            )
        if self.semantics == "mean":
            if self.tolerance is None or not self.tolerance > 0:
                raise AnalysisError(
                    f"mean model {self.name!r} must declare a positive "
                    f"conformance tolerance, got {self.tolerance!r}"
                )
        elif self.tolerance is not None:
            raise AnalysisError(
                f"conservative model {self.name!r} must not declare a "
                "tolerance (its conformance check is one-sided)"
            )
        if self.requires_argument and not self.takes_argument:
            raise AnalysisError(
                f"model {self.name!r} requires an argument but does "
                "not take one"
            )


@dataclass(frozen=True)
class ArbiterInfo:
    """One registered DES arbitration policy.

    ``factory(members, context)`` builds an
    :class:`~repro.simulation.arbiter.Arbiter` for one processor;
    ``context`` is the :class:`~repro.simulation.arbiter.ArbiterContext`
    carrying per-member application, priority and weight metadata.
    """

    name: str
    factory: Callable[..., object]
    summary: str
    preemptive: bool = False
    parameters: Mapping[str, str] = field(default_factory=dict)
    aliases: Tuple[str, ...] = ()


class Registry:
    """Name -> info map with alias resolution and lazy builtin loading.

    Lookups are case-insensitive (keys are stored case-folded, the
    info's original spelling is preserved for display), matching the
    spec-string parser's normalization — a model registered as
    ``MyModel`` is reachable as ``--model mymodel`` and vice versa.

    ``loader`` imports the modules that register the builtin entries; it
    runs at most once, on first lookup, so the registry module itself
    stays import-light (``repro.core`` never has to import the
    simulation layer just to *define* the arbiter registry).
    """

    def __init__(
        self,
        kind: str,
        error: type,
        loader: Optional[Callable[[], None]] = None,
        plural: Optional[str] = None,
    ) -> None:
        self.kind = kind
        self.plural = plural if plural is not None else f"{kind}s"
        self.error = error
        self._loader = loader
        self._loaded = loader is None
        self._lock = threading.Lock()
        self._infos: Dict[str, object] = {}
        self._aliases: Dict[str, str] = {}

    # ------------------------------------------------------------------
    def _ensure_loaded(self) -> None:
        if self._loaded:
            return
        with self._lock:
            if self._loaded:
                return
            # Mark first: the loader imports modules whose import-time
            # registrations call back into this registry.
            self._loaded = True
            assert self._loader is not None
            self._loader()

    def register(self, info, replace: bool = False) -> None:
        """Add ``info``; ``replace=False`` refuses to shadow a name."""
        self._ensure_loaded()
        own_key = info.name.lower()
        for name in (info.name, *info.aliases):
            key = name.lower()
            canonical = self._aliases.get(key, key)
            if (
                not replace
                and (canonical in self._infos or key in self._infos)
                and canonical != own_key
            ):
                raise self.error(
                    f"{self.kind} {name!r} is already registered "
                    f"(to {canonical!r}); pass replace=True to shadow it"
                )
        if not replace and own_key in self._infos:
            raise self.error(
                f"{self.kind} {info.name!r} is already registered; "
                "pass replace=True to shadow it"
            )
        self._infos[own_key] = info
        # A replace=True registration may take over a name that was an
        # alias of another entry; drop the alias so lookups reach the
        # new canonical entry (get() resolves aliases first).
        self._aliases.pop(own_key, None)
        for alias in info.aliases:
            self._aliases[alias.lower()] = own_key

    def unregister(self, name: str) -> None:
        """Remove the entry registered under ``name`` (not an alias)."""
        self._ensure_loaded()
        info = self._infos.pop(name.lower(), None)
        if info is None:
            raise self.error(
                f"no {self.kind} registered under {name!r}"
            )
        for alias in info.aliases:
            self._aliases.pop(alias.lower(), None)

    @contextmanager
    def temporary(self, info, replace: bool = False) -> Iterator[None]:
        """Scoped registration (tests): register, yield, unregister."""
        self._ensure_loaded()
        key = info.name.lower()
        shadowed = self._infos.get(key)
        # The name may also shadow another entry's *alias* (only
        # possible with replace=True); remember it for restoration.
        shadowed_alias = self._aliases.get(key)
        if shadowed is not None and not replace:
            raise self.error(
                f"{self.kind} {info.name!r} is already registered; "
                "pass replace=True to shadow it temporarily"
            )
        self.register(info, replace=replace)
        try:
            yield
        finally:
            self.unregister(info.name)
            if shadowed is not None:
                self.register(shadowed, replace=True)
            elif (
                shadowed_alias is not None
                and shadowed_alias in self._infos
            ):
                self._aliases[key] = shadowed_alias

    # ------------------------------------------------------------------
    def names(self) -> Tuple[str, ...]:
        """Canonical registered names (original spelling), sorted."""
        self._ensure_loaded()
        return tuple(
            sorted(info.name for info in self._infos.values())
        )

    def infos(self) -> Tuple[object, ...]:
        """All registered infos, in canonical-name order."""
        self._ensure_loaded()
        by_name = {
            info.name: info for info in self._infos.values()
        }
        return tuple(by_name[name] for name in self.names())

    def __contains__(self, name: object) -> bool:
        self._ensure_loaded()
        if not isinstance(name, str):
            return False
        key = name.lower()
        return key in self._infos or key in self._aliases

    def get(self, name: str):
        """Info registered under ``name`` (case-insensitive; aliases
        resolve)."""
        self._ensure_loaded()
        key = name.lower() if isinstance(name, str) else name
        canonical = self._aliases.get(key, key)
        try:
            return self._infos[canonical]
        except (KeyError, TypeError, AttributeError):
            raise self.error(
                f"unknown {self.kind} {name!r}; registered "
                f"{self.plural}: {', '.join(self.names())}"
            ) from None


def _load_builtin_waiting_models() -> None:
    # Importing the defining modules triggers their registrations.
    import repro.core.waiting  # noqa: F401


def _load_builtin_arbiters() -> None:
    import repro.simulation.arbiter  # noqa: F401


#: The process-wide waiting-model registry.
WAITING_MODELS = Registry(
    kind="waiting model",
    error=AnalysisError,
    loader=_load_builtin_waiting_models,
)

#: The process-wide DES-arbiter registry.
ARBITERS = Registry(
    kind="arbitration policy",
    error=MappingError,
    loader=_load_builtin_arbiters,
    plural="arbitration policies",
)


def parse_model_spec(specification: str) -> Tuple[str, Optional[str]]:
    """Split ``"name"`` / ``"name:argument"``, normalized.

    Long-standing alias of :func:`repro.core.specs.parse_spec`, the
    single owner of the grammar.
    """
    return parse_spec(specification)


def create_waiting_model(specification: str):
    """Instantiate a registered waiting model from a spec string."""
    name, argument = parse_model_spec(specification)
    info = WAITING_MODELS.get(name)
    if argument is not None and not info.takes_argument:
        raise AnalysisError(
            f"waiting model {info.name!r} takes no argument, got "
            f"{specification!r}"
        )
    if argument is None and info.requires_argument:
        raise AnalysisError(
            f"waiting model {info.name!r} requires an argument "
            f"({', '.join(info.parameters) or 'see its parameters'}); "
            f"e.g. {info.name}:" + next(iter(info.parameters), "ARG")
        )
    if info.takes_argument:
        return info.factory(argument)
    return info.factory()


def model_info_for(specification: str) -> WaitingModelInfo:
    """The :class:`WaitingModelInfo` a spec string resolves to."""
    name, _ = parse_model_spec(specification)
    return WAITING_MODELS.get(name)


def validate_model_spec(
    specification: str,
    applications: Optional[Tuple[str, ...]] = None,
) -> WaitingModelInfo:
    """Check a full specification — name *and* argument — up front.

    Instantiates the model once (the only way to exercise the
    factory's argument parsing, e.g. ``order:x`` or ``wrr:A=0``) and
    discards it, so services can fail in the caller instead of inside
    a worker process.  Unknown names fail with the registered
    catalogue listed (the :meth:`Registry.get` message).

    When the caller knows the application set, passing ``applications``
    also runs the model's own ``check_applications`` hook (e.g. WRR
    weights naming apps outside the gallery) — this is the one eager
    validation path shared by the sweep service, the service protocol
    and the placement search, so a bad ``wrr:`` spec fails at
    submission instead of inside a worker traceback.  Returns the
    resolved info.
    """
    model = create_waiting_model(specification)
    if applications is not None:
        check = getattr(model, "check_applications", None)
        if callable(check):
            check(tuple(applications))
    return model_info_for(specification)


def render_model_table() -> str:
    """The registry as a text table (``repro models``, README)."""
    from repro.experiments.reporting import render_table

    rows = []
    for info in WAITING_MODELS.infos():
        rows.append(
            [
                info.name,
                info.semantics
                + (
                    f" (tol {info.tolerance:g})"
                    if info.tolerance is not None
                    else ""
                ),
                "yes" if info.supports_batch else "no",
                info.arbiter if info.arbiter is not None else "-",
                info.summary,
            ]
        )
    return render_table(
        ["model", "semantics", "batch", "arbiter", "summary"],
        rows,
        title="Registered contention models",
    )
