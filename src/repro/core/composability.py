"""The composability algebra (Eq. 6–9, Section 4.2).

Two actors ``a`` and ``b`` sharing a node can be merged into a single
aggregate actor whose blocking probability and expected-delay contribution
approximate theirs combined::

    P_ab          = P_a (+) P_b = P_a + P_b - P_a P_b            (Eq. 6)
    mu_ab P_ab    = mu_a P_a (x) mu_b P_b
                  = mu_a P_a (1 + P_b/2) + mu_b P_b (1 + P_a/2)  (Eq. 7)

``(+)`` is exact and associative (it is the union of independent events);
``(x)`` is associative only up to second order, so the fold order is fixed
(left to right in deterministic actor order) for reproducibility.  The
inverses

    P_rest        = (P_total - P_b) / (1 - P_b)                  (Eq. 8)
    mu_rest P_rest = (mu_total P_total
                      - mu_b P_b (1 + P_rest/2)) / (1 + P_b/2)   (Eq. 9)

remove one actor from an aggregate, enabling the O(n) analysis and the
O(1) incremental updates used for run-time admission control: keep one
aggregate per processor, and derive any actor's waiting time by removing
just that actor from the aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.blocking import ActorProfile, ResidentVectors
from repro.exceptions import AnalysisError

_PROBABILITY_CEILING = 1.0 - 1e-12


@dataclass(frozen=True)
class Composite:
    """An aggregate pseudo-actor: ``P`` and ``mu*P`` of a set of actors."""

    probability: float
    waiting_product: float

    @classmethod
    def empty(cls) -> "Composite":
        """Aggregate of no actors: never blocks, causes no waiting."""
        return cls(probability=0.0, waiting_product=0.0)

    @classmethod
    def of_profile(cls, profile: ActorProfile) -> "Composite":
        return cls(
            probability=profile.probability,
            waiting_product=profile.mu * profile.probability,
        )

    @property
    def mu(self) -> float:
        """Average blocking time of the aggregate (``mu = muP / P``)."""
        if self.probability == 0.0:
            return 0.0
        return self.waiting_product / self.probability


def prob_compose(pa: float, pb: float) -> float:
    """``P_a (+) P_b`` (Eq. 6): probability that *either* actor blocks."""
    return pa + pb - pa * pb


def prob_decompose(p_total: float, pb: float) -> float:
    """Inverse of :func:`prob_compose` (Eq. 8): remove ``pb`` from the
    aggregate.  Undefined for ``pb = 1`` (the paper notes the same
    restriction)."""
    if pb >= _PROBABILITY_CEILING:
        raise AnalysisError(
            "cannot decompose an actor with blocking probability 1 "
            "(Eq. 8 requires P_b != 1)"
        )
    return (p_total - pb) / (1.0 - pb)


def compose(x: Composite, y: Composite) -> Composite:
    """``(x, y) -> x (+)/(x) y`` — merge two aggregates (Eq. 6 and 7)."""
    return Composite(
        probability=prob_compose(x.probability, y.probability),
        waiting_product=(
            x.waiting_product * (1.0 + y.probability / 2.0)
            + y.waiting_product * (1.0 + x.probability / 2.0)
        ),
    )


def decompose(total: Composite, y: Composite) -> Composite:
    """Remove aggregate ``y`` from ``total`` (Eq. 8 and 9).

    ``decompose(compose(x, y), y)`` returns ``x`` exactly (up to floating
    point), a property the test suite verifies.
    """
    rest_probability = prob_decompose(total.probability, y.probability)
    rest_waiting = (
        total.waiting_product
        - y.waiting_product * (1.0 + rest_probability / 2.0)
    ) / (1.0 + y.probability / 2.0)
    return Composite(
        probability=rest_probability, waiting_product=rest_waiting
    )


def compose_all(
    items: Iterable[ActorProfile | Composite],
) -> Composite:
    """Left-fold of :func:`compose` over profiles/aggregates."""
    result = Composite.empty()
    for item in items:
        if isinstance(item, ActorProfile):
            item = Composite.of_profile(item)
        result = compose(result, item)
    return result


def batched_waiting_composition(
    vectors: ResidentVectors, inc, xp
):
    """Eq. 6/7 folds for every ``(use-case, own actor)`` pair at once.

    ``inc[u, o, i] = 1`` iff resident ``i`` is an active contender of
    resident ``o`` in batch row ``u``.  The fold walks the residents in
    processor order — exactly the scalar ``compose_all`` order — and
    each step applies :func:`compose`'s arithmetic elementwise, skipping
    excluded residents, so every ``(u, o)`` entry reproduces the scalar
    *direct* left-fold bit for bit.  The incremental variant's
    compose-own-last-then-decompose round trip inverts the same fold
    only up to float cancellation in :func:`decompose`'s divisions, so
    for it this kernel matches the scalar path to ~1e-15 relative —
    inside the backend parity contract (1e-9), but not bit-identical;
    anything byte-determinism-sensitive must stay on the scalar path.

    Returns an array of shape ``(U, n)`` of ``mu.P`` waiting products.
    """
    U, n, _ = inc.shape
    rowwise = getattr(vectors.probability, "ndim", 1) > 1
    waiting = xp.zeros((U, n))
    probability = xp.zeros((U, n))
    for k in range(n):
        included = inc[:, :, k] > 0
        if rowwise:
            # Per-row probabilities: (U, 1) columns broadcast over the
            # owner axis, same fold arithmetic per row.
            p_k = vectors.probability[:, k][:, None]
            wp_k = vectors.waiting_product[:, k][:, None]
        else:
            p_k = float(vectors.probability[k])
            wp_k = float(vectors.waiting_product[k])
        waiting = xp.where(
            included,
            waiting * (1.0 + p_k / 2.0)
            + wp_k * (1.0 + probability / 2.0),
            waiting,
        )
        probability = xp.where(
            included,
            probability + p_k - probability * p_k,
            probability,
        )
    return waiting


class CompositionWaitingModel:
    """Composability-based waiting model (Section 4.2).

    ``incremental=False`` composes the *other* actors directly (O(n) per
    actor, O(n^2) per node).  ``incremental=True`` composes the node once
    and removes the requesting actor with the inverse operators (O(n) per
    node + O(1) per actor) — the complexity the paper advertises for the
    inverse formulation.  Both produce the same estimate up to the
    second-order associativity error of ``(x)``.
    """

    complexity = "O(n)"
    #: The batch kernel accepts per-row (U, n) blocking probabilities.
    batch_rowwise = True

    def __init__(self, incremental: bool = False) -> None:
        self.incremental = incremental
        self.name = "composability" + ("-incremental" if incremental else "")

    def waiting_time(
        self, own: ActorProfile, others: Sequence[ActorProfile]
    ) -> float:
        if not others:
            return 0.0
        if not self.incremental:
            return compose_all(others).waiting_product
        # Compose ``own`` last: decomposition inverts the most recent
        # composition exactly, so the incremental estimate matches the
        # direct one bit-for-bit (the ``(x)`` operator is only
        # associative to second order, so the fold order matters).
        total = compose_all([*others, own])
        return decompose(total, Composite.of_profile(own)).waiting_product

    def waiting_times_batch(
        self, vectors: ResidentVectors, inc, own_active, xp
    ):
        """Batched Eq. 6/7 fold (shared by both variants — see
        :func:`batched_waiting_composition`).

        The incremental variant enforces the scalar path's Eq. 8
        restriction first: an *active* actor with blocking probability
        1 and at least one active contender cannot be decomposed out of
        its aggregate, so the batch raises exactly where the scalar
        loop would.
        """
        if self.incremental and bool(
            xp.any(vectors.probability >= _PROBABILITY_CEILING)
        ):
            at_ceiling = vectors.probability >= _PROBABILITY_CEILING
            if getattr(at_ceiling, "ndim", 1) == 1:
                at_ceiling = at_ceiling[None, :]
            affected = (
                (own_active > 0) & at_ceiling & (inc.sum(axis=2) > 0)
            )
            if bool(xp.any(affected)):
                raise AnalysisError(
                    "cannot decompose an actor with blocking "
                    "probability 1 (Eq. 8 requires P_b != 1)"
                )
        return batched_waiting_composition(vectors, inc, xp)
