"""Pluggable placement strategies over one :class:`SearchSpace`.

Every strategy is a function ``(space, evaluator, options) ->``
:class:`SearchOutcome` registered in :data:`STRATEGIES`; all of them
share three properties:

* **batched scoring** — candidates are handed to the
  :class:`~repro.search.evaluate.CandidateEvaluator` in groups, so one
  strategy step is one vectorized solve per application, never a
  per-candidate scalar loop;
* **memoized scoring** — a candidate revisited by a walk or a later
  restart is answered from the run's memo without solving;
* **seeded determinism** — the stochastic strategies draw exclusively
  from one ``random.Random(seed)``, rank candidates with the
  deterministic :func:`~repro.search.objective.rank_key` order, and
  record no wall-clock anywhere, so the same seed yields a
  byte-identical :class:`~repro.search.result.PlacementResult`.

Strategies:

``exhaustive``
    Scan the full space in enumeration order (refuses spaces larger
    than ``max_candidates``).  The ground truth the parity suite
    measures the others against.
``greedy``
    Coordinate descent from the canonical default candidate: per
    dimension, score every alternative choice in one batch and move
    when strictly better; repeat until a full sweep yields no move.
``local_search``
    Seeded multi-restart hill climbing over one-dimension neighbors.
``evolutionary``
    A small generational loop: tournament selection, uniform
    crossover, per-dimension mutation, elitism.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import AnalysisError
from repro.search.evaluate import CandidateEvaluator, EvaluatedCandidate
from repro.search.result import TraceEntry
from repro.search.space import SearchSpace
from repro.telemetry import get_registry, get_tracer


@dataclass(frozen=True)
class StrategyOptions:
    """Knobs shared by all strategies (each reads what it needs)."""

    seed: Optional[int] = None
    #: Exhaustive refuses spaces larger than this.
    max_candidates: int = 4096
    #: Evaluation batch size of the exhaustive scan.
    batch_size: int = 64
    #: Restarts of ``local_search`` (the first starts from the default
    #: candidate, the rest from seeded random points).
    restarts: int = 3
    #: Step cap per hill-climb / sweep cap of ``greedy``.
    max_steps: int = 32
    #: Population size and generation count of ``evolutionary``.
    population: int = 8
    generations: int = 6
    #: Elites carried over per generation.
    elites: int = 2


@dataclass(frozen=True)
class SearchOutcome:
    """What a strategy returns to :func:`repro.search.place.place`."""

    best: EvaluatedCandidate
    evaluated: int
    steps: int
    trace: Tuple[TraceEntry, ...]


@dataclass
class _Run:
    """Shared per-run machinery: memoized batched scoring + trace."""

    space: SearchSpace
    evaluator: CandidateEvaluator
    memo: Dict[str, EvaluatedCandidate] = field(default_factory=dict)
    trace: List[TraceEntry] = field(default_factory=list)
    steps: int = 0

    def score(
        self, index_tuples: Sequence[Tuple[int, ...]]
    ) -> List[EvaluatedCandidate]:
        """Score index tuples; solves only the not-yet-seen ones."""
        decoded = [self.space.decode(indices) for indices in index_tuples]
        fresh = []
        fresh_keys = set()
        for candidate in decoded:
            if candidate.key not in self.memo and (
                candidate.key not in fresh_keys
            ):
                fresh.append(candidate)
                fresh_keys.add(candidate.key)
        for evaluated in self.evaluator.evaluate(fresh):
            self.memo[evaluated.candidate.key] = evaluated
        return [self.memo[candidate.key] for candidate in decoded]

    def record(self, event: str, evaluated: EvaluatedCandidate) -> None:
        self.trace.append(
            TraceEntry(
                step=self.steps,
                event=event,
                candidate=evaluated.candidate.key,
                feasible=evaluated.feasible,
                score=evaluated.score,
            )
        )

    def outcome(self, best: EvaluatedCandidate) -> SearchOutcome:
        return SearchOutcome(
            best=best,
            evaluated=len(self.memo),
            steps=self.steps,
            trace=tuple(self.trace),
        )


def _better(
    challenger: EvaluatedCandidate, incumbent: Optional[EvaluatedCandidate]
) -> bool:
    return incumbent is None or challenger.rank < incumbent.rank


def _best_of(batch: Sequence[EvaluatedCandidate]) -> EvaluatedCandidate:
    return min(batch, key=lambda evaluated: evaluated.rank)


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
def exhaustive(
    space: SearchSpace,
    evaluator: CandidateEvaluator,
    options: StrategyOptions,
) -> SearchOutcome:
    if space.size > options.max_candidates:
        raise AnalysisError(
            f"search space has {space.size} candidates, above the "
            f"exhaustive cap of {options.max_candidates}; use greedy, "
            f"local_search or evolutionary"
        )
    run = _Run(space, evaluator)
    best: Optional[EvaluatedCandidate] = None
    batch: List[Tuple[int, ...]] = []
    tuples = list(space.index_tuples())
    for start in range(0, len(tuples), max(1, options.batch_size)):
        batch = tuples[start:start + max(1, options.batch_size)]
        run.steps += 1
        for evaluated in run.score(batch):
            if _better(evaluated, best):
                best = evaluated
                run.record("improve", evaluated)
    assert best is not None  # the space is never empty
    return run.outcome(best)


def greedy(
    space: SearchSpace,
    evaluator: CandidateEvaluator,
    options: StrategyOptions,
) -> SearchOutcome:
    run = _Run(space, evaluator)
    current_indices = space.default_indices()
    current = run.score([current_indices])[0]
    run.record("start", current)
    for _ in range(max(1, options.max_steps)):
        run.steps += 1
        improved = False
        for position, dimension in enumerate(space.dimensions):
            alternatives = [
                current_indices[:position]
                + (choice,)
                + current_indices[position + 1:]
                for choice in range(len(dimension))
                if choice != current_indices[position]
            ]
            if not alternatives:
                continue
            scored = run.score(alternatives)
            champion_at, champion = min(
                enumerate(scored), key=lambda pair: pair[1].rank
            )
            if _better(champion, current):
                current = champion
                current_indices = alternatives[champion_at]
                run.record("improve", current)
                improved = True
        if not improved:
            break
    return run.outcome(current)


def local_search(
    space: SearchSpace,
    evaluator: CandidateEvaluator,
    options: StrategyOptions,
) -> SearchOutcome:
    rng = random.Random(options.seed)
    run = _Run(space, evaluator)
    best: Optional[EvaluatedCandidate] = None
    for restart in range(max(1, options.restarts)):
        indices = (
            space.default_indices()
            if restart == 0
            else space.random_indices(rng)
        )
        current = run.score([indices])[0]
        run.record("restart", current)
        for _ in range(max(1, options.max_steps)):
            run.steps += 1
            neighbors = list(space.neighbors(indices))
            if not neighbors:
                break
            scored = run.score(neighbors)
            champion_at, champion = min(
                enumerate(scored), key=lambda pair: pair[1].rank
            )
            if not _better(champion, current):
                break
            current = champion
            indices = neighbors[champion_at]
            run.record("improve", current)
        if _better(current, best):
            best = current
    assert best is not None
    return run.outcome(best)


def evolutionary(
    space: SearchSpace,
    evaluator: CandidateEvaluator,
    options: StrategyOptions,
) -> SearchOutcome:
    rng = random.Random(options.seed)
    run = _Run(space, evaluator)
    size = max(2, options.population)
    population = [space.default_indices()]
    while len(population) < size:
        population.append(space.random_indices(rng))
    scored = run.score(population)
    best = _best_of(scored)
    run.record("generation", best)

    def tournament() -> Tuple[int, ...]:
        first = rng.randrange(size)
        second = rng.randrange(size)
        return population[
            first if scored[first].rank <= scored[second].rank else second
        ]

    for _ in range(max(1, options.generations)):
        run.steps += 1
        elite_positions = sorted(
            range(size), key=lambda i: scored[i].rank
        )[:max(0, options.elites)]
        offspring = [population[i] for i in elite_positions]
        while len(offspring) < size:
            child = space.crossover(tournament(), tournament(), rng)
            offspring.append(space.mutate(child, rng))
        population = offspring
        scored = run.score(population)
        generation_best = _best_of(scored)
        if _better(generation_best, best):
            best = generation_best
        run.record("generation", generation_best)
    return run.outcome(best)


#: The strategy registry behind ``repro place --strategy`` and the
#: service verb's ``strategy`` field.
STRATEGIES: Dict[
    str,
    Callable[[SearchSpace, CandidateEvaluator, StrategyOptions], SearchOutcome],
] = {
    "exhaustive": exhaustive,
    "greedy": greedy,
    "local_search": local_search,
    "evolutionary": evolutionary,
}


def run_strategy(
    name: str,
    space: SearchSpace,
    evaluator: CandidateEvaluator,
    options: Optional[StrategyOptions] = None,
) -> SearchOutcome:
    """Look up and run one strategy (with telemetry around it)."""
    try:
        strategy = STRATEGIES[name]
    except KeyError:
        raise AnalysisError(
            f"unknown strategy {name!r} "
            f"(choose from {', '.join(sorted(STRATEGIES))})"
        ) from None
    if options is None:
        options = StrategyOptions()
    registry = get_registry()
    registry.counter(
        "repro_search_runs_total",
        "Placement searches by strategy",
        strategy=name,
    ).inc()
    with get_tracer().span(
        "search.run", strategy=name, space=space.size
    ):
        outcome = strategy(space, evaluator, options)
    registry.counter(
        "repro_search_steps_total", "Strategy steps taken"
    ).inc(outcome.steps)
    return outcome
