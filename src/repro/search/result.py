"""The placement answer: :class:`PlacementResult` and its trace.

A search returns one value that is both the *decision* (which mapping,
which priorities, which weight vector, predicted periods) and the
*evidence* (how many candidates were evaluated, the improvement trace).
The whole thing is JSON-serializable and deliberately free of wall-clock
fields: a seeded search must produce **byte-identical**
:meth:`PlacementResult.to_json_str` output on every run, which is what
the determinism suite pins and what lets the fleet router treat the
``place`` verb as idempotent (any shard may answer; retries are safe).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class TraceEntry:
    """One strategy event: a batch scored, a move taken, a restart."""

    step: int
    event: str
    candidate: str
    feasible: bool
    score: float

    def to_json(self) -> Dict[str, object]:
        return {
            "step": self.step,
            "event": self.event,
            "candidate": self.candidate,
            "feasible": self.feasible,
            "score": self.score,
        }


@dataclass(frozen=True)
class ChosenPlacement:
    """The winning candidate, fully decoded."""

    candidate: str
    mapping: str
    priorities: Dict[str, float]
    weights: Dict[str, int]
    model: str
    periods: Dict[str, float]
    objective_value: float
    violations: Dict[str, float]

    def to_json(self) -> Dict[str, object]:
        return {
            "candidate": self.candidate,
            "mapping": self.mapping,
            "priorities": {
                app: self.priorities[app] for app in sorted(self.priorities)
            },
            "weights": {
                app: self.weights[app] for app in sorted(self.weights)
            },
            "model": self.model,
            "periods": {
                app: self.periods[app] for app in sorted(self.periods)
            },
            "objective_value": self.objective_value,
            "violations": {
                app: self.violations[app] for app in sorted(self.violations)
            },
        }


@dataclass(frozen=True)
class PlacementResult:
    """Everything ``repro place`` / the ``place`` verb reports.

    ``best`` is the top-ranked candidate even when infeasible (then
    ``feasible`` is ``False`` and ``best.violations`` says by how much
    it misses) — "closest attempt" beats "no answer" for a platform
    integrator deciding whether to relax targets.
    """

    strategy: str
    model: str
    method: str
    objective: str
    seed: Optional[int]
    applications: Tuple[str, ...]
    targets: Dict[str, Optional[float]]
    space: Dict[str, object]
    feasible: bool
    best: ChosenPlacement
    evaluated: int
    steps: int
    trace: Tuple[TraceEntry, ...] = field(default_factory=tuple)

    def to_json(self) -> Dict[str, object]:
        return {
            "strategy": self.strategy,
            "model": self.model,
            "method": self.method,
            "objective": self.objective,
            "seed": self.seed,
            "applications": list(self.applications),
            "targets": {
                app: self.targets[app] for app in sorted(self.targets)
            },
            "space": self.space,
            "feasible": self.feasible,
            "best": self.best.to_json(),
            "evaluated": self.evaluated,
            "steps": self.steps,
            "trace": [entry.to_json() for entry in self.trace],
        }

    def to_json_str(self) -> str:
        """Canonical serialization (sorted keys, no whitespace).

        This is the byte-determinism surface: same gallery, space, and
        seed must yield the same string, locally or through the fleet.
        """
        return json.dumps(
            self.to_json(), sort_keys=True, separators=(",", ":")
        )

    @staticmethod
    def from_json(data: Dict[str, object]) -> "PlacementResult":
        """Rebuild a result from :meth:`to_json` output (client side)."""
        best = data["best"]
        trace: List[TraceEntry] = [
            TraceEntry(
                step=int(entry["step"]),
                event=str(entry["event"]),
                candidate=str(entry["candidate"]),
                feasible=bool(entry["feasible"]),
                score=float(entry["score"]),
            )
            for entry in data.get("trace", [])
        ]
        return PlacementResult(
            strategy=str(data["strategy"]),
            model=str(data["model"]),
            method=str(data["method"]),
            objective=str(data["objective"]),
            seed=None if data.get("seed") is None else int(data["seed"]),
            applications=tuple(str(a) for a in data["applications"]),
            targets={
                str(app): (None if value is None else float(value))
                for app, value in dict(data["targets"]).items()
            },
            space=dict(data["space"]),
            feasible=bool(data["feasible"]),
            best=ChosenPlacement(
                candidate=str(best["candidate"]),
                mapping=str(best["mapping"]),
                priorities={
                    str(app): float(value)
                    for app, value in dict(best["priorities"]).items()
                },
                weights={
                    str(app): int(value)
                    for app, value in dict(best["weights"]).items()
                },
                model=str(best["model"]),
                periods={
                    str(app): float(value)
                    for app, value in dict(best["periods"]).items()
                },
                objective_value=float(best["objective_value"]),
                violations={
                    str(app): float(value)
                    for app, value in dict(best["violations"]).items()
                },
            ),
            evaluated=int(data["evaluated"]),
            steps=int(data["steps"]),
            trace=tuple(trace),
        )
