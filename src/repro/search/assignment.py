"""Quality-assignment search: the downgrade policy's engine.

The runtime manager's :class:`~repro.runtime.manager.DowngradePolicy`
answers "which quality levels make everything fit?".  That is a search
problem over a product space — one dimension per application, choices
ordered best-first from each application's floor — and it lives here so
the runtime layer is a thin client of :mod:`repro.search` rather than
carrying its own enumeration code.

The semantics are **exactly** the historical ones (the downgrade-policy
tests pin them):

* ``exhaustive`` enumerates the product cheapest-first — fewest total
  downgrade steps; ties degrade the newcomer first, then low-priority
  residents — and returns the first feasible assignment, so it finds
  one whenever one exists.  Beyond ``max_combinations`` it falls back
  to greedy.
* ``greedy`` walks a single degradation chain: the newcomer steps down
  to its floor first, then residents in ascending priority order, one
  step per round, until feasible or exhausted.

Feasibility is delegated to the caller (the manager passes its
:func:`~repro.search.feasibility.evaluate_feasibility`-backed check),
keeping this module free of estimator knowledge.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping as TMapping, Optional, Tuple

from repro.exceptions import AnalysisError
from repro.telemetry import get_registry, get_tracer


@dataclass(frozen=True)
class QualityAssignmentProblem:
    """One downgrade question, runtime-independent.

    Attributes
    ----------
    applications:
        Every involved application, residents first, the newcomer
        **last** (the exhaustive tie-break degrades the last entry
        first).
    levels:
        Per application, the admissible level names from its floor:
        index 0 is the current (resident) or requested (newcomer)
        level, later entries are successive downgrades.
    priorities:
        Resident priorities; lower-priority residents are degraded
        first on ties (the newcomer needs no entry).
    newcomer:
        Name of the joining application.
    """

    applications: Tuple[str, ...]
    levels: TMapping[str, Tuple[str, ...]]
    priorities: TMapping[str, float] = field(default_factory=dict)
    newcomer: str = ""

    def __post_init__(self) -> None:
        if not self.applications:
            raise AnalysisError("assignment problem has no applications")
        if self.newcomer and self.applications[-1] != self.newcomer:
            raise AnalysisError(
                f"the newcomer {self.newcomer!r} must be the last "
                f"application of the problem"
            )
        for app in self.applications:
            if app not in self.levels or not self.levels[app]:
                raise AnalysisError(
                    f"application {app!r} has no admissible levels"
                )

    @property
    def residents(self) -> Tuple[str, ...]:
        return self.applications[:-1] if self.newcomer else self.applications

    @property
    def combinations(self) -> int:
        total = 1
        for app in self.applications:
            total *= len(self.levels[app])
        return total


def search_assignment(
    problem: QualityAssignmentProblem,
    is_feasible: Callable[[Dict[str, str]], bool],
    search: str = "exhaustive",
    max_combinations: int = 4096,
) -> Optional[Dict[str, str]]:
    """The cheapest feasible ``{application: level}``, or ``None``.

    ``search="exhaustive"`` (cheapest-first full enumeration, greedy
    fallback beyond ``max_combinations``) or ``search="greedy"`` (one
    degradation chain).
    """
    if search not in ("greedy", "exhaustive"):
        raise AnalysisError(
            f"search must be 'greedy' or 'exhaustive', got {search!r}"
        )
    registry = get_registry()
    registry.counter(
        "repro_search_assignments_total",
        "Quality-assignment searches",
        search=search,
    ).inc()
    with get_tracer().span(
        "search.assignment",
        search=search,
        applications=len(problem.applications),
        combinations=problem.combinations,
    ):
        if (
            search == "exhaustive"
            and problem.combinations <= max_combinations
        ):
            return _exhaustive(problem, is_feasible)
        return _greedy(problem, is_feasible)


def _exhaustive(
    problem: QualityAssignmentProblem,
    is_feasible: Callable[[Dict[str, str]], bool],
) -> Optional[Dict[str, str]]:
    apps = problem.applications
    residents = problem.residents
    step_ranges = [range(len(problem.levels[app])) for app in apps]
    # Ascending-priority resident order of the tie-break: on equal
    # total cost, prefer assignments that push downgrade steps onto
    # the newcomer (last position) and low-priority residents.
    resident_order = sorted(
        range(len(residents)),
        key=lambda i: problem.priorities.get(residents[i], 0.0),
    )
    candidates = sorted(
        itertools.product(*step_ranges),
        key=lambda steps: (
            sum(steps),
            -steps[-1],
            tuple(-steps[i] for i in resident_order),
        ),
    )
    for steps in candidates:
        assignment = {
            app: problem.levels[app][step]
            for app, step in zip(apps, steps)
        }
        if is_feasible(assignment):
            return assignment
    return None


def _greedy(
    problem: QualityAssignmentProblem,
    is_feasible: Callable[[Dict[str, str]], bool],
) -> Optional[Dict[str, str]]:
    apps = problem.applications
    newcomer = apps[-1]
    position = {app: 0 for app in apps}
    by_priority = sorted(
        (app for app in apps if app != newcomer),
        key=lambda app: problem.priorities.get(app, 0.0),
    )
    while True:
        assignment = {
            app: problem.levels[app][position[app]] for app in apps
        }
        if is_feasible(assignment):
            return assignment
        if position[newcomer] + 1 < len(problem.levels[newcomer]):
            position[newcomer] += 1
            continue
        for app in by_priority:
            if position[app] + 1 < len(problem.levels[app]):
                position[app] += 1
                break
        else:
            return None
