"""Objectives and constraints of the placement search.

A placement question has two halves:

* a :class:`Constraint` — per-application period *targets* (QoS
  requirements, the runtime manager's ``required_period`` writ large):
  a candidate is *feasible* when every targeted application's estimated
  contended period meets its target;
* an :class:`Objective` — what to optimize among (or toward)
  feasibility: total period, makespan (the worst period), or nothing
  beyond feasibility itself.

Both reduce to one deterministic ranking (:func:`rank_key`): feasible
candidates beat infeasible ones, feasible candidates compare by
objective value, infeasible ones by total constraint violation (so
every strategy — including the greedy and local-search walks — descends
*toward* feasibility even before reaching it), and exact ties break on
the candidate's canonical key so search results are reproducible down
to the byte.

The feasibility rule itself (the ``period <= target * (1 + 1e-12)``
comparison) is :func:`check_feasibility` in
:mod:`repro.search.feasibility` — one rule for the admission
controller's quality search and the placement search alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.exceptions import AnalysisError

#: Recognized objective kinds (``repro place --objective``).
OBJECTIVES: Tuple[str, ...] = ("total_period", "makespan", "feasible")


@dataclass(frozen=True)
class Objective:
    """What the search minimizes among feasible candidates.

    ``total_period`` sums every application's contended period (the
    throughput-oriented default), ``makespan`` takes the worst one (the
    fairness-oriented alternative), and ``feasible`` scores every
    feasible candidate equally — "find me anything that fits".
    """

    kind: str = "total_period"

    def __post_init__(self) -> None:
        if self.kind not in OBJECTIVES:
            raise AnalysisError(
                f"unknown objective {self.kind!r} "
                f"(choose from {', '.join(OBJECTIVES)})"
            )

    def value(self, periods: Mapping[str, float]) -> float:
        if self.kind == "total_period":
            return sum(periods.values())
        if self.kind == "makespan":
            return max(periods.values())
        return 0.0


@dataclass(frozen=True)
class Constraint:
    """Per-application period targets; ``None`` = best effort.

    Applications absent from ``targets`` are unconstrained, exactly
    like a runtime :class:`~repro.runtime.manager.AppSpec` without a
    ``required_period``.
    """

    targets: Mapping[str, Optional[float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for app, target in self.targets.items():
            if target is not None and not target > 0:
                raise AnalysisError(
                    f"period target of {app!r} must be positive, "
                    f"got {target!r}"
                )

    def normalized(self) -> Dict[str, Optional[float]]:
        """Targets as a plain dict with ``None`` entries preserved."""
        return {app: self.targets[app] for app in sorted(self.targets)}


def violation_total(violations: Mapping[str, float]) -> float:
    """One scalar "how infeasible": the summed relative excesses."""
    return sum(violations.values())


def rank_key(
    feasible: bool,
    objective_value: float,
    violations: Mapping[str, float],
    candidate_key: str,
) -> Tuple[int, float, str]:
    """The total order every strategy minimizes over.

    Feasible first; then the objective (feasible) or the violation
    total (infeasible); then the candidate's canonical key string, so
    equal-scoring candidates rank deterministically.
    """
    if feasible:
        return (0, objective_value, candidate_key)
    return (1, violation_total(violations), candidate_key)
