"""Batched candidate evaluation: one strategy step, one vectorized solve.

The naive way to score ``k`` placement candidates is ``k`` independent
:class:`~repro.core.estimator.ProbabilisticEstimator` constructions and
``k`` scalar period solves per application — every candidate re-derives
the isolation periods, re-expands every HSDF graph and re-builds every
solver.  :class:`CandidateEvaluator` shares all of that across the
whole search:

* shared :class:`~repro.analysis_engine.AnalysisEngine` instances (one
  per application), so expansions and solver structures are paid once;
* isolation periods and contention profiles (``P``, ``mu`` — mapping-
  independent) computed once at construction;
* per candidate, only the cheap scalar waiting arithmetic runs — the
  exact loop of the estimator's ``_waiting_and_response`` (same
  processor order, same resident sets, same ``include_same_application``
  semantics) — producing one full per-actor response-time vector per
  application;
* then **one** :meth:`~repro.analysis_engine.AnalysisEngine.period_for`
  call per application covers *every candidate in the batch*: with a
  vectorized backend that is the ``solve_many`` batched-certification
  fast path; without one it falls back to memoized scalar solves,
  preserving the arithmetic bit for bit.

Feasibility and ranking reuse :func:`~repro.search.feasibility.
check_feasibility` and :func:`~repro.search.objective.rank_key`, so the
evaluator, the admission controller and the runtime manager agree on
what "fits" means.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis_engine import AnalysisEngine, build_engines
from repro.core.blocking import ActorProfile, build_profiles
from repro.core.registry import create_waiting_model
from repro.exceptions import AnalysisError
from repro.sdf.analysis import AnalysisMethod
from repro.search.feasibility import check_feasibility
from repro.search.objective import Constraint, Objective, rank_key
from repro.search.space import Candidate, SearchSpace
from repro.telemetry import get_registry, get_tracer


@dataclass(frozen=True)
class EvaluatedCandidate:
    """A candidate with its predicted periods and rank."""

    candidate: Candidate
    model: str
    periods: Dict[str, float]
    feasible: bool
    violations: Dict[str, float]
    objective_value: float

    @property
    def rank(self) -> Tuple[int, float, str]:
        """The total order of :func:`repro.search.objective.rank_key`."""
        return rank_key(
            self.feasible,
            self.objective_value,
            self.violations,
            self.candidate.key,
        )

    @property
    def score(self) -> float:
        """The scalar a trace entry reports: objective when feasible,
        violation total otherwise."""
        return self.rank[1]


class CandidateEvaluator:
    """Score batches of candidates of one :class:`SearchSpace`.

    Parameters
    ----------
    space:
        The space whose candidates are evaluated.
    objective / constraint:
        What to minimize and what must hold (defaults: total period,
        no targets).
    method:
        Period-analysis method of the shared engines.
    engines:
        Pre-built shared engines (built on demand when omitted).
    backend:
        Forwarded to :meth:`AnalysisEngine.period_for`; a vectorized
        backend batches the candidate solves through ``solve_many``.
    """

    def __init__(
        self,
        space: SearchSpace,
        objective: Optional[Objective] = None,
        constraint: Optional[Constraint] = None,
        method: AnalysisMethod = AnalysisMethod.MCR,
        engines: Optional[Dict[str, AnalysisEngine]] = None,
        backend: Optional[object] = None,
    ) -> None:
        self.space = space
        self.objective = objective if objective is not None else Objective()
        self.constraint = (
            constraint if constraint is not None else Constraint()
        )
        self.method = method
        self.backend = backend
        self.engines = (
            engines
            if engines is not None
            else build_engines(list(space.graphs), method=method)
        )
        missing = [
            g.name for g in space.graphs if g.name not in self.engines
        ]
        if missing:
            raise AnalysisError(
                f"no analysis engine for applications {missing!r}"
            )
        #: Isolation periods (Definition 3) via the shared engines.
        self.isolation_periods: Dict[str, float] = {
            graph.name: self.engines[graph.name].period()
            for graph in space.graphs
        }
        # P and mu depend only on tau, q and the isolation period —
        # never on the candidate's mapping/priorities/weights — so the
        # profiles are built once; candidates only override priority.
        self._base_profiles: Dict[Tuple[str, str], ActorProfile] = (
            build_profiles(
                list(space.graphs), periods=dict(self.isolation_periods)
            )
        )
        #: Waiting-model instances by spec (weight vectors recur across
        #: candidates, so the cache is small and hot).
        self._models: Dict[str, object] = {}
        self._tracer = get_tracer()
        registry = get_registry()
        self._metric_candidates = registry.counter(
            "repro_search_candidates_total",
            "Placement candidates evaluated",
        )
        self._metric_batches = registry.counter(
            "repro_search_batches_total",
            "Batched candidate evaluations",
        )

    # ------------------------------------------------------------------
    def _model_for(self, spec: str):
        model = self._models.get(spec)
        if model is None:
            model = create_waiting_model(spec)
            check = getattr(model, "check_applications", None)
            if callable(check):
                check(self.space.application_names)
            self._models[spec] = model
        return model

    def _responses(
        self, candidate: Candidate
    ) -> Dict[Tuple[str, str], float]:
        """The estimator's steps 7–10 for one candidate configuration."""
        mapping = self.space.mapping_of(candidate)
        model = self._model_for(self.space.model_of(candidate))
        priorities = mapping.priorities()
        responses: Dict[Tuple[str, str], float] = {}
        for processor in mapping.platform.processor_names:
            residents = mapping.actors_on(processor)
            for app, actor in residents:
                own = self._base_profiles[(app, actor)]
                if priorities:
                    own = replace(
                        own, priority=priorities.get((app, actor), 0.0)
                    )
                others = []
                for other_app, other_actor in residents:
                    if (other_app, other_actor) == (app, actor):
                        continue
                    profile = self._base_profiles[(other_app, other_actor)]
                    if priorities:
                        profile = replace(
                            profile,
                            priority=priorities.get(
                                (other_app, other_actor), 0.0
                            ),
                        )
                    others.append(profile)
                t_wait = model.waiting_time(own, others)
                if t_wait < 0:
                    raise AnalysisError(
                        f"waiting model {getattr(model, 'name', '?')!r} "
                        f"returned negative waiting {t_wait} for "
                        f"{app}.{actor}"
                    )
                responses[(app, actor)] = own.tau + t_wait
        return responses

    # ------------------------------------------------------------------
    def evaluate(
        self, candidates: Sequence[Candidate]
    ) -> List[EvaluatedCandidate]:
        """Score a batch; returns one entry per candidate, in order."""
        candidates = list(candidates)
        if not candidates:
            return []
        with self._tracer.span(
            "search.evaluate", candidates=len(candidates)
        ):
            specs = [self.space.model_of(c) for c in candidates]
            rows: Dict[str, List[List[float]]] = {
                graph.name: [] for graph in self.space.graphs
            }
            for candidate in candidates:
                responses = self._responses(candidate)
                for graph in self.space.graphs:
                    rows[graph.name].append(
                        [
                            responses[(graph.name, actor)]
                            for actor in graph.actor_names
                        ]
                    )
            # The batched fast path: one period_for call per
            # application spans the whole candidate batch.
            periods_by_app = {
                name: self.engines[name].period_for(
                    vectors, backend=self.backend
                )
                for name, vectors in rows.items()
            }
        self._metric_candidates.inc(len(candidates))
        self._metric_batches.inc()
        evaluated: List[EvaluatedCandidate] = []
        targets = dict(self.constraint.targets)
        for position, candidate in enumerate(candidates):
            periods = {
                name: float(periods_by_app[name][position])
                for name in periods_by_app
            }
            feasible, violations = check_feasibility(periods, targets)
            evaluated.append(
                EvaluatedCandidate(
                    candidate=candidate,
                    model=specs[position],
                    periods=periods,
                    feasible=feasible,
                    violations=violations,
                    objective_value=self.objective.value(periods),
                )
            )
        return evaluated

    def evaluate_one(self, candidate: Candidate) -> EvaluatedCandidate:
        return self.evaluate([candidate])[0]
