"""The placement search space: what a candidate *is*.

A candidate configuration has three orthogonal groups of knobs, all of
them first-class values of the PR-5 registry/spec layer:

* **mapping** — which named actor-binding recipe to use (``index``,
  ``spread``, ``modulo``; the paper's setup plus the density-ablation
  variants);
* **priorities** — one arbitration level per application, riding on the
  mapping (:meth:`~repro.platform.mapping.Mapping.with_priorities`) and
  read by priority-aware waiting models;
* **weights** — one WRR slice weight per application, turned into a
  ``weighted_round_robin:A=2,B=1`` model spec via the shared
  :mod:`repro.core.specs` grammar.

Strategies never manipulate these directly: they walk tuples of
*choice indices* (one integer per :class:`Dimension`), and the space
decodes an index tuple into a :class:`Candidate` — frozen, hashable,
with a canonical ``key`` string used for memoization and deterministic
tie-breaking.  The full space is the cartesian product of the
dimensions, enumerated in one fixed order, so ``exhaustive`` search is
reproducible and ``greedy`` coordinate descent has a well-defined
starting point (index 0 of every dimension = first mapping, no
priority spread, unit weights).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.registry import create_waiting_model, validate_model_spec
from repro.core.specs import format_spec, format_weight_argument, parse_spec
from repro.exceptions import AnalysisError
from repro.platform.mapping import (
    Mapping,
    index_mapping,
    modulo_mapping,
    spread_mapping,
)
from repro.platform.platform import Platform
from repro.sdf.graph import SDFGraph

#: Known mapping recipes, in canonical order.
MAPPING_BUILDERS = {
    "index": index_mapping,
    "spread": spread_mapping,
    "modulo": modulo_mapping,
}

DEFAULT_MAPPINGS: Tuple[str, ...] = ("index", "spread", "modulo")


@dataclass(frozen=True)
class Dimension:
    """One axis of the space: a name and its ordered choices."""

    name: str
    choices: Tuple[object, ...]

    def __post_init__(self) -> None:
        if not self.choices:
            raise AnalysisError(f"dimension {self.name!r} has no choices")

    def __len__(self) -> int:
        return len(self.choices)


@dataclass(frozen=True)
class Candidate:
    """One fully decoded configuration.

    ``priorities`` and ``weights`` are sorted tuples so equal
    configurations are equal values; empty tuples mean the knob is not
    part of the space.
    """

    mapping: str
    priorities: Tuple[Tuple[str, float], ...] = ()
    weights: Tuple[Tuple[str, int], ...] = ()

    @property
    def key(self) -> str:
        """Canonical string identity — memo key and rank tie-breaker."""
        parts = [f"mapping={self.mapping}"]
        if self.priorities:
            levels = ",".join(
                f"{app}={level:g}" for app, level in self.priorities
            )
            parts.append(f"priorities={levels}")
        if self.weights:
            parts.append(
                "weights="
                + format_weight_argument({a: w for a, w in self.weights})
            )
        return "|".join(parts)


class SearchSpace:
    """Candidate mappings × priority assignments × weight vectors.

    Parameters
    ----------
    graphs:
        The application gallery, in order (the order fixes dimension
        order and hence enumeration order).
    platform:
        Target platform; a homogeneous platform wide enough for the
        largest application is created when omitted (the paper's
        setup).
    mappings:
        Which mapping recipes to consider (subset of
        :data:`MAPPING_BUILDERS`).
    model:
        Waiting-model spec evaluated for every candidate.  With
        ``weight_choices`` set it must be a *bare* weights-capable
        model name (e.g. ``"weighted_round_robin"``); the space then
        appends each candidate's weight vector as the spec argument.
    weight_choices:
        WRR slice weights to consider per application (adds one
        dimension per application).  ``None`` disables the weight axis.
    priority_levels:
        Arbitration levels to consider per application (one dimension
        per application).  ``None`` disables the priority axis.
    """

    def __init__(
        self,
        graphs: Sequence[SDFGraph],
        platform: Optional[Platform] = None,
        mappings: Sequence[str] = DEFAULT_MAPPINGS,
        model: str = "second_order",
        weight_choices: Optional[Sequence[int]] = None,
        priority_levels: Optional[Sequence[float]] = None,
    ) -> None:
        self.graphs: Tuple[SDFGraph, ...] = tuple(graphs)
        if not self.graphs:
            raise AnalysisError("search space needs at least one application")
        self.application_names: Tuple[str, ...] = tuple(
            g.name for g in self.graphs
        )
        if len(set(self.application_names)) != len(self.application_names):
            raise AnalysisError("duplicate application names in gallery")
        if platform is None:
            platform = Platform.homogeneous(
                max(len(g) for g in self.graphs)
            )
        self.platform = platform

        # The shared eager validation path: unknown names, bad
        # arguments and out-of-gallery per-app parameters all fail
        # here, at space construction, never inside a strategy step.
        validate_model_spec(model, self.application_names)
        self.model = model
        self._model_name, model_argument = parse_spec(model)

        unknown = sorted(set(mappings) - set(MAPPING_BUILDERS))
        if unknown:
            raise AnalysisError(
                f"unknown mappings {unknown!r} "
                f"(choose from {', '.join(sorted(MAPPING_BUILDERS))})"
            )
        if not mappings:
            raise AnalysisError("search space needs at least one mapping")
        self.mapping_names: Tuple[str, ...] = tuple(dict.fromkeys(mappings))
        self._mappings: Dict[str, Mapping] = {
            name: MAPPING_BUILDERS[name](self.graphs, self.platform)
            for name in self.mapping_names
        }

        self.weight_choices: Tuple[int, ...] = (
            tuple(weight_choices) if weight_choices is not None else ()
        )
        if self.weight_choices:
            probe = create_waiting_model(model)
            if not hasattr(probe, "weight_of"):
                raise AnalysisError(
                    f"model {model!r} does not take per-application "
                    f"weights; drop weight_choices or use a "
                    f"weighted-round-robin model"
                )
            if model_argument:
                raise AnalysisError(
                    f"model {model!r} already fixes a weight vector; "
                    f"use the bare model name when the space searches "
                    f"weights"
                )
        self.priority_levels: Tuple[float, ...] = (
            tuple(priority_levels) if priority_levels is not None else ()
        )

        dimensions: List[Dimension] = [
            Dimension("mapping", self.mapping_names)
        ]
        for app in self.application_names:
            if self.priority_levels:
                dimensions.append(
                    Dimension(f"priority:{app}", self.priority_levels)
                )
        for app in self.application_names:
            if self.weight_choices:
                dimensions.append(
                    Dimension(f"weight:{app}", self.weight_choices)
                )
        self.dimensions: Tuple[Dimension, ...] = tuple(dimensions)

    # ------------------------------------------------------------------
    # Size and enumeration
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        total = 1
        for dimension in self.dimensions:
            total *= len(dimension)
        return total

    def default_indices(self) -> Tuple[int, ...]:
        """The canonical starting point: choice 0 of every dimension."""
        return tuple(0 for _ in self.dimensions)

    def index_tuples(self) -> Iterator[Tuple[int, ...]]:
        """Every index tuple, in fixed product order (last dim fastest)."""
        ranges = [range(len(d)) for d in self.dimensions]
        return iter(itertools.product(*ranges))

    def candidates(self) -> Iterator[Candidate]:
        """Every candidate, in enumeration order."""
        for indices in self.index_tuples():
            yield self.decode(indices)

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def decode(self, indices: Sequence[int]) -> Candidate:
        """Index tuple -> frozen :class:`Candidate`."""
        if len(indices) != len(self.dimensions):
            raise AnalysisError(
                f"expected {len(self.dimensions)} indices, "
                f"got {len(indices)}"
            )
        mapping_name = ""
        priorities: List[Tuple[str, float]] = []
        weights: List[Tuple[str, int]] = []
        for dimension, index in zip(self.dimensions, indices):
            if not 0 <= index < len(dimension):
                raise AnalysisError(
                    f"index {index} out of range for dimension "
                    f"{dimension.name!r}"
                )
            choice = dimension.choices[index]
            if dimension.name == "mapping":
                mapping_name = str(choice)
            elif dimension.name.startswith("priority:"):
                priorities.append(
                    (dimension.name.split(":", 1)[1], float(choice))
                )
            else:
                weights.append(
                    (dimension.name.split(":", 1)[1], int(choice))
                )
        return Candidate(
            mapping=mapping_name,
            priorities=tuple(sorted(priorities)),
            weights=tuple(sorted(weights)),
        )

    def mapping_of(self, candidate: Candidate) -> Mapping:
        """The platform mapping of a candidate, priorities applied."""
        base = self._mappings[candidate.mapping]
        if candidate.priorities:
            return base.with_priorities(dict(candidate.priorities))
        return base

    def model_of(self, candidate: Candidate) -> str:
        """The waiting-model spec of a candidate (weights applied)."""
        if candidate.weights:
            return format_spec(
                self._model_name,
                format_weight_argument(dict(candidate.weights)),
            )
        return self.model

    # ------------------------------------------------------------------
    # Moves (used by local search and the evolutionary loop)
    # ------------------------------------------------------------------
    def neighbors(
        self, indices: Sequence[int]
    ) -> Iterator[Tuple[int, ...]]:
        """All tuples differing from ``indices`` in exactly one dimension,
        in dimension order then choice order (deterministic)."""
        base = tuple(indices)
        for position, dimension in enumerate(self.dimensions):
            for choice in range(len(dimension)):
                if choice == base[position]:
                    continue
                yield base[:position] + (choice,) + base[position + 1:]

    def random_indices(self, rng: random.Random) -> Tuple[int, ...]:
        return tuple(
            rng.randrange(len(dimension)) for dimension in self.dimensions
        )

    def mutate(
        self,
        indices: Sequence[int],
        rng: random.Random,
        probability: Optional[float] = None,
    ) -> Tuple[int, ...]:
        """Per-dimension resample with probability ``1/D`` by default."""
        if probability is None:
            probability = 1.0 / max(1, len(self.dimensions))
        return tuple(
            rng.randrange(len(dimension))
            if rng.random() < probability
            else index
            for dimension, index in zip(self.dimensions, indices)
        )

    def crossover(
        self,
        first: Sequence[int],
        second: Sequence[int],
        rng: random.Random,
    ) -> Tuple[int, ...]:
        """Uniform crossover: each dimension from one parent at random."""
        return tuple(
            a if rng.random() < 0.5 else b
            for a, b in zip(first, second)
        )

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """JSON-friendly description, embedded in the result."""
        return {
            "applications": list(self.application_names),
            "mappings": list(self.mapping_names),
            "model": self.model,
            "priority_levels": list(self.priority_levels),
            "weight_choices": list(self.weight_choices),
            "dimensions": len(self.dimensions),
            "size": self.size,
        }
