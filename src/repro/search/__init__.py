"""repro.search — contention-aware placement and configuration search.

The shared search layer over the estimation stack: candidate platform
configurations (mapping × priorities × WRR weights) are enumerated or
walked by pluggable strategies and scored through the batched
``estimate_many``/``solve_many`` fast path, so one strategy step is one
vectorized solve per application.  The runtime manager's downgrade
policy, the ``repro place`` CLI and the fleet's ``place`` verb are all
thin clients of this package.

Public API
----------
:class:`SearchSpace`, :class:`Candidate`, :class:`Dimension`
    What a candidate is (:mod:`repro.search.space`).
:class:`Objective`, :class:`Constraint`
    What to optimize and what must hold (:mod:`repro.search.objective`).
:func:`evaluate_feasibility`, :func:`check_feasibility`,
:class:`FeasibilityReport`
    The promoted admission feasibility evaluator
    (:mod:`repro.search.feasibility`).
:class:`CandidateEvaluator`, :class:`EvaluatedCandidate`
    Batched scoring (:mod:`repro.search.evaluate`).
:data:`STRATEGIES`, :func:`run_strategy`, :class:`StrategyOptions`
    The strategy registry (:mod:`repro.search.strategies`).
:func:`place`, :class:`PlacementResult`
    The high-level API (:mod:`repro.search.place`,
    :mod:`repro.search.result`).
:class:`QualityAssignmentProblem`, :func:`search_assignment`
    The downgrade policy's engine (:mod:`repro.search.assignment`).
"""

from repro.search.assignment import (
    QualityAssignmentProblem,
    search_assignment,
)
from repro.search.evaluate import CandidateEvaluator, EvaluatedCandidate
from repro.search.feasibility import (
    FeasibilityReport,
    check_feasibility,
    evaluate_feasibility,
)
from repro.search.objective import OBJECTIVES, Constraint, Objective
from repro.search.place import (
    DEFAULT_SLACK,
    DEFAULT_WEIGHT_CHOICES,
    derive_targets,
    place,
)
from repro.search.result import (
    ChosenPlacement,
    PlacementResult,
    TraceEntry,
)
from repro.search.space import (
    Candidate,
    DEFAULT_MAPPINGS,
    Dimension,
    MAPPING_BUILDERS,
    SearchSpace,
)
from repro.search.strategies import (
    STRATEGIES,
    SearchOutcome,
    StrategyOptions,
    run_strategy,
)

__all__ = [
    "Candidate",
    "CandidateEvaluator",
    "ChosenPlacement",
    "Constraint",
    "DEFAULT_MAPPINGS",
    "DEFAULT_SLACK",
    "DEFAULT_WEIGHT_CHOICES",
    "Dimension",
    "EvaluatedCandidate",
    "FeasibilityReport",
    "MAPPING_BUILDERS",
    "OBJECTIVES",
    "Objective",
    "PlacementResult",
    "QualityAssignmentProblem",
    "STRATEGIES",
    "SearchOutcome",
    "SearchSpace",
    "StrategyOptions",
    "TraceEntry",
    "check_feasibility",
    "derive_targets",
    "evaluate_feasibility",
    "place",
    "run_strategy",
    "search_assignment",
]
