"""The high-level placement API: gallery + targets in, best config out.

:func:`place` is what ``repro place`` and the fleet's ``place`` verb
call: it assembles the :class:`~repro.search.space.SearchSpace`, the
:class:`~repro.search.evaluate.CandidateEvaluator` and the requested
strategy, and packages the winner as a JSON-serializable
:class:`~repro.search.result.PlacementResult`.

Targets may be given explicitly (``targets={"A": 120.0}``) or derived
from a slack factor exactly like the runtime gallery's requirements
(:func:`~repro.runtime.manager.gallery_from_graphs`): each
application's target is ``slack`` times its isolation period.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.analysis_engine import AnalysisEngine, build_engines
from repro.exceptions import AnalysisError
from repro.platform.platform import Platform
from repro.sdf.analysis import AnalysisMethod
from repro.sdf.graph import SDFGraph
from repro.search.evaluate import CandidateEvaluator
from repro.search.objective import Constraint, Objective
from repro.search.result import ChosenPlacement, PlacementResult
from repro.search.space import DEFAULT_MAPPINGS, SearchSpace
from repro.search.strategies import StrategyOptions, run_strategy

#: Default slack factor of derived targets (mirrors the runtime
#: gallery's requirement derivation).
DEFAULT_SLACK = 2.5

#: Default WRR slice weights the space searches over.
DEFAULT_WEIGHT_CHOICES: Tuple[int, ...] = (1, 2)


def derive_targets(
    graphs: Sequence[SDFGraph],
    engines: Optional[Dict[str, AnalysisEngine]] = None,
    slack: float = DEFAULT_SLACK,
) -> Dict[str, Optional[float]]:
    """``slack`` × isolation period per application."""
    if slack <= 1.0:
        raise AnalysisError(
            f"slack must exceed 1.0 (isolation is the floor), got {slack}"
        )
    if engines is None:
        engines = build_engines(list(graphs), AnalysisMethod.MCR)
    return {
        graph.name: engines[graph.name].period() * slack
        for graph in graphs
    }


def place(
    graphs: Sequence[SDFGraph],
    platform: Optional[Platform] = None,
    targets: Optional[Dict[str, Optional[float]]] = None,
    slack: float = DEFAULT_SLACK,
    strategy: str = "greedy",
    model: str = "wrr",
    method: AnalysisMethod = AnalysisMethod.MCR,
    objective: str = "total_period",
    seed: Optional[int] = 0,
    mappings: Sequence[str] = DEFAULT_MAPPINGS,
    weight_choices: Optional[Sequence[int]] = DEFAULT_WEIGHT_CHOICES,
    priority_levels: Optional[Sequence[float]] = None,
    engines: Optional[Dict[str, AnalysisEngine]] = None,
    backend: Optional[object] = None,
    options: Optional[StrategyOptions] = None,
) -> PlacementResult:
    """Search the placement space of ``graphs`` for the best feasible
    configuration.

    Parameters
    ----------
    graphs:
        The application gallery.
    platform:
        Target platform (default: homogeneous, wide enough).
    targets:
        Explicit per-application period targets; derived from
        ``slack`` × isolation period when omitted.
    slack:
        Slack factor of derived targets (ignored when ``targets``
        given).
    strategy:
        One of :data:`~repro.search.strategies.STRATEGIES`.
    model:
        Waiting-model spec; a bare weights-capable name when
        ``weight_choices`` is set (the space appends weight vectors).
    objective:
        ``total_period``, ``makespan`` or ``feasible``.
    seed:
        Seed of the stochastic strategies; same seed, same gallery,
        same space ⇒ byte-identical result JSON.
    mappings / weight_choices / priority_levels:
        The space's axes (see :class:`SearchSpace`).
    engines / backend:
        Shared analysis engines and array backend for the batched
        evaluator.
    options:
        Extra strategy knobs; ``seed`` here overrides the option's.
    """
    space = SearchSpace(
        graphs,
        platform=platform,
        mappings=mappings,
        model=model,
        weight_choices=weight_choices,
        priority_levels=priority_levels,
    )
    if engines is None:
        engines = build_engines(list(space.graphs), method=method)
    if targets is None:
        targets = derive_targets(space.graphs, engines, slack)
    else:
        unknown = sorted(set(targets) - set(space.application_names))
        if unknown:
            raise AnalysisError(
                f"targets name unknown applications {unknown!r}; "
                f"gallery: {sorted(space.application_names)}"
            )
    objective_value = Objective(objective)
    constraint = Constraint(dict(targets))
    evaluator = CandidateEvaluator(
        space,
        objective=objective_value,
        constraint=constraint,
        method=method,
        engines=engines,
        backend=backend,
    )
    if options is None:
        options = StrategyOptions(seed=seed)
    elif options.seed != seed:
        from dataclasses import replace as _replace

        options = _replace(options, seed=seed)
    outcome = run_strategy(strategy, space, evaluator, options)
    best = outcome.best
    return PlacementResult(
        strategy=strategy,
        model=model,
        method=method.value,
        objective=objective,
        seed=seed,
        applications=space.application_names,
        targets=dict(targets),
        space=space.summary(),
        feasible=best.feasible,
        best=ChosenPlacement(
            candidate=best.candidate.key,
            mapping=best.candidate.mapping,
            priorities={
                app: level for app, level in best.candidate.priorities
            },
            weights={app: weight for app, weight in best.candidate.weights},
            model=best.model,
            periods=dict(best.periods),
            objective_value=best.objective_value,
            violations=dict(best.violations),
        ),
        evaluated=outcome.evaluated,
        steps=outcome.steps,
        trace=outcome.trace,
    )
