"""The feasibility rule and the public admission evaluator.

Historically the "does this configuration meet every requirement?"
question lived as a private method of the runtime manager
(``ResourceManager.assignment_is_feasible``).  The placement search
needs to ask exactly the same question about candidate configurations,
so both the *rule* and the *evaluator* are promoted here:

* :func:`check_feasibility` — the comparison itself.  One application
  violates its target iff ``period > target * (1 + 1e-12)``; ``None``
  targets are best-effort and never violated.  The relative tolerance
  absorbs the last-bits float drift between a fresh composition and an
  incremental aggregate fold.
* :func:`evaluate_feasibility` — gallery + configuration (a platform
  :class:`~repro.platform.mapping.Mapping`) + targets in, a
  :class:`FeasibilityReport` out.  Periods come from the same
  composability estimate the admission controller commits with
  (:func:`~repro.admission.controller.estimate_resident_periods`), so
  a configuration the search calls feasible is one the runtime manager
  would admit.

``ResourceManager.assignment_is_feasible`` remains as a thin
deprecated alias delegating here for one release.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    Mapping as TMapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.admission.controller import estimate_resident_periods
from repro.analysis_engine import AnalysisEngine
from repro.platform.mapping import Mapping
from repro.sdf.analysis import AnalysisMethod
from repro.sdf.graph import SDFGraph

#: Relative tolerance of the feasibility comparison; see module docs.
FEASIBILITY_RTOL = 1e-12


def check_feasibility(
    periods: TMapping[str, float],
    targets: TMapping[str, Optional[float]],
) -> Tuple[bool, Dict[str, float]]:
    """Apply the feasibility rule; returns ``(feasible, violations)``.

    ``violations`` maps each violating application to its relative
    excess (``period / target - 1``) — the quantity infeasible search
    candidates are ranked by, so strategies descend toward feasibility.
    Applications with a ``None`` target, or absent from ``periods``
    (not part of the evaluated configuration), are skipped — exactly
    the runtime manager's historical behaviour.
    """
    violations: Dict[str, float] = {}
    for app in sorted(targets):
        target = targets[app]
        if target is None or app not in periods:
            continue
        period = periods[app]
        if period > target * (1 + FEASIBILITY_RTOL):
            violations[app] = period / target - 1.0
    return (not violations, violations)


@dataclass(frozen=True)
class FeasibilityReport:
    """The answer of :func:`evaluate_feasibility`.

    Truthiness follows ``feasible``, so ``if evaluate_feasibility(...)``
    reads naturally at admission-control call sites.
    """

    feasible: bool
    periods: Dict[str, float]
    violations: Dict[str, float]

    def __bool__(self) -> bool:
        return self.feasible

    def to_json(self) -> Dict[str, object]:
        return {
            "feasible": self.feasible,
            "periods": {app: self.periods[app] for app in sorted(self.periods)},
            "violations": {
                app: self.violations[app] for app in sorted(self.violations)
            },
        }


def evaluate_feasibility(
    gallery: Union[TMapping[str, SDFGraph], Sequence[SDFGraph]],
    config: Mapping,
    targets: TMapping[str, Optional[float]],
    method: AnalysisMethod = AnalysisMethod.MCR,
    engines: Optional[TMapping[str, AnalysisEngine]] = None,
    isolation_periods: Optional[TMapping[str, float]] = None,
) -> FeasibilityReport:
    """Whether a configuration of ``gallery`` meets every target.

    Parameters
    ----------
    gallery:
        The applications to evaluate, either ``{name: graph}`` or a
        plain sequence of graphs — for the runtime manager these are
        the quality-variant graphs of one assignment; for the
        placement search, the base gallery.
    config:
        The platform configuration under test: actor bindings plus any
        arbitration priorities riding on the mapping.
    targets:
        Per-application period targets; ``None`` = best effort, and
        applications absent from ``targets`` are unconstrained.
    method / engines / isolation_periods:
        Forwarded to
        :func:`~repro.admission.controller.estimate_resident_periods`;
        pass shared warm engines to make repeated evaluations cheap.
    """
    if not isinstance(gallery, TMapping):
        gallery = {graph.name: graph for graph in gallery}
    periods = estimate_resident_periods(
        config,
        gallery,
        method=method,
        engines=engines,
        isolation_periods=isolation_periods,
    )
    feasible, violations = check_feasibility(periods, targets)
    return FeasibilityReport(
        feasible=feasible, periods=periods, violations=violations
    )
