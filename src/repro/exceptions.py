"""Exception hierarchy for the :mod:`repro` library.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Subclasses mark the subsystem that raised them, which
keeps error handling in the experiment harness explicit.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every error raised by the library."""


class GraphError(ReproError):
    """Malformed SDF graph: dangling channel, duplicate actor, bad rate."""


class InconsistentGraphError(GraphError):
    """The balance equations of the graph admit only the zero solution.

    An inconsistent SDF graph cannot execute periodically within bounded
    memory, so no repetition vector (and hence no period) exists.
    """


class DeadlockError(GraphError):
    """The graph (or a use-case execution) cannot make progress.

    Raised when a zero-token cycle prevents any actor from ever firing, or
    when the discrete-event simulator detects that no event can be
    scheduled before the horizon while iterations are still outstanding.
    """


class MappingError(ReproError):
    """Invalid actor-to-processor binding (unknown actor or processor)."""


class AnalysisError(ReproError):
    """A timing analysis could not produce a result."""


class AdmissionError(ReproError):
    """Invalid operation on the run-time admission controller."""


class ExperimentError(ReproError):
    """The experiment harness was configured inconsistently."""


class ResourceManagerError(ReproError):
    """Invalid operation on the run-time resource-manager subsystem."""


class ServiceError(ReproError):
    """Estimation-service failure: bad request, overload, closed server."""


class ServiceConnectionError(ServiceError):
    """The transport to a server died (EOF, reset, refused connection).

    Distinct from plain :class:`ServiceError` so fleet layers can tell
    "the shard is gone — fail over" from "the shard answered with an
    error — report it"; only the former is safe to retry elsewhere.
    """


class TelemetryError(ReproError):
    """Invalid telemetry usage: bad metric name, conflicting registration."""
