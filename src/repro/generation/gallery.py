"""Hand-built benchmark graphs.

Contains the paper's own illustrative graphs (Figures 1 and 2) plus a set
of media-application SDFGs in the style of the classic embedded-
multiprocessor benchmarks (H.263, MP3, JPEG, modem, sample-rate
converter).  The media graphs are *modelled after* the well-known
published graph shapes with representative execution times; they drive
the examples and the "multi-featured media device" scenario the paper's
title refers to.

All graphs are verified consistent, strongly connected and live at import
time in the test suite.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.sdf.builder import GraphBuilder
from repro.sdf.graph import SDFGraph


def paper_figure1() -> SDFGraph:
    """A multi-rate SDFG in the spirit of the paper's Figure 1.

    Four actors A-D with non-trivial rates and initial tokens.  The exact
    figure cannot be transcribed unambiguously from the paper text, so
    this graph keeps its headline features: four actors, multi-rate
    channels, cyclic dependencies, enough initial tokens to be live.
    """
    return (
        GraphBuilder("fig1")
        .actor("A", 5)
        .actor("B", 7)
        .actor("C", 6)
        .actor("D", 10)
        # Repetition vector [A B C D] = [1 2 4 2].
        .channel("A", "B", production=2, consumption=1, initial_tokens=0)
        .channel("B", "C", production=2, consumption=1, initial_tokens=0)
        .channel("C", "D", production=1, consumption=2, initial_tokens=0)
        .channel("D", "A", production=1, consumption=2, initial_tokens=2)
        .channel("C", "A", production=1, consumption=4, initial_tokens=4)
        .build()
    )


def paper_two_apps() -> Tuple[SDFGraph, SDFGraph]:
    """The two applications of the paper's Figure 2 — exactly.

    Application A: ``a0 (tau=100, q=1) -> a1 (tau=50, q=2) ->
    a2 (tau=100, q=1) -> a0``; application B mirrors it with
    ``q[b0 b1 b2] = [2 1 1]``.  Both have ``Per = 300`` in isolation.
    The worked example of Section 3 (P = 1/3 everywhere, waiting times
    25/3 and 50/3, contended period ~359) is checked against these graphs
    in the golden tests.
    """
    a = (
        GraphBuilder("A")
        .actor("a0", 100)
        .actor("a1", 50)
        .actor("a2", 100)
        .channel("a0", "a1", production=2, consumption=1)
        .channel("a1", "a2", production=1, consumption=2)
        .channel("a2", "a0", initial_tokens=1)
        .build()
    )
    b = (
        GraphBuilder("B")
        .actor("b0", 50)
        .actor("b1", 100)
        .actor("b2", 100)
        .channel("b0", "b1", production=1, consumption=2)
        .channel("b1", "b2", production=1, consumption=1)
        .channel("b2", "b0", production=2, consumption=1, initial_tokens=2)
        .build()
    )
    return a, b


def h263_decoder() -> SDFGraph:
    """H.263 video decoder (QCIF-style, scaled macroblock count).

    Classic shape: variable-length decoding fans out per-macroblock work
    (dequantization, IDCT, motion compensation) which a reconstruction
    actor collects.  The published QCIF graph processes 99 macroblocks
    per frame; we scale to 9 to keep the HSDF expansion small while
    preserving the multi-rate structure.
    """
    macroblocks = 9
    return (
        GraphBuilder("h263")
        .actor("vld", 120)
        .actor("iq", 40)
        .actor("idct", 60)
        .actor("mc", 50)
        .actor("rec", 90)
        .channel("vld", "iq", production=macroblocks, consumption=1)
        .channel("iq", "idct")
        .channel("idct", "mc")
        .channel("mc", "rec", production=1, consumption=macroblocks)
        .channel("rec", "vld", initial_tokens=1)
        .build()
    )


def mp3_decoder() -> SDFGraph:
    """MP3 audio decoder: per-granule pipeline with two filterbank passes."""
    return (
        GraphBuilder("mp3")
        .actor("huffman", 30)
        .actor("requant", 20)
        .actor("reorder", 15)
        .actor("stereo", 25)
        .actor("antialias", 15)
        .actor("imdct", 70)
        .actor("synth", 80)
        .channel("huffman", "requant", production=2, consumption=1)
        .channel("requant", "reorder")
        .channel("reorder", "stereo", production=1, consumption=2)
        .channel("stereo", "antialias", production=2, consumption=1)
        .channel("antialias", "imdct")
        .channel("imdct", "synth", production=1, consumption=2)
        .channel("synth", "huffman", production=1, consumption=1, initial_tokens=1)
        .build()
    )


def jpeg_decoder() -> SDFGraph:
    """JPEG still-image decoder over 6 blocks per restart interval."""
    blocks = 6
    return (
        GraphBuilder("jpeg")
        .actor("parse", 55)
        .actor("huff", 35)
        .actor("dequant", 25)
        .actor("idct", 65)
        .actor("color", 45)
        .channel("parse", "huff", production=blocks, consumption=1)
        .channel("huff", "dequant")
        .channel("dequant", "idct")
        .channel("idct", "color", production=1, consumption=blocks)
        .channel("color", "parse", initial_tokens=1)
        .build()
    )


def modem() -> SDFGraph:
    """V.32-style modem kernel (after the classic Bhattacharyya set)."""
    return (
        GraphBuilder("modem")
        .actor("filt", 22)
        .actor("demod", 38)
        .actor("equal", 45)
        .actor("decode", 30)
        .actor("sync", 18)
        # Repetition vector [filt demod equal decode sync] = [2 4 2 1 1].
        .channel("filt", "demod", production=2, consumption=1)
        .channel("demod", "equal", production=1, consumption=2)
        .channel("equal", "decode", production=1, consumption=2)
        .channel("decode", "sync")
        .channel("sync", "filt", production=2, consumption=1, initial_tokens=2)
        .build()
    )


def sample_rate_converter() -> SDFGraph:
    """Multi-stage sample-rate converter (small-ratio CD->DAT style).

    The classic 147:160 converter has a huge repetition vector; this
    scaled variant keeps the chained up/down-sampling structure with a
    compact vector so analyses stay fast.
    """
    return (
        GraphBuilder("src")
        .actor("in", 12)
        .actor("up2", 10)
        .actor("fir", 35)
        .actor("down3", 10)
        .actor("out", 14)
        # Repetition vector [in up2 fir down3 out] = [1 2 3 2 1].
        .channel("in", "up2", production=2, consumption=1)
        .channel("up2", "fir", production=3, consumption=2)
        .channel("fir", "down3", production=2, consumption=3)
        .channel("down3", "out", production=1, consumption=2)
        .channel("out", "in", initial_tokens=1)
        .build()
    )


def media_device_suite() -> List[SDFGraph]:
    """The application mix of a multi-featured media device.

    Five media applications that may run concurrently — the scenario the
    paper's title describes (video call + music + photo viewing + data
    modem + audio conversion).
    """
    return [
        h263_decoder(),
        mp3_decoder(),
        jpeg_decoder(),
        modem(),
        sample_rate_converter(),
    ]
