"""Benchmark graph generation.

:mod:`repro.generation.random_sdf` replaces the SDF3 ``sdf3generate`` tool
the paper used: seeded random SDFGs that are strongly connected,
consistent and live by construction.  :mod:`repro.generation.gallery`
collects hand-built graphs: the paper's own examples plus media-style
application graphs for the examples and docs.
"""

from repro.generation.gallery import (
    h263_decoder,
    jpeg_decoder,
    modem,
    mp3_decoder,
    paper_figure1,
    paper_two_apps,
    sample_rate_converter,
)
from repro.generation.random_sdf import GeneratorConfig, random_sdf_graph

__all__ = [
    "GeneratorConfig",
    "h263_decoder",
    "jpeg_decoder",
    "modem",
    "mp3_decoder",
    "paper_figure1",
    "paper_two_apps",
    "random_sdf_graph",
    "sample_rate_converter",
]
