"""Benchmark graph generation.

:mod:`repro.generation.random_sdf` replaces the SDF3 ``sdf3generate`` tool
the paper used: seeded random SDFGs that are strongly connected,
consistent and live by construction.  :mod:`repro.generation.gallery`
collects hand-built graphs: the paper's own examples plus media-style
application graphs for the examples and docs.
:mod:`repro.generation.workload` generates seeded scenario-event
streams (start/stop/quality-change requests with Poisson, bursty or
diurnal arrivals) for the run-time resource manager.
"""

from repro.generation.gallery import (
    h263_decoder,
    jpeg_decoder,
    modem,
    mp3_decoder,
    paper_figure1,
    paper_two_apps,
    sample_rate_converter,
)
from repro.generation.random_sdf import GeneratorConfig, random_sdf_graph
from repro.generation.workload import (
    ARRIVAL_PROCESSES,
    WorkloadConfig,
    WorkloadGenerator,
)

__all__ = [
    "ARRIVAL_PROCESSES",
    "GeneratorConfig",
    "WorkloadConfig",
    "WorkloadGenerator",
    "h263_decoder",
    "jpeg_decoder",
    "modem",
    "mp3_decoder",
    "paper_figure1",
    "paper_two_apps",
    "random_sdf_graph",
    "sample_rate_converter",
]
