"""Seeded random SDF graphs (the SDF3 ``sdf3generate`` substitute).

The paper's evaluation (Section 5) uses "ten random SDFGs ... with eight
to ten actors each ... mimicking DSP or a multimedia application, and
[each] was a strongly connected component"; execution times and rates are
random.  This generator reproduces those invariants *by construction*:

* **Strong connectivity** — the actors are arranged on a Hamiltonian
  backbone cycle ``v0 -> v1 -> ... -> v_{n-1} -> v0``; extra chord edges
  only add connectivity.
* **Consistency** — a repetition vector ``q`` is drawn first; each channel
  ``u -> v`` then gets the minimal balanced rates
  ``production = q(v)/g, consumption = q(u)/g`` with
  ``g = gcd(q(u), q(v))``, so the balance equations hold by construction.
* **Liveness** — the backbone's wrap-around edge carries
  ``pipeline_depth`` iterations worth of tokens; *backward* chords (from a
  later to an earlier backbone position) carry one iteration worth.
  Forward chords need none: in the sequential schedule implied by the
  backbone, the producer completes all its firings first.  A final
  :func:`~repro.sdf.liveness.assert_live` guards the construction.

With ``pipeline_depth=1`` the backbone is the critical cycle and the
period equals the sequential workload ``sum_a q(a) tau(a)`` — the same
shape as the paper's Fig. 2 examples; deeper pipelining shifts the
critical cycle onto the chords.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from math import gcd
from typing import List, Optional, Tuple

from repro.exceptions import GraphError
from repro.sdf.actor import Actor
from repro.sdf.channel import Channel
from repro.sdf.graph import SDFGraph
from repro.sdf.liveness import assert_live
from repro.sdf.repetition import repetition_vector


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the random graph generator.

    Attributes
    ----------
    actor_count_range:
        Inclusive range for the number of actors (paper: 8..10).
    execution_time_range:
        Inclusive integer range for ``tau`` (time units).
    repetition_range:
        Inclusive range for the repetition-vector entries; keep small
        (1..3) so HSDF expansions stay compact.
    extra_edge_fraction:
        Number of chord edges as a fraction of the actor count.
    pipeline_depth:
        Iterations worth of tokens on the backbone wrap-around edge.
    actor_prefix:
        Actor names are ``f"{prefix}{i}"``.
    """

    actor_count_range: Tuple[int, int] = (8, 10)
    execution_time_range: Tuple[int, int] = (10, 100)
    repetition_range: Tuple[int, int] = (1, 3)
    extra_edge_fraction: float = 0.5
    pipeline_depth: int = 1
    actor_prefix: str = "t"

    def __post_init__(self) -> None:
        low, high = self.actor_count_range
        if not 2 <= low <= high:
            raise GraphError(
                f"invalid actor count range {self.actor_count_range}"
            )
        if self.pipeline_depth < 1:
            raise GraphError("pipeline_depth must be >= 1")
        if self.extra_edge_fraction < 0:
            raise GraphError("extra_edge_fraction must be >= 0")


def random_sdf_graph(
    name: str,
    seed: int,
    config: Optional[GeneratorConfig] = None,
) -> SDFGraph:
    """Generate one strongly-connected, consistent, live SDF graph.

    Deterministic for a given ``(seed, config)`` pair.
    """
    cfg = config if config is not None else GeneratorConfig()
    rng = random.Random(seed)

    n = rng.randint(*cfg.actor_count_range)
    repetitions = [
        rng.randint(*cfg.repetition_range) for _ in range(n)
    ]
    # Normalize to the *minimal* vector (a common factor would make the
    # drawn vector differ from the graph's computed repetition vector).
    common = 0
    for value in repetitions:
        common = gcd(common, value)
    if common > 1:
        repetitions = [value // common for value in repetitions]
    actors = [
        Actor(
            name=f"{cfg.actor_prefix}{i}",
            execution_time=rng.randint(*cfg.execution_time_range),
        )
        for i in range(n)
    ]

    def balanced_rates(u: int, v: int) -> Tuple[int, int]:
        """Minimal (production, consumption) balancing q[u], q[v]."""
        g = gcd(repetitions[u], repetitions[v])
        return repetitions[v] // g, repetitions[u] // g

    channels: List[Channel] = []
    # Backbone Hamiltonian cycle.
    for i in range(n):
        j = (i + 1) % n
        production, consumption = balanced_rates(i, j)
        initial = 0
        if j == 0:
            # Wrap-around edge: enough tokens for pipeline_depth
            # iterations of the consumer.
            initial = cfg.pipeline_depth * repetitions[0] * consumption
        channels.append(
            Channel(
                source=actors[i].name,
                target=actors[j].name,
                production_rate=production,
                consumption_rate=consumption,
                initial_tokens=initial,
            )
        )

    # Chord edges for structural variety.
    existing = {(i, (i + 1) % n) for i in range(n)}
    chord_count = int(round(cfg.extra_edge_fraction * n))
    attempts = 0
    added = 0
    while added < chord_count and attempts < 20 * chord_count:
        attempts += 1
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v or (u, v) in existing:
            continue
        existing.add((u, v))
        production, consumption = balanced_rates(u, v)
        # Backward chords (producer later in backbone order) need one
        # iteration worth of tokens to keep the sequential schedule
        # feasible; forward chords are fed in time without any.
        initial = repetitions[v] * consumption if u > v else 0
        channels.append(
            Channel(
                source=actors[u].name,
                target=actors[v].name,
                production_rate=production,
                consumption_rate=consumption,
                initial_tokens=initial,
            )
        )
        added += 1

    graph = SDFGraph(name, actors, channels)
    # Construction invariants — cheap, and they turn generator bugs into
    # loud failures instead of corrupt experiments.
    vector = repetition_vector(graph)
    for i, actor in enumerate(actors):
        if vector[actor.name] != repetitions[i]:
            raise GraphError(
                f"generator bug: repetition vector mismatch on "
                f"{actor.name} ({vector[actor.name]} != {repetitions[i]})"
            )
    if not graph.is_strongly_connected():
        raise GraphError("generator bug: graph not strongly connected")
    assert_live(graph)
    return graph
