"""Incremental admission controller built on the composability algebra.

State per processor: one :class:`~repro.core.composability.Composite`
aggregating every admitted actor bound to it.  The controller exercises
exactly the workflow the paper sketches for run-time use:

* **admit** — compose the candidate's actors into their nodes' aggregates
  (Eq. 6/7): O(1) per actor, no re-analysis of resident applications'
  aggregates;
* **estimate** — an actor's expected waiting time is the aggregate of its
  node *minus itself*, obtained with the inverse operators (Eq. 8/9):
  O(1) per actor;
* **withdraw** — decompose the leaving application's actors out of the
  aggregates: O(1) per actor.

Because the ``(x)`` operator is associative only to second order,
repeated compose/decompose cycles accumulate a small drift relative to
recomposing from scratch; :meth:`AdmissionController.rebuild` restores
the exact aggregates (the test suite bounds the drift).  Long-running
deployments pass ``rebuild_interval`` so the controller rebuilds itself
every N compose/decompose cycles instead of relying on the caller to
remember.

Period analysis can run on shared
:class:`~repro.analysis_engine.AnalysisEngine` instances (``engines``):
the engine's cached HSDF expansion and warm-started solver answer each
contended-period query as a weight-only solve, and quality-level
*variants* of an application (same topology, scaled execution times —
see :mod:`repro.runtime.quality`) reuse the base graph's engine because
every query carries a full per-actor time vector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping as TMapping, Optional, Tuple

from repro.analysis_engine import AnalysisEngine
from repro.core.blocking import ActorProfile, build_profiles
from repro.core.composability import (
    Composite,
    compose,
    decompose,
)
from repro.exceptions import AdmissionError
from repro.platform.mapping import Mapping
from repro.sdf.analysis import (
    AnalysisMethod,
    period as analytical_period,
    period_with_response_times,
)
from repro.sdf.graph import SDFGraph


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission request.

    Attributes
    ----------
    admitted:
        Whether the candidate was accepted.
    reason:
        Human-readable explanation (which application failed, if any).
    estimated_periods:
        Estimated contended period of every application *with the
        candidate included* — also filled for rejections so the caller
        can see how close the system was.
    required_periods:
        Registered maximum period of each constrained application.
    """

    admitted: bool
    reason: str
    estimated_periods: Dict[str, float]
    required_periods: Dict[str, float]


# ----------------------------------------------------------------------
# Shared estimation helpers (used by the controller, the runtime
# resource manager's QoS policy search, and the cold-path parity tests)
# ----------------------------------------------------------------------
def compose_aggregates(
    mapping: Mapping,
    profiles: TMapping[Tuple[str, str], ActorProfile],
) -> Dict[str, Composite]:
    """Fresh per-processor aggregates from ``profiles``.

    Profiles are folded in iteration order — the same left-to-right
    convention :meth:`AdmissionController.rebuild` uses — so a fresh
    composition of the controller's own profile dict reproduces its
    aggregates bit-for-bit.
    """
    aggregates: Dict[str, Composite] = {
        name: Composite.empty()
        for name in mapping.platform.processor_names
    }
    for (app, actor), profile in profiles.items():
        processor = mapping.processor_of(app, actor)
        aggregates[processor] = compose(
            aggregates[processor], Composite.of_profile(profile)
        )
    return aggregates


def periods_from_aggregates(
    mapping: Mapping,
    aggregates: TMapping[str, Composite],
    graphs: TMapping[str, SDFGraph],
    profiles: TMapping[Tuple[str, str], ActorProfile],
    method: AnalysisMethod = AnalysisMethod.MCR,
    engines: Optional[TMapping[str, AnalysisEngine]] = None,
) -> Dict[str, float]:
    """Contended period of each application given node aggregates.

    Every actor's waiting time is its node's aggregate with the actor
    itself removed (the paper's "only the inverse operation with their
    own parameters has to be performed").  When an engine with a
    compatible topology is available for an application, the period is a
    warm-started weight-only solve; otherwise the cold
    :func:`period_with_response_times` path runs.
    """
    periods: Dict[str, float] = {}
    for app, graph in graphs.items():
        response_times: Dict[str, float] = {}
        for actor in graph.actor_names:
            profile = profiles[(app, actor)]
            processor = mapping.processor_of(app, actor)
            rest = decompose(
                aggregates[processor], Composite.of_profile(profile)
            )
            waiting = max(0.0, rest.waiting_product)
            response_times[actor] = profile.tau + waiting
        engine = _usable_engine(engines, app, graph)
        if engine is not None:
            periods[app] = engine.period(response_times)
        else:
            periods[app] = period_with_response_times(
                graph, response_times, method=method
            )
    return periods


def estimate_resident_periods(
    mapping: Mapping,
    graphs: TMapping[str, SDFGraph],
    method: AnalysisMethod = AnalysisMethod.MCR,
    engines: Optional[TMapping[str, AnalysisEngine]] = None,
    isolation_periods: Optional[TMapping[str, float]] = None,
) -> Dict[str, float]:
    """From-scratch contended periods of a resident set.

    Builds profiles (isolation periods via ``engines`` when available),
    composes fresh aggregates, and estimates every application.  This is
    the stateless reference the incremental controller is measured
    against, and the evaluator behind the downgrade policy's quality-
    assignment search.
    """
    if isolation_periods is None:
        isolation_periods = {
            name: _isolation_period(graph, method, engines)
            for name, graph in graphs.items()
        }
    profiles = build_profiles(
        list(graphs.values()), periods=dict(isolation_periods)
    )
    aggregates = compose_aggregates(mapping, profiles)
    return periods_from_aggregates(
        mapping, aggregates, graphs, profiles, method=method,
        engines=engines,
    )


def _isolation_period(
    graph: SDFGraph,
    method: AnalysisMethod,
    engines: Optional[TMapping[str, AnalysisEngine]],
) -> float:
    engine = _usable_engine(engines, graph.name, graph)
    if engine is not None:
        return engine.period(graph.execution_times())
    return analytical_period(graph, method=method)


def _usable_engine(
    engines: Optional[TMapping[str, AnalysisEngine]],
    application: str,
    graph: SDFGraph,
) -> Optional[AnalysisEngine]:
    """The application's engine, if its topology matches ``graph``.

    Execution times are allowed to differ (quality-level variants): the
    period queries above always pass a complete per-actor time vector,
    so the engine's base times never leak into the answer.
    """
    if engines is None:
        return None
    engine = engines.get(application)
    if engine is None:
        return None
    if _same_topology(engine.graph, graph):
        return engine
    return None


def _same_topology(first: SDFGraph, second: SDFGraph) -> bool:
    if first is second:
        return True
    if first.actor_names != second.actor_names:
        return False
    def signature(graph: SDFGraph):
        return sorted(
            (
                c.source,
                c.target,
                c.production_rate,
                c.consumption_rate,
                c.initial_tokens,
            )
            for c in graph.channels
        )
    return signature(first) == signature(second)


class AdmissionController:
    """Admits/evicts applications against throughput requirements.

    Parameters
    ----------
    mapping:
        Actor bindings covering every application that may ever request
        admission.
    analysis_method:
        Period engine used for isolation and contended periods.
    engines:
        Optional shared ``{application: AnalysisEngine}``; admission
        requests then run as warm-started weight-only solves.  Engines
        whose topology does not match a requesting graph are ignored
        for that request (cold fallback), so quality variants work.
    rebuild_interval:
        Automatically :meth:`rebuild` after this many compose/decompose
        cycles (an admit or withdraw each count one).  ``None`` keeps
        the legacy manual-rebuild behaviour; ``1`` rebuilds after every
        commit, trading O(total actors) work per cycle for exact
        (drift-free) aggregates.
    """

    def __init__(
        self,
        mapping: Mapping,
        analysis_method: AnalysisMethod = AnalysisMethod.MCR,
        engines: Optional[TMapping[str, AnalysisEngine]] = None,
        rebuild_interval: Optional[int] = None,
    ) -> None:
        if rebuild_interval is not None and rebuild_interval < 1:
            raise AdmissionError(
                f"rebuild_interval must be >= 1 or None, "
                f"got {rebuild_interval}"
            )
        self.mapping = mapping
        self.analysis_method = analysis_method
        self.rebuild_interval = rebuild_interval
        self._engines: Dict[str, AnalysisEngine] = (
            dict(engines) if engines is not None else {}
        )
        self._aggregates: Dict[str, Composite] = {
            name: Composite.empty()
            for name in mapping.platform.processor_names
        }
        self._graphs: Dict[str, SDFGraph] = {}
        self._profiles: Dict[Tuple[str, str], ActorProfile] = {}
        self._required_period: Dict[str, float] = {}
        self._cycles_since_rebuild = 0
        self._total_cycles = 0
        self._rebuild_count = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def admitted_applications(self) -> Tuple[str, ...]:
        return tuple(self._graphs.keys())

    @property
    def cycles_since_rebuild(self) -> int:
        """Compose/decompose cycles since the last (or initial) rebuild."""
        return self._cycles_since_rebuild

    @property
    def total_cycles(self) -> int:
        """Compose/decompose cycles over the controller's lifetime."""
        return self._total_cycles

    @property
    def rebuild_count(self) -> int:
        """How many times the aggregates were recomposed from scratch."""
        return self._rebuild_count

    def graph_of(self, application: str) -> SDFGraph:
        """The (possibly quality-variant) graph admitted for ``application``."""
        try:
            return self._graphs[application]
        except KeyError:
            raise AdmissionError(
                f"application {application!r} is not admitted"
            ) from None

    def required_period_of(self, application: str) -> Optional[float]:
        """Registered requirement, or ``None`` for best-effort apps."""
        if application not in self._graphs:
            raise AdmissionError(
                f"application {application!r} is not admitted"
            )
        return self._required_period.get(application)

    def aggregate_of(self, processor: str) -> Composite:
        """Current aggregate (P, mu*P) of ``processor``."""
        try:
            return self._aggregates[processor]
        except KeyError:
            raise AdmissionError(
                f"unknown processor {processor!r}"
            ) from None

    def utilization(self) -> Dict[str, float]:
        """Blocking probability (busy fraction) per processor."""
        return {
            name: aggregate.probability
            for name, aggregate in self._aggregates.items()
        }

    def estimated_period(self, application: str) -> float:
        """Contended period estimate of an admitted application."""
        if application not in self._graphs:
            raise AdmissionError(
                f"application {application!r} is not admitted"
            )
        periods = self._estimate_periods(self._aggregates, self._graphs)
        return periods[application]

    def estimated_periods(self) -> Dict[str, float]:
        """Contended period estimate of every admitted application."""
        return self._estimate_periods(self._aggregates, self._graphs)

    # ------------------------------------------------------------------
    # Admission / withdrawal
    # ------------------------------------------------------------------
    def request_admission(
        self,
        graph: SDFGraph,
        max_period: Optional[float] = None,
    ) -> AdmissionDecision:
        """Try to admit ``graph``; commit only when all requirements hold.

        Parameters
        ----------
        graph:
            Candidate application (must be covered by the mapping).
        max_period:
            The candidate's own requirement: reject unless its estimated
            contended period stays at or below this value.  ``None``
            imposes no requirement on the candidate itself.
        """
        if graph.name in self._graphs:
            raise AdmissionError(
                f"application {graph.name!r} is already admitted"
            )
        self.mapping.validate_against([graph])

        candidate_profiles = build_profiles(
            [graph],
            periods={
                graph.name: _isolation_period(
                    graph, self.analysis_method, self._engines
                )
            },
        )
        tentative = dict(self._aggregates)
        for (app, actor), profile in candidate_profiles.items():
            processor = self.mapping.processor_of(app, actor)
            tentative[processor] = compose(
                tentative[processor], Composite.of_profile(profile)
            )

        tentative_graphs = dict(self._graphs)
        tentative_graphs[graph.name] = graph
        tentative_all_profiles = dict(self._profiles)
        tentative_all_profiles.update(candidate_profiles)

        periods = self._estimate_periods(
            tentative, tentative_graphs, tentative_all_profiles
        )
        requirements = dict(self._required_period)
        if max_period is not None:
            requirements[graph.name] = max_period

        for app, requirement in requirements.items():
            if periods[app] > requirement * (1 + 1e-12):
                return AdmissionDecision(
                    admitted=False,
                    reason=(
                        f"admitting {graph.name!r} would push "
                        f"{app!r} to period {periods[app]:.2f} beyond its "
                        f"requirement {requirement:.2f}"
                    ),
                    estimated_periods=periods,
                    required_periods=requirements,
                )

        # Commit.
        self._aggregates = tentative
        self._graphs = tentative_graphs
        self._profiles = tentative_all_profiles
        if max_period is not None:
            self._required_period[graph.name] = max_period
        self._note_cycle()
        return AdmissionDecision(
            admitted=True,
            reason=f"{graph.name!r} admitted",
            estimated_periods=periods,
            required_periods=requirements,
        )

    def admit_unchecked(
        self,
        graph: SDFGraph,
        max_period: Optional[float] = None,
    ) -> None:
        """Compose ``graph`` in without the requirement gate.

        The rollback path of the QoS policies: restoring a previously
        resident application must not fail just because the withdraw/
        re-admit cycle changed the ``(x)`` fold order and shifted a
        borderline estimate by its second-order associativity error.
        ``max_period`` is registered (the application keeps its
        requirement for *future* decisions) but not enforced now.
        """
        if graph.name in self._graphs:
            raise AdmissionError(
                f"application {graph.name!r} is already admitted"
            )
        self.mapping.validate_against([graph])
        profiles = build_profiles(
            [graph],
            periods={
                graph.name: _isolation_period(
                    graph, self.analysis_method, self._engines
                )
            },
        )
        for (app, actor), profile in profiles.items():
            processor = self.mapping.processor_of(app, actor)
            self._aggregates[processor] = compose(
                self._aggregates[processor], Composite.of_profile(profile)
            )
        self._graphs[graph.name] = graph
        self._profiles.update(profiles)
        if max_period is not None:
            self._required_period[graph.name] = max_period
        self._note_cycle()

    def withdraw(self, application: str) -> None:
        """Remove an admitted application (Eq. 8/9 decomposition)."""
        if application not in self._graphs:
            raise AdmissionError(
                f"application {application!r} is not admitted"
            )
        graph = self._graphs.pop(application)
        self._required_period.pop(application, None)
        for actor in graph.actor_names:
            profile = self._profiles.pop((application, actor))
            processor = self.mapping.processor_of(application, actor)
            self._aggregates[processor] = decompose(
                self._aggregates[processor], Composite.of_profile(profile)
            )
        self._note_cycle()

    def rebuild(self) -> None:
        """Recompose every aggregate from the stored profiles.

        Clears the numerical drift that compose/decompose cycles
        accumulate (the ``(x)`` operator is associative only to second
        order).  Cost: O(total actors).
        """
        self._aggregates = compose_aggregates(
            self.mapping, self._profiles
        )
        self._cycles_since_rebuild = 0
        self._rebuild_count += 1

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _note_cycle(self) -> None:
        """Count one compose/decompose cycle; auto-rebuild when due."""
        self._total_cycles += 1
        self._cycles_since_rebuild += 1
        if (
            self.rebuild_interval is not None
            and self._cycles_since_rebuild >= self.rebuild_interval
        ):
            self.rebuild()

    def _estimate_periods(
        self,
        aggregates: Dict[str, Composite],
        graphs: Dict[str, SDFGraph],
        profiles: Optional[Dict[Tuple[str, str], ActorProfile]] = None,
    ) -> Dict[str, float]:
        """Estimated contended period of each application."""
        if profiles is None:
            profiles = self._profiles
        return periods_from_aggregates(
            self.mapping,
            aggregates,
            graphs,
            profiles,
            method=self.analysis_method,
            engines=self._engines,
        )
