"""Incremental admission controller built on the composability algebra.

State per processor: one :class:`~repro.core.composability.Composite`
aggregating every admitted actor bound to it.  The controller exercises
exactly the workflow the paper sketches for run-time use:

* **admit** — compose the candidate's actors into their nodes' aggregates
  (Eq. 6/7): O(1) per actor, no re-analysis of resident applications'
  aggregates;
* **estimate** — an actor's expected waiting time is the aggregate of its
  node *minus itself*, obtained with the inverse operators (Eq. 8/9):
  O(1) per actor;
* **withdraw** — decompose the leaving application's actors out of the
  aggregates: O(1) per actor.

Because the ``(x)`` operator is associative only to second order,
repeated compose/decompose cycles accumulate a small drift relative to
recomposing from scratch; :meth:`AdmissionController.rebuild` restores
the exact aggregates (the test suite bounds the drift).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.blocking import ActorProfile, build_profiles
from repro.core.composability import (
    Composite,
    compose,
    decompose,
)
from repro.exceptions import AdmissionError
from repro.platform.mapping import Mapping
from repro.sdf.analysis import (
    AnalysisMethod,
    period as analytical_period,
    period_with_response_times,
)
from repro.sdf.graph import SDFGraph


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission request.

    Attributes
    ----------
    admitted:
        Whether the candidate was accepted.
    reason:
        Human-readable explanation (which application failed, if any).
    estimated_periods:
        Estimated contended period of every application *with the
        candidate included* — also filled for rejections so the caller
        can see how close the system was.
    required_periods:
        Registered maximum period of each constrained application.
    """

    admitted: bool
    reason: str
    estimated_periods: Dict[str, float]
    required_periods: Dict[str, float]


class AdmissionController:
    """Admits/evicts applications against throughput requirements.

    Parameters
    ----------
    mapping:
        Actor bindings covering every application that may ever request
        admission.
    analysis_method:
        Period engine used for isolation and contended periods.
    """

    def __init__(
        self,
        mapping: Mapping,
        analysis_method: AnalysisMethod = AnalysisMethod.MCR,
    ) -> None:
        self.mapping = mapping
        self.analysis_method = analysis_method
        self._aggregates: Dict[str, Composite] = {
            name: Composite.empty()
            for name in mapping.platform.processor_names
        }
        self._graphs: Dict[str, SDFGraph] = {}
        self._profiles: Dict[Tuple[str, str], ActorProfile] = {}
        self._required_period: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def admitted_applications(self) -> Tuple[str, ...]:
        return tuple(self._graphs.keys())

    def aggregate_of(self, processor: str) -> Composite:
        """Current aggregate (P, mu*P) of ``processor``."""
        try:
            return self._aggregates[processor]
        except KeyError:
            raise AdmissionError(
                f"unknown processor {processor!r}"
            ) from None

    def estimated_period(self, application: str) -> float:
        """Contended period estimate of an admitted application."""
        if application not in self._graphs:
            raise AdmissionError(
                f"application {application!r} is not admitted"
            )
        periods = self._estimate_periods(self._aggregates, self._graphs)
        return periods[application]

    # ------------------------------------------------------------------
    # Admission / withdrawal
    # ------------------------------------------------------------------
    def request_admission(
        self,
        graph: SDFGraph,
        max_period: Optional[float] = None,
    ) -> AdmissionDecision:
        """Try to admit ``graph``; commit only when all requirements hold.

        Parameters
        ----------
        graph:
            Candidate application (must be covered by the mapping).
        max_period:
            The candidate's own requirement: reject unless its estimated
            contended period stays at or below this value.  ``None``
            imposes no requirement on the candidate itself.
        """
        if graph.name in self._graphs:
            raise AdmissionError(
                f"application {graph.name!r} is already admitted"
            )
        self.mapping.validate_against([graph])

        candidate_profiles = build_profiles([graph])
        tentative = dict(self._aggregates)
        for (app, actor), profile in candidate_profiles.items():
            processor = self.mapping.processor_of(app, actor)
            tentative[processor] = compose(
                tentative[processor], Composite.of_profile(profile)
            )

        tentative_graphs = dict(self._graphs)
        tentative_graphs[graph.name] = graph
        tentative_all_profiles = dict(self._profiles)
        tentative_all_profiles.update(candidate_profiles)

        periods = self._estimate_periods(
            tentative, tentative_graphs, tentative_all_profiles
        )
        requirements = dict(self._required_period)
        if max_period is not None:
            requirements[graph.name] = max_period

        for app, requirement in requirements.items():
            if periods[app] > requirement * (1 + 1e-12):
                return AdmissionDecision(
                    admitted=False,
                    reason=(
                        f"admitting {graph.name!r} would push "
                        f"{app!r} to period {periods[app]:.2f} beyond its "
                        f"requirement {requirement:.2f}"
                    ),
                    estimated_periods=periods,
                    required_periods=requirements,
                )

        # Commit.
        self._aggregates = tentative
        self._graphs = tentative_graphs
        self._profiles = tentative_all_profiles
        if max_period is not None:
            self._required_period[graph.name] = max_period
        return AdmissionDecision(
            admitted=True,
            reason=f"{graph.name!r} admitted",
            estimated_periods=periods,
            required_periods=requirements,
        )

    def withdraw(self, application: str) -> None:
        """Remove an admitted application (Eq. 8/9 decomposition)."""
        if application not in self._graphs:
            raise AdmissionError(
                f"application {application!r} is not admitted"
            )
        graph = self._graphs.pop(application)
        self._required_period.pop(application, None)
        for actor in graph.actor_names:
            profile = self._profiles.pop((application, actor))
            processor = self.mapping.processor_of(application, actor)
            self._aggregates[processor] = decompose(
                self._aggregates[processor], Composite.of_profile(profile)
            )

    def rebuild(self) -> None:
        """Recompose every aggregate from the stored profiles.

        Clears the numerical drift that compose/decompose cycles
        accumulate (the ``(x)`` operator is associative only to second
        order).  Cost: O(total actors).
        """
        aggregates = {
            name: Composite.empty()
            for name in self.mapping.platform.processor_names
        }
        for (app, actor), profile in self._profiles.items():
            processor = self.mapping.processor_of(app, actor)
            aggregates[processor] = compose(
                aggregates[processor], Composite.of_profile(profile)
            )
        self._aggregates = aggregates

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _estimate_periods(
        self,
        aggregates: Dict[str, Composite],
        graphs: Dict[str, SDFGraph],
        profiles: Optional[Dict[Tuple[str, str], ActorProfile]] = None,
    ) -> Dict[str, float]:
        """Estimated contended period of each application.

        Every actor's waiting time is its node's aggregate with the actor
        itself removed (the paper's "only the inverse operation with
        their own parameters has to be performed").
        """
        if profiles is None:
            profiles = self._profiles
        periods: Dict[str, float] = {}
        for app, graph in graphs.items():
            response_times: Dict[str, float] = {}
            for actor in graph.actor_names:
                profile = profiles[(app, actor)]
                processor = self.mapping.processor_of(app, actor)
                rest = decompose(
                    aggregates[processor], Composite.of_profile(profile)
                )
                waiting = max(0.0, rest.waiting_product)
                response_times[actor] = profile.tau + waiting
            periods[app] = period_with_response_times(
                graph, response_times, method=self.analysis_method
            )
        return periods
