"""Run-time admission control (the application the paper's Sections 1 and
6 motivate: "the approach ... can also be applied at run-time for
admission control").

:class:`~repro.admission.controller.AdmissionController` keeps one
composability aggregate (Eq. 6/7) per processor.  Admitting an
application composes its actors in (O(1) per actor); estimating any
actor's waiting time removes only that actor with the inverse operators
(Eq. 8/9); withdrawing an application decomposes its actors out.  An
application is admitted only when, with it added, every resident
application (and the newcomer) still meets its registered throughput
requirement.
"""

from repro.admission.controller import (
    AdmissionController,
    AdmissionDecision,
    compose_aggregates,
    estimate_resident_periods,
    periods_from_aggregates,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "compose_aggregates",
    "estimate_resident_periods",
    "periods_from_aggregates",
]
