"""Worst-case response-time baselines the paper compares against.

* :mod:`repro.wcrt.round_robin` — non-preemptive round-robin WCRT
  (reference [6], Hoes' master thesis), the "Analyzed Worst Case" series
  of the paper's evaluation.
* :mod:`repro.wcrt.tdma` — TDMA WCRT (reference [3], Bekooij et al.),
  included as an extension baseline; requires preemption.
"""

from repro.wcrt.round_robin import (
    WorstCaseRRWaitingModel,
    worst_case_response_time,
)
from repro.wcrt.tdma import TDMAWaitingModel, tdma_response_time
from repro.wcrt.weighted_round_robin import (
    WeightedRRWaitingModel,
    weighted_rr_response_time,
)

__all__ = [
    "TDMAWaitingModel",
    "WeightedRRWaitingModel",
    "WorstCaseRRWaitingModel",
    "tdma_response_time",
    "weighted_rr_response_time",
    "worst_case_response_time",
]
