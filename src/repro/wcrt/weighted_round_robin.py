"""Worst-case response time under non-preemptive *weighted* round-robin.

Generalizes the reference-[6] round-robin bound
(:mod:`repro.wcrt.round_robin`): the arbiter still rotates over the
co-mapped actors, but member ``b`` may receive up to ``w(b)`` grants per
visit before the rotation advances (``w`` is assigned per application —
the bandwidth knob a platform integrator actually turns).  In the worst
case actor ``a``'s request arrives just as its own slot passed, so every
other member spends its *full* weighted allocation first::

    t_wait(a)     = sum_{b != a on node} w(app(b)) * tau(b)
    t_response(a) = tau(a) + t_wait(a)

With all weights 1 this is exactly the reference-[6] bound.  Soundness
argument (mirrors the unweighted case): after ``a`` requests, the
rotation reaches ``a`` after finishing the in-flight grant (residual
``<= tau``, part of that member's allocation) and giving every member
between the arbiter position and ``a`` at most its remaining allocation
— in total at most ``w(b) * tau(b)`` per other member ``b``.  The
matching DES policy is ``weighted_round_robin``
(:class:`~repro.simulation.arbiter.WeightedRoundRobinArbiter`); the
conformance harness checks the analytic period upper-bounds the
simulated one under seeded per-application weights.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.core.blocking import ActorProfile, ResidentVectors
from repro.core.specs import parse_weight_argument
from repro.exceptions import AnalysisError


def parse_weights(argument: Optional[str]) -> "dict[str, int]":
    """Parse a ``"A=2,B=1"`` weights specification (CLI model argument).

    The pair grammar itself lives in
    :func:`repro.core.specs.parse_weight_argument` (shared with the
    placement search's spec formatting); this wrapper applies the
    positive-integer weight rule on top.
    """
    return validate_weights(parse_weight_argument(argument))


def validate_weights(
    weights: Mapping[object, int],
    error: type = AnalysisError,
) -> dict:
    """Check every weight is a positive integer slice count.

    The single source of the weight rule for all three consumers — this
    model, the DES arbiter/engine (which pass their layer's ``error``
    type), and the spec parser.
    """
    for owner, weight in weights.items():
        if (
            not isinstance(weight, int)
            or isinstance(weight, bool)
            or weight < 1
        ):
            raise error(
                f"weight of {owner!r} must be an integer >= 1, "
                f"got {weight!r}"
            )
    return dict(weights)


def weighted_rr_response_time(
    own_tau: float,
    other_weighted_taus: Sequence[float],
) -> float:
    """``tau(a) + sum of every other member's weighted allocation``."""
    return own_tau + sum(other_weighted_taus)


class WeightedRRWaitingModel:
    """Weighted round-robin WCRT as a waiting model.

    Parameters
    ----------
    weights:
        Per-application slice weights; applications not listed get
        ``default_weight``.  All-defaults reduces to the reference-[6]
        round-robin bound (:class:`~repro.wcrt.round_robin.
        WorstCaseRRWaitingModel`).
    default_weight:
        Weight of unlisted applications (>= 1).
    """

    name = "weighted-rr"
    complexity = "O(n)"
    #: The bound reads only tau and weights, never the blocking
    #: probabilities, so the kernel is trivially safe per-row.
    batch_rowwise = True

    def __init__(
        self,
        weights: Optional[Mapping[str, int]] = None,
        default_weight: int = 1,
    ) -> None:
        self.weights = validate_weights(weights or {})
        self.default_weight = validate_weights(
            {"<default>": default_weight}
        )["<default>"]

    def weight_of(self, application: str) -> int:
        """Slice weight of one application."""
        return self.weights.get(application, self.default_weight)

    def check_applications(self, applications) -> None:
        """Reject weights naming applications outside the set.

        Called by the estimator (which knows the application set) so a
        typo like ``wrr:a=2`` on an A/B/C gallery fails loudly instead
        of silently producing the unweighted bound — mirroring the DES
        engine's check on ``arbitration_params['weights']``.
        """
        known = set(applications)
        unknown = sorted(set(self.weights) - known)
        if unknown:
            raise AnalysisError(
                f"weighted round-robin weights name unknown "
                f"applications {unknown!r}; known: {sorted(known)}"
            )

    def waiting_time(
        self, own: ActorProfile, others: Sequence[ActorProfile]
    ) -> float:
        total = 0.0
        for other in others:
            total = total + self.weight_of(other.application) * other.tau
        return total

    def waiting_times_batch(
        self, vectors: ResidentVectors, inc, own_active, xp
    ):
        """Batched bound: weighted-``tau`` sum of active contenders.

        Accumulates resident by resident in processor order — the same
        additions, in the same order, as the scalar loop (inactive
        contenders add an exact ``0.0``) — so the kernel is
        bit-identical to the scalar path, not merely within the parity
        band.
        """
        U, n, _ = inc.shape
        waiting = xp.zeros((U, n))
        for i in range(n):
            allocation = self.weight_of(
                vectors.applications[i]
            ) * float(vectors.tau[i])
            waiting = waiting + inc[:, :, i] * allocation
        return waiting
