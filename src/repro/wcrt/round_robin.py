"""Worst-case response time under non-preemptive round-robin arbitration.

Reference [6] of the paper (Hoes, "Predictable Dynamic Behavior in
NoC-based MPSoC").  Under round-robin, between any two consecutive grants
to actor ``a`` every other actor sharing the processor is served at most
once; in the worst case actor ``a``'s request arrives just as its slot
passed, so it waits the *full* execution time of every other actor::

    t_wait(a)     = sum_{b != a on node} tau(b)
    t_response(a) = tau(a) + t_wait(a)

The bound is safe for non-preemptive systems and needs only the same
limited information as the probabilistic approach (the co-mapped actors'
execution times) — but it grows linearly with the number of co-mapped
actors regardless of how rarely they actually run, which is exactly the
pessimism the paper's Figures 5 and 6 exhibit.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.blocking import ActorProfile, ResidentVectors


def worst_case_response_time(
    own_tau: float, other_taus: Sequence[float]
) -> float:
    """``tau(a) + sum of all co-mapped execution times``."""
    return own_tau + sum(other_taus)


class WorstCaseRRWaitingModel:
    """Reference-[6] bound as a waiting model (for the shared pipeline).

    Note the model ignores blocking probabilities entirely: the
    worst case assumes every other actor requests just before ``own``
    every single time.
    """

    name = "worst-case"
    complexity = "O(n)"
    #: The bound reads only tau, never the blocking probabilities, so
    #: the kernel is trivially safe under per-row probabilities.
    batch_rowwise = True

    def waiting_time(
        self, own: ActorProfile, others: Sequence[ActorProfile]
    ) -> float:
        return float(sum(other.tau for other in others))

    def waiting_times_batch(
        self, vectors: ResidentVectors, inc, own_active, xp
    ):
        """Batched bound: sum of every active contender's ``tau``."""
        return xp.einsum("uoi,i->uo", inc, vectors.tau)
