"""Worst-case response time under TDMA arbitration.

Reference [3] of the paper (Bekooij et al.) analyses dataflow graphs on
processors shared through a TDMA wheel: each co-mapped actor owns a fixed
slice of a repeating frame, so an actor only progresses during its own
slice and execution is effectively preemptive at slice boundaries.

For an actor with execution time ``tau`` and slice ``s`` in a wheel of
total length ``W`` (one slice per resident actor here), the worst case
arrival just misses its slice::

    full_slices   = ceil(tau / s)
    t_response    = tau + full_slices * (W - s)

i.e. the actor pays the foreign part of the wheel once per slice it
needs.  This is even more conservative than the round-robin bound when
utilizations are low, and it *requires preemption* — the paper uses this
to argue its probabilistic technique fits non-preemptive platforms where
TDMA analysis does not apply.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.blocking import ActorProfile, ResidentVectors
from repro.exceptions import AnalysisError


def tdma_response_time(
    own_tau: float,
    resident_count: int,
    slice_length: float,
) -> float:
    """Worst-case response time on a TDMA wheel.

    Parameters
    ----------
    own_tau:
        Execution time needing to be served.
    resident_count:
        Number of actors sharing the wheel (including the owner); each
        owns one slice.
    slice_length:
        Length of each slice.
    """
    if resident_count < 1:
        raise AnalysisError("TDMA wheel needs at least one resident")
    if slice_length <= 0:
        raise AnalysisError("TDMA slice length must be positive")
    if resident_count == 1:
        return own_tau
    wheel = resident_count * slice_length
    full_slices = math.ceil(own_tau / slice_length)
    return own_tau + full_slices * (wheel - slice_length)


class TDMAWaitingModel:
    """Reference-[3] TDMA bound as a waiting model.

    ``slice_length`` defaults to the owner's execution time, which is the
    most favourable wheel for the owner (a single foreign rotation).
    """

    name = "tdma"
    complexity = "O(n)"
    #: The bound reads only tau, never the blocking probabilities, so
    #: the kernel is trivially safe under per-row probabilities.
    batch_rowwise = True

    def __init__(self, slice_length: float | None = None) -> None:
        self.slice_length = slice_length

    def waiting_time(
        self, own: ActorProfile, others: Sequence[ActorProfile]
    ) -> float:
        if not others:
            return 0.0
        slice_length = (
            self.slice_length if self.slice_length is not None else own.tau
        )
        response = tdma_response_time(
            own.tau, len(others) + 1, slice_length
        )
        return response - own.tau

    def waiting_times_batch(
        self, vectors: ResidentVectors, inc, own_active, xp
    ):
        """Batched TDMA bound.

        With ``contenders[u, o]`` active others, the wheel has
        ``contenders + 1`` slices and the waiting is
        ``ceil(tau / s) * contenders * s`` — zero when alone, matching
        the scalar early-outs.  A zero default slice (an active
        zero-``tau`` owner sharing its wheel) is rejected exactly where
        :func:`tdma_response_time` rejects it on the scalar path,
        instead of propagating NaN.
        """
        contenders = inc.sum(axis=2)
        if self.slice_length is not None:
            if self.slice_length <= 0:
                raise AnalysisError(
                    "TDMA slice length must be positive"
                )
            slices = xp.full_like(vectors.tau, float(self.slice_length))
        else:
            slices = vectors.tau
            bad_slice = (slices <= 0)[None, :]
            if bool(
                xp.any(
                    (own_active > 0) & bad_slice & (contenders > 0)
                )
            ):
                raise AnalysisError(
                    "TDMA slice length must be positive"
                )
        full_slices = xp.ceil(
            xp.divide(
                vectors.tau,
                slices,
                out=xp.ones_like(slices),
                where=slices > 0,
            )
        )
        return (full_slices * slices)[None, :] * contenders
