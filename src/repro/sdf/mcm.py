"""Maximum cycle ratio (MCR) analysis.

The period of a consistent, live SDF graph equals the maximum over all
cycles ``C`` of its HSDF expansion of::

    ratio(C) = sum of execution times of vertices on C
             / sum of edge delays on C

(reference [4] of the paper — Dasdan's survey of optimum cycle ratio/mean
algorithms).  A cycle with zero total delay cannot execute — it is a
deadlock — and makes the ratio infinite.

Three algorithms are provided and cross-checked in the test suite:

* ``howard`` — policy iteration, the practical default (fast; linear
  number of iterations in practice, as observed by Dasdan).
* ``lawler`` — binary search on the ratio with a Bellman–Ford positive
  cycle test per probe; simple, robust, slower.
* ``brute`` — enumerate all simple cycles (Johnson's algorithm); only
  viable for small graphs, used as ground truth in tests.

All operate on a generic edge list so they are reusable beyond HSDF
graphs; :func:`max_cycle_ratio` adapts an :class:`~repro.sdf.hsdf.HSDFGraph`
(vertex weights become weights of outgoing edges).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import AnalysisError, DeadlockError
from repro.sdf.hsdf import HSDFGraph


@dataclass(frozen=True)
class RatioEdge:
    """Generic MCR problem edge: weight gained, transit (delay) spent."""

    source: int
    target: int
    weight: float
    transit: int


@dataclass(frozen=True)
class CycleRatioResult:
    """Maximum cycle ratio plus one cycle that attains it.

    ``cycle`` lists vertex ids in order (first vertex repeated at the end
    is omitted).  ``ratio`` is ``-inf`` for an acyclic graph.
    """

    ratio: float
    cycle: Tuple[int, ...]


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------
def max_cycle_ratio(
    hsdf: HSDFGraph,
    method: str = "howard",
) -> CycleRatioResult:
    """Maximum cycle ratio of an HSDF graph (its iteration period).

    Raises
    ------
    DeadlockError
        If the graph contains a zero-delay cycle.
    AnalysisError
        If the graph has no cycle at all (period undefined: a DAG
        executes in finite time and has no steady-state period).
    """
    index = hsdf.vertex_index()
    weights = {index[v.key]: v.execution_time for v in hsdf.vertices}
    edges = [
        RatioEdge(
            source=index[e.source],
            target=index[e.target],
            weight=weights[index[e.source]],
            transit=e.delay,
        )
        for e in hsdf.edges
    ]
    return max_cycle_ratio_edges(len(hsdf.vertices), edges, method=method)


def max_cycle_ratio_edges(
    vertex_count: int,
    edges: Sequence[RatioEdge],
    method: str = "howard",
) -> CycleRatioResult:
    """Maximum cycle ratio of a generic edge-weighted graph."""
    _assert_no_zero_delay_cycle(vertex_count, edges)
    if method == "howard":
        solver = _solve_howard
    elif method == "lawler":
        solver = _solve_lawler
    elif method == "brute":
        solver = _solve_brute
    else:
        raise AnalysisError(f"unknown MCR method {method!r}")

    best: Optional[CycleRatioResult] = None
    for component in _strongly_connected_components(vertex_count, edges):
        if len(component) == 0:
            continue
        component_set = set(component)
        inner = [
            e
            for e in edges
            if e.source in component_set and e.target in component_set
        ]
        if not inner:
            continue
        result = solver(component, inner)
        if result is not None and (best is None or result.ratio > best.ratio):
            best = result
    if best is None:
        raise AnalysisError(
            "graph has no cycle: the maximum cycle ratio (and hence the "
            "period) is undefined"
        )
    return best


# ----------------------------------------------------------------------
# Deadlock (zero-delay cycle) detection
# ----------------------------------------------------------------------
def _assert_no_zero_delay_cycle(
    vertex_count: int, edges: Sequence[RatioEdge]
) -> None:
    """A cycle of total delay zero must consist of delay-0 edges only."""
    adjacency: Dict[int, List[int]] = {}
    for edge in edges:
        if edge.transit == 0:
            adjacency.setdefault(edge.source, []).append(edge.target)
    WHITE, GRAY, BLACK = 0, 1, 2
    color = [WHITE] * vertex_count
    for root in adjacency:
        if color[root] != WHITE:
            continue
        stack: List[Tuple[int, int]] = [(root, 0)]
        color[root] = GRAY
        while stack:
            node, child_idx = stack[-1]
            children = adjacency.get(node, [])
            if child_idx < len(children):
                stack[-1] = (node, child_idx + 1)
                child = children[child_idx]
                if color[child] == GRAY:
                    raise DeadlockError(
                        "zero-delay cycle detected: the graph deadlocks "
                        f"(cycle passes through vertex {child})"
                    )
                if color[child] == WHITE:
                    color[child] = GRAY
                    stack.append((child, 0))
            else:
                color[node] = BLACK
                stack.pop()


# ----------------------------------------------------------------------
# Strongly connected components (Tarjan, iterative)
# ----------------------------------------------------------------------
def _strongly_connected_components(
    vertex_count: int, edges: Sequence[RatioEdge]
) -> List[List[int]]:
    adjacency: List[List[int]] = [[] for _ in range(vertex_count)]
    for edge in edges:
        adjacency[edge.source].append(edge.target)

    index_counter = 0
    indices = [-1] * vertex_count
    lowlink = [0] * vertex_count
    on_stack = [False] * vertex_count
    stack: List[int] = []
    components: List[List[int]] = []

    for root in range(vertex_count):
        if indices[root] != -1:
            continue
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            node, child_idx = work[-1]
            if child_idx == 0:
                indices[node] = index_counter
                lowlink[node] = index_counter
                index_counter += 1
                stack.append(node)
                on_stack[node] = True
            advanced = False
            while child_idx < len(adjacency[node]):
                child = adjacency[node][child_idx]
                child_idx += 1
                if indices[child] == -1:
                    work[-1] = (node, child_idx)
                    work.append((child, 0))
                    advanced = True
                    break
                if on_stack[child]:
                    lowlink[node] = min(lowlink[node], indices[child])
            if advanced:
                continue
            work.pop()
            if lowlink[node] == indices[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components


# ----------------------------------------------------------------------
# Howard's policy iteration (per SCC)
# ----------------------------------------------------------------------
_EPS = 1e-10
_MAX_HOWARD_ITERATIONS = 10_000


def _solve_howard(
    component: Sequence[int], edges: Sequence[RatioEdge]
) -> Optional[CycleRatioResult]:
    """Max cycle ratio of one strongly-connected component.

    Classic two-phase policy iteration: every vertex selects one outgoing
    edge (the *policy*); the single cycle of the policy graph yields a
    candidate ratio and vertex potentials; edges that would improve the
    potential switch the policy.  Terminates when no edge improves.
    """
    nodes = list(component)
    if len(nodes) == 1 and not edges:
        return None
    local = {node: i for i, node in enumerate(nodes)}
    n = len(nodes)
    out_edges: List[List[RatioEdge]] = [[] for _ in range(n)]
    for edge in edges:
        out_edges[local[edge.source]].append(edge)
    for i in range(n):
        if not out_edges[i]:
            # Strong connectivity with >1 node guarantees out-degree >= 1;
            # a single node without self-loop carries no cycle.
            return None

    # Initial policy: the highest-weight edge out of every vertex.
    policy: List[RatioEdge] = [
        max(out, key=lambda e: e.weight) for out in out_edges
    ]

    ratio = [0.0] * n
    value = [0.0] * n

    for _ in range(_MAX_HOWARD_ITERATIONS):
        _evaluate_policy(n, local, policy, ratio, value)
        improved = False
        for i in range(n):
            for edge in out_edges[i]:
                j = local[edge.target]
                if ratio[j] > ratio[i] + _EPS:
                    policy[i] = edge
                    improved = True
                elif abs(ratio[j] - ratio[i]) <= _EPS:
                    candidate = (
                        edge.weight - ratio[i] * edge.transit + value[j]
                    )
                    if candidate > value[i] + _EPS:
                        policy[i] = edge
                        improved = True
        if not improved:
            break
    else:  # pragma: no cover - safety net
        raise AnalysisError("Howard's algorithm failed to converge")

    best_i = max(range(n), key=lambda i: ratio[i])
    cycle = _policy_cycle(n, local, policy, best_i)
    return CycleRatioResult(ratio=ratio[best_i], cycle=tuple(cycle))


def _evaluate_policy(
    n: int,
    local: Dict[int, int],
    policy: List[RatioEdge],
    ratio: List[float],
    value: List[float],
) -> None:
    """Compute per-vertex cycle ratio and potentials under ``policy``.

    The policy graph is functional (out-degree one), so every vertex leads
    into exactly one cycle.  Each cycle's ratio is computed exactly from
    its members; potentials propagate backwards from an anchor on the
    cycle.
    """
    state = [0] * n  # 0 unvisited, 1 in progress, 2 done
    for start in range(n):
        if state[start] != 0:
            continue
        path: List[int] = []
        node = start
        while state[node] == 0:
            state[node] = 1
            path.append(node)
            node = local[policy[node].target]
        if state[node] == 1:
            # Found a new cycle: path[k:] where path[k] == node.
            k = path.index(node)
            cycle_nodes = path[k:]
            total_weight = sum(policy[i].weight for i in cycle_nodes)
            total_transit = sum(policy[i].transit for i in cycle_nodes)
            if total_transit == 0:
                # Guarded earlier by the zero-delay cycle check, but a
                # policy cycle is an actual graph cycle, so be safe.
                raise DeadlockError(
                    "policy cycle with zero total delay: graph deadlocks"
                )
            cycle_ratio = total_weight / total_transit
            anchor = node
            ratio[anchor] = cycle_ratio
            value[anchor] = 0.0
            # Walk the cycle backwards to set potentials consistently:
            # v(u) = w(u,pi(u)) - ratio * t(u,pi(u)) + v(pi(u)).
            ordered = cycle_nodes[cycle_nodes.index(anchor):] + cycle_nodes[
                : cycle_nodes.index(anchor)
            ]
            for u in reversed(ordered[1:]):
                succ = local[policy[u].target]
                ratio[u] = cycle_ratio
                value[u] = (
                    policy[u].weight
                    - cycle_ratio * policy[u].transit
                    + value[succ]
                )
            for u in cycle_nodes:
                state[u] = 2
        # Tree vertices hanging off the (now solved) cycle/path suffix.
        for u in reversed(path):
            if state[u] == 2:
                continue
            succ = local[policy[u].target]
            ratio[u] = ratio[succ]
            value[u] = (
                policy[u].weight - ratio[u] * policy[u].transit + value[succ]
            )
            state[u] = 2


def _policy_cycle(
    n: int,
    local: Dict[int, int],
    policy: List[RatioEdge],
    start_local: int,
) -> List[int]:
    """Extract the (global-id) cycle reached from ``start_local``."""
    seen: Dict[int, int] = {}
    order: List[int] = []
    node = start_local
    while node not in seen:
        seen[node] = len(order)
        order.append(node)
        node = local[policy[node].target]
    cycle_local = order[seen[node]:]
    globals_by_local = {i: e.source for i, e in enumerate(policy)}
    return [globals_by_local[i] for i in cycle_local]


# ----------------------------------------------------------------------
# Lawler's binary search
# ----------------------------------------------------------------------
def _solve_lawler(
    component: Sequence[int], edges: Sequence[RatioEdge]
) -> Optional[CycleRatioResult]:
    """Binary search on the ratio; Bellman–Ford tests each probe.

    A probe ``lam`` asks: is there a cycle with
    ``sum(w) - lam * sum(t) > 0``?  If yes the true ratio exceeds
    ``lam``.  The search narrows until the interval is tight, then the
    critical cycle is recovered from the final positive-cycle detection.
    """
    nodes = list(component)
    if len(nodes) == 1 and not edges:
        return None
    total_weight = sum(abs(e.weight) for e in edges) + 1.0
    low, high = 0.0, total_weight
    # A valid upper bound: any cycle ratio <= sum of all weights (transit
    # of a cycle is >= 1 after the zero-delay check).
    cycle: Tuple[int, ...] = ()
    found_any = False
    for _ in range(200):
        mid = 0.5 * (low + high)
        probe = _positive_cycle(nodes, edges, mid)
        if probe is not None:
            low = mid
            cycle = probe
            found_any = True
        else:
            high = mid
        if high - low <= 1e-12 * max(1.0, high):
            break
    if not found_any:
        probe = _positive_cycle(nodes, edges, -1.0)
        if probe is None:
            return None
        cycle = probe
    ratio = _ratio_of_cycle(cycle, edges)
    return CycleRatioResult(ratio=ratio, cycle=cycle)


def _positive_cycle(
    nodes: Sequence[int], edges: Sequence[RatioEdge], lam: float
) -> Optional[Tuple[int, ...]]:
    """Bellman–Ford positive-cycle detection on w' = w - lam*t."""
    local = {node: i for i, node in enumerate(nodes)}
    n = len(nodes)
    dist = [0.0] * n
    parent_edge: List[Optional[RatioEdge]] = [None] * n
    updated_vertex = -1
    for _ in range(n):
        updated_vertex = -1
        for edge in edges:
            u, v = local[edge.source], local[edge.target]
            candidate = dist[u] + edge.weight - lam * edge.transit
            if candidate > dist[v] + 1e-15:
                dist[v] = candidate
                parent_edge[v] = edge
                updated_vertex = v
        if updated_vertex == -1:
            return None
    # A vertex still updated after n rounds lies on / is reachable from a
    # positive cycle; walk parents n times to land inside the cycle.
    node = updated_vertex
    for _ in range(n):
        node = local[parent_edge[node].source]  # type: ignore[union-attr]
    cycle = []
    walk = node
    while True:
        cycle.append(nodes[walk])
        walk = local[parent_edge[walk].source]  # type: ignore[union-attr]
        if walk == node:
            break
    cycle.reverse()
    return tuple(cycle)


def _ratio_of_cycle(
    cycle: Sequence[int], edges: Sequence[RatioEdge]
) -> float:
    """Exact ratio of a specific vertex cycle (max over parallel edges
    is not needed: the cycle was produced edge-by-edge, so recover the
    best parallel edge between consecutive vertices)."""
    by_pair: Dict[Tuple[int, int], List[RatioEdge]] = {}
    for edge in edges:
        by_pair.setdefault((edge.source, edge.target), []).append(edge)
    weight = 0.0
    transit = 0
    m = len(cycle)
    for i in range(m):
        u, v = cycle[i], cycle[(i + 1) % m]
        candidates = by_pair.get((u, v))
        if not candidates:
            raise AnalysisError(f"cycle edge {u}->{v} not present in graph")
        # The binding parallel edge for a maximal cycle is the one with
        # the lowest transit (ties: highest weight).
        chosen = min(candidates, key=lambda e: (e.transit, -e.weight))
        weight += chosen.weight
        transit += chosen.transit
    if transit == 0:
        raise DeadlockError("cycle with zero total delay: graph deadlocks")
    return weight / transit


# ----------------------------------------------------------------------
# Brute force (Johnson's simple cycle enumeration)
# ----------------------------------------------------------------------
_BRUTE_FORCE_LIMIT = 200_000


def _solve_brute(
    component: Sequence[int], edges: Sequence[RatioEdge]
) -> Optional[CycleRatioResult]:
    """Enumerate every simple cycle and take the maximum ratio.

    Exponential; guarded by ``_BRUTE_FORCE_LIMIT`` enumerated cycles.
    Only intended as a test oracle for small graphs.
    """
    nodes = sorted(component)
    adjacency: Dict[int, List[RatioEdge]] = {node: [] for node in nodes}
    for edge in edges:
        adjacency[edge.source].append(edge)

    best_ratio = float("-inf")
    best_cycle: Tuple[int, ...] = ()
    count = 0

    # Simple DFS-based enumeration rooted at each vertex; cycles are only
    # reported when they return to the root and the root is the smallest
    # vertex on the cycle (canonical form, avoids duplicates).
    for root in nodes:
        stack: List[Tuple[int, float, int, Tuple[int, ...]]] = [
            (root, 0.0, 0, (root,))
        ]
        while stack:
            node, weight, transit, path = stack.pop()
            for edge in adjacency[node]:
                count += 1
                if count > _BRUTE_FORCE_LIMIT:
                    raise AnalysisError(
                        "brute-force cycle enumeration exceeded limit; "
                        "use method='howard' for graphs of this size"
                    )
                target = edge.target
                if target == root:
                    total_transit = transit + edge.transit
                    if total_transit == 0:
                        raise DeadlockError(
                            "cycle with zero total delay: graph deadlocks"
                        )
                    ratio = (weight + edge.weight) / total_transit
                    if ratio > best_ratio:
                        best_ratio = ratio
                        best_cycle = path
                elif target > root and target not in path:
                    stack.append(
                        (
                            target,
                            weight + edge.weight,
                            transit + edge.transit,
                            path + (target,),
                        )
                    )
    if best_cycle == () and best_ratio == float("-inf"):
        return None
    return CycleRatioResult(ratio=best_ratio, cycle=best_cycle)
