"""Maximum cycle ratio (MCR) analysis.

The period of a consistent, live SDF graph equals the maximum over all
cycles ``C`` of its HSDF expansion of::

    ratio(C) = sum of execution times of vertices on C
             / sum of edge delays on C

(reference [4] of the paper — Dasdan's survey of optimum cycle ratio/mean
algorithms).  A cycle with zero total delay cannot execute — it is a
deadlock — and makes the ratio infinite.

Three algorithms are provided and cross-checked in the test suite:

* ``howard`` — policy iteration, the practical default (fast; linear
  number of iterations in practice, as observed by Dasdan).
* ``lawler`` — binary search on the ratio with a Bellman–Ford positive
  cycle test per probe; simple, robust, slower.
* ``brute`` — enumerate all simple cycles (Johnson's algorithm); only
  viable for small graphs, used as ground truth in tests.

All operate on a generic edge list so they are reusable beyond HSDF
graphs; :func:`max_cycle_ratio` adapts an :class:`~repro.sdf.hsdf.HSDFGraph`
(vertex weights become weights of outgoing edges).

Two features support *incremental* analysis, where the same graph
structure is solved many times with different weights (the probabilistic
estimator inflates execution times to response times once per
application, per fixed-point iteration, per use-case):

* Howard's algorithm accepts an ``initial_policy`` — the converged
  policy of a previous solve (exposed as
  :attr:`CycleRatioResult.policy`).  Policy iteration converges from any
  valid policy, and from a near-optimal one it typically terminates in
  one or two improvement rounds (Dasdan's survey observes the iteration
  count is small in practice and shrinks further with a good start).
  Potentials are re-derived from the policy on the first evaluation, so
  the policy alone carries the whole warm-start state.
* :class:`IncrementalMCRSolver` goes further and caches everything that
  depends only on *structure* — the zero-delay-cycle (deadlock) check,
  the SCC decomposition, and the per-component edge lists — so repeated
  :meth:`~IncrementalMCRSolver.solve` calls with fresh weights pay only
  for the (warm-started) policy iteration itself.

For *batches* of weight vectors over one structure (the vectorized
estimation pipeline solves one application's period for every use-case
of a sweep at once), :meth:`IncrementalMCRSolver.solve_many` goes one
step further than warm starting.  The period is a maximum of cycle
ratios, each linear in the weights, and across a sweep the *optimal*
cycle barely changes; the solver therefore

1. remembers every critical cycle a scalar Howard solve ever produced
   (as a per-edge incidence vector plus its total transit),
2. evaluates all remembered cycles against the whole weight batch with
   one matrix product, yielding a candidate ratio per vector (a lower
   bound — every candidate is a genuine cycle's ratio), and
3. *certifies* each candidate with a batched max-plus Bellman–Ford pass
   over the cyclic part of the graph: if relaxation under
   ``w - candidate * transit`` admits no positive cycle, no cycle beats
   the candidate and it *is* the maximum cycle ratio.

Vectors whose certification fails fall back to an ordinary warm-started
scalar solve, which also registers the newly critical cycle — so a
sweep pays a handful of scalar solves while the bulk of the batch is
answered by a few array operations.  Certification uses a relative
tolerance of ~1e-12, well inside the 1e-9 parity contract of the
vectorized pipeline (Howard's own convergence epsilon is 1e-10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import AnalysisError, DeadlockError
from repro.sdf.hsdf import HSDFGraph


@dataclass(frozen=True)
class RatioEdge:
    """Generic MCR problem edge: weight gained, transit (delay) spent."""

    source: int
    target: int
    weight: float
    transit: int


@dataclass(frozen=True)
class CycleRatioResult:
    """Maximum cycle ratio plus one cycle that attains it.

    ``cycle`` lists vertex ids in order (first vertex repeated at the end
    is omitted).  ``ratio`` is ``-inf`` for an acyclic graph.

    ``policy`` (Howard only, ``None`` otherwise) records the converged
    policy: entry ``v`` is the index into the solved edge sequence of the
    outgoing edge vertex ``v`` selected, or ``-1`` for vertices outside
    every cyclic component.  Feed it back as ``initial_policy`` to
    warm-start the next solve of the same structure.
    """

    ratio: float
    cycle: Tuple[int, ...]
    policy: Optional[Tuple[int, ...]] = None


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------
def max_cycle_ratio(
    hsdf: HSDFGraph,
    method: str = "howard",
    initial_policy: Optional[Sequence[int]] = None,
) -> CycleRatioResult:
    """Maximum cycle ratio of an HSDF graph (its iteration period).

    ``initial_policy`` (Howard only) warm-starts policy iteration from a
    previously converged :attr:`CycleRatioResult.policy` — useful when
    the same expansion is re-solved with updated execution times.

    Raises
    ------
    DeadlockError
        If the graph contains a zero-delay cycle.
    AnalysisError
        If the graph has no cycle at all (period undefined: a DAG
        executes in finite time and has no steady-state period).
    """
    vertex_count, edges = hsdf_ratio_edges(hsdf)
    return max_cycle_ratio_edges(
        vertex_count, edges, method=method, initial_policy=initial_policy
    )


def hsdf_ratio_edges(hsdf: HSDFGraph) -> Tuple[int, List[RatioEdge]]:
    """Adapt an HSDF graph to the generic ratio problem.

    Vertex execution times become the weights of the vertex's *outgoing*
    edges; HSDF delays become transits.  Edge order follows
    ``hsdf.edges``, which is the weight/policy index space of
    :class:`IncrementalMCRSolver` built on the result — the single
    adapter shared by :func:`max_cycle_ratio` and the analysis engine.
    """
    index = hsdf.vertex_index()
    weights = {index[v.key]: v.execution_time for v in hsdf.vertices}
    edges = [
        RatioEdge(
            source=index[e.source],
            target=index[e.target],
            weight=weights[index[e.source]],
            transit=e.delay,
        )
        for e in hsdf.edges
    ]
    return len(hsdf.vertices), edges


def max_cycle_ratio_edges(
    vertex_count: int,
    edges: Sequence[RatioEdge],
    method: str = "howard",
    initial_policy: Optional[Sequence[int]] = None,
) -> CycleRatioResult:
    """Maximum cycle ratio of a generic edge-weighted graph.

    ``initial_policy`` warm-starts Howard's algorithm (ignored by the
    other methods): entry ``v`` names the edge index vertex ``v`` should
    initially select, as produced by a previous solve's
    :attr:`CycleRatioResult.policy`.
    """
    solver = IncrementalMCRSolver(vertex_count, edges, method=method)
    return solver.solve(initial_policy=initial_policy)


class IncrementalMCRSolver:
    """Re-solvable MCR problem over one fixed graph structure.

    The constructor performs every computation that depends only on the
    *structure* — transit values, adjacency, SCC decomposition, and the
    zero-delay-cycle (deadlock) check.  :meth:`solve` then accepts fresh
    per-edge weights and, for Howard's method, warm-starts policy
    iteration from the previously converged policy, so a sequence of
    solves over the same graph with drifting weights costs a fraction of
    repeated cold solves.

    Parameters
    ----------
    vertex_count / edges:
        The MCR problem; the edge *order* is the weight order of
        :meth:`solve` and the index space of policies.
    method:
        ``"howard"`` (warm-startable), ``"lawler"`` or ``"brute"``.
    """

    def __init__(
        self,
        vertex_count: int,
        edges: Sequence[RatioEdge],
        method: str = "howard",
    ) -> None:
        self.vertex_count = vertex_count
        self.edges: Tuple[RatioEdge, ...] = tuple(edges)
        _assert_no_zero_delay_cycle(vertex_count, self.edges)
        if method not in ("howard", "lawler", "brute"):
            raise AnalysisError(f"unknown MCR method {method!r}")
        self.method = method
        self._base_weights: List[float] = [e.weight for e in self.edges]
        # Components and their member edge ids never change; compute once.
        self._components: List[Tuple[List[int], List[int]]] = []
        for component in _strongly_connected_components(
            vertex_count, self.edges
        ):
            component_set = set(component)
            inner_ids = [
                i
                for i, e in enumerate(self.edges)
                if e.source in component_set and e.target in component_set
            ]
            if inner_ids:
                self._components.append((component, inner_ids))
        # Howard additionally pre-factors each component into local
        # adjacency arrays so a solve touches no edge objects at all:
        # every out-entry is (edge id, local target, transit), with the
        # weight looked up by edge id in the solve's weight vector.
        self._howard_components: List[
            Tuple[List[int], List[List[Tuple[int, int, int]]]]
        ] = []
        if method == "howard":
            for component, inner_ids in self._components:
                nodes = list(component)
                local = {node: i for i, node in enumerate(nodes)}
                out: List[List[Tuple[int, int, int]]] = [
                    [] for _ in nodes
                ]
                for gid in inner_ids:
                    edge = self.edges[gid]
                    out[local[edge.source]].append(
                        (gid, local[edge.target], edge.transit)
                    )
                # Strong connectivity with >1 node guarantees out-degree
                # >= 1; a single node appears here only with a self-loop
                # (inner_ids is non-empty), so every row is populated.
                self._howard_components.append((nodes, out))
        self._policy: Optional[Tuple[int, ...]] = None
        self.solve_count = 0
        # Batched-solve state: critical cycles seen so far (keyed by
        # their edge-id sets), the dense candidate matrix derived from
        # them, and the Bellman-Ford arrays over the cyclic subgraph.
        # All lazy — a solver that never sees solve_many pays nothing.
        self._cycle_keys: set = set()
        self._cycles: List[Tuple[Tuple[int, ...], int]] = []
        self._cycle_matrix_cache: Optional[Tuple[object, object]] = None
        self._bf_cache: Optional[Tuple[object, ...]] = None
        self.batch_accepted = 0
        self.batch_fallbacks = 0

    @property
    def policy(self) -> Optional[Tuple[int, ...]]:
        """Converged policy of the last Howard solve (``None`` before)."""
        return self._policy

    def solve(
        self,
        weights: Optional[Sequence[float]] = None,
        initial_policy: Optional[Sequence[int]] = None,
    ) -> CycleRatioResult:
        """Solve with fresh ``weights`` (one per edge, constructor order).

        ``weights=None`` keeps the constructor's weights.  Howard starts
        from ``initial_policy`` when given, else from the policy of the
        previous solve, else from the classic highest-weight policy.
        """
        if weights is None:
            weight_vector: Sequence[float] = self._base_weights
        elif len(weights) != len(self.edges):
            raise AnalysisError(
                f"expected {len(self.edges)} weights, got {len(weights)}"
            )
        else:
            weight_vector = weights
        start = initial_policy if initial_policy is not None else self._policy

        best: Optional[CycleRatioResult] = None
        best_cycle_edges: Optional[Tuple[int, ...]] = None
        merged_policy = [-1] * self.vertex_count
        have_policy = False
        if self.method == "howard":
            for nodes, out in self._howard_components:
                result, fragment, cycle_edges = _solve_howard(
                    nodes, out, weight_vector, start
                )
                have_policy = True
                for vertex, edge_id in fragment.items():
                    merged_policy[vertex] = edge_id
                if best is None or result.ratio > best.ratio:
                    best = result
                    best_cycle_edges = cycle_edges
        else:
            solver = (
                _solve_lawler if self.method == "lawler" else _solve_brute
            )
            for component, inner_ids in self._components:
                if weights is None:
                    inner = [self.edges[i] for i in inner_ids]
                else:
                    inner = [
                        RatioEdge(
                            self.edges[i].source,
                            self.edges[i].target,
                            weight_vector[i],
                            self.edges[i].transit,
                        )
                        for i in inner_ids
                    ]
                result = solver(component, inner)
                if result is not None and (
                    best is None or result.ratio > best.ratio
                ):
                    best = result
        if best is None:
            raise AnalysisError(
                "graph has no cycle: the maximum cycle ratio (and hence "
                "the period) is undefined"
            )
        self.solve_count += 1
        if have_policy:
            self._policy = tuple(merged_policy)
            best = CycleRatioResult(
                ratio=best.ratio, cycle=best.cycle, policy=self._policy
            )
            if best_cycle_edges:
                self._register_cycle(best_cycle_edges)
        return best

    # ------------------------------------------------------------------
    # Batched solving (candidate cycles + Bellman-Ford certification)
    # ------------------------------------------------------------------
    def _register_cycle(self, cycle_edges: Sequence[int]) -> None:
        """Remember a critical cycle for future candidate evaluation."""
        key = tuple(sorted(cycle_edges))
        if key in self._cycle_keys:
            return
        transit = sum(self.edges[gid].transit for gid in cycle_edges)
        self._cycle_keys.add(key)
        self._cycles.append((tuple(cycle_edges), transit))
        self._cycle_matrix_cache = None

    def _cycle_matrix(self, xp) -> Tuple[object, object]:
        """``(K, E)`` incidence matrix + ``(K,)`` transits of the
        remembered cycles."""
        if self._cycle_matrix_cache is None:
            matrix = xp.zeros((len(self._cycles), len(self.edges)))
            transits = xp.empty(len(self._cycles))
            for row, (gids, transit) in enumerate(self._cycles):
                for gid in gids:
                    matrix[row, gid] += 1.0
                transits[row] = float(transit)
            self._cycle_matrix_cache = (matrix, transits)
        return self._cycle_matrix_cache

    def _bf_structure(self, xp) -> Tuple[object, ...]:
        """Arrays describing the cyclic subgraph for batched relaxation.

        Returns ``(gids, sources, gather, transits, vertex_count)``:
        ``gather`` is a ``(vertex_count, max_in_degree)`` matrix of edge
        positions (into the ``gids`` order) padded with a sentinel
        position holding ``-inf``, so one fancy-indexed ``max`` computes
        every vertex's best incoming relaxation at once.
        """
        if self._bf_cache is None:
            inner: List[int] = []
            for _, inner_ids in self._components:
                inner.extend(inner_ids)
            vertices = sorted(
                {self.edges[g].source for g in inner}
                | {self.edges[g].target for g in inner}
            )
            local = {v: i for i, v in enumerate(vertices)}
            incoming: List[List[int]] = [[] for _ in vertices]
            for position, gid in enumerate(inner):
                incoming[local[self.edges[gid].target]].append(position)
            sentinel = len(inner)
            width = max(len(rows) for rows in incoming)
            gather = xp.full(
                (len(vertices), width), sentinel, dtype=int
            )
            for row, positions in enumerate(incoming):
                for slot, position in enumerate(positions):
                    gather[row, slot] = position
            self._bf_cache = (
                xp.asarray(inner, dtype=int),
                xp.asarray(
                    [local[self.edges[g].source] for g in inner],
                    dtype=int,
                ),
                gather,
                xp.asarray(
                    [self.edges[g].transit for g in inner], dtype=float
                ),
                len(vertices),
            )
        return self._bf_cache

    def _certify_batch(self, weights, candidates, xp):
        """Which candidate ratios are certified maximal (boolean array).

        Max-plus Bellman-Ford over the cyclic subgraph with per-edge
        weight ``w - candidate * transit``: if a relaxation sweep after
        ``V`` warm-up sweeps no longer improves any distance (beyond a
        ~1e-12 relative tolerance), no cycle has a ratio above the
        candidate, so the candidate — itself a genuine cycle's ratio —
        is the maximum.  Soundness of the single final check: the
        max-plus relaxation operator is monotone and commutes with
        uniform shifts, so once one sweep gains at most ``tol``
        everywhere, every later sweep does too — a cycle whose ratio
        meaningfully exceeds the candidate cannot stall.  Rows that
        still improve are left uncertified and re-solved exactly by the
        caller.
        """
        gids, sources, gather, transits, count = self._bf_structure(xp)
        reduced = weights[:, gids] - candidates[:, None] * transits
        rows = reduced.shape[0]
        edge_count = reduced.shape[1]
        distance = xp.zeros((rows, count))
        padded = xp.full((rows, edge_count + 1), -xp.inf)
        # Distances legitimately grow for up to ``V`` sweeps (longest
        # simple path), so a per-sweep stall check rarely fires and its
        # reduction + bool sync would dominate these small arrays; run
        # the warm-up sweeps unconditionally and test improvement once.
        maximum = xp.maximum
        amax = xp.max
        for _ in range(count):
            padded[:, :edge_count] = distance[:, sources] + reduced
            distance = maximum(
                distance, amax(padded[:, gather], axis=2)
            )
        tolerance = 1e-12 * maximum(
            1.0, amax(xp.abs(reduced), axis=1)
        )
        padded[:, :edge_count] = distance[:, sources] + reduced
        relaxed = maximum(distance, amax(padded[:, gather], axis=2))
        return ~xp.any(
            relaxed > distance + tolerance[:, None], axis=1
        )

    def solve_many(self, weights_matrix, xp=None) -> List[float]:
        """Maximum cycle ratios for a whole batch of weight vectors.

        ``weights_matrix`` holds one weight vector per row (constructor
        edge order, like :meth:`solve`).  With an array module ``xp``
        and the Howard method, candidates from remembered critical
        cycles are certified in batch (see the module docstring) and
        only uncertified rows pay a scalar warm-started solve; without
        ``xp`` — the pure-Python backend — every row runs the ordinary
        scalar path, preserving today's arithmetic exactly.

        Returns plain Python floats in row order.
        """
        if xp is None or self.method != "howard":
            return [
                float(self.solve(list(row)).ratio)
                for row in weights_matrix
            ]
        weights = xp.asarray(weights_matrix, dtype=float)
        if weights.ndim != 2 or weights.shape[1] != len(self.edges):
            raise AnalysisError(
                f"expected a (batch, {len(self.edges)}) weight matrix, "
                f"got shape {tuple(weights.shape)!r}"
            )
        batch = weights.shape[0]
        ratios: List[float] = [0.0] * batch

        def solve_scalar(row: int) -> None:
            ratios[row] = float(
                self.solve([float(w) for w in weights[row]]).ratio
            )
            self.batch_fallbacks += 1

        pending = list(range(batch))
        if not self._cycles and pending:
            # Seed the candidate set with one scalar solve.
            solve_scalar(pending.pop(0))
        # Alternate certification rounds with exact straggler solves:
        # each round certifies every pending row whose optimum is
        # already a remembered cycle, then a few stragglers are solved
        # exactly — registering *their* critical cycles — and the
        # survivors get another chance against the grown candidate
        # set.  The straggler count doubles per round, so a sweep with
        # k distinct critical cycles costs ~k scalar solves after
        # O(log k) certification passes, while a pathologically
        # diverse batch (every row a different cycle) degrades to the
        # plain scalar cost plus only O(log batch) certification
        # passes instead of one per row.
        stragglers_per_round = 1
        while pending:
            matrix, transits = self._cycle_matrix(xp)
            rows = weights[pending]
            candidates = xp.max(
                (rows @ matrix.T) / transits[None, :], axis=1
            )
            certified = self._certify_batch(rows, candidates, xp)
            survivors: List[int] = []
            for position, row in enumerate(pending):
                if bool(certified[position]):
                    ratios[row] = float(candidates[position])
                    self.batch_accepted += 1
                else:
                    survivors.append(row)
            if not survivors:
                break
            cycles_before = len(self._cycles)
            for _ in range(min(stragglers_per_round, len(survivors))):
                solve_scalar(survivors.pop(0))
            stragglers_per_round *= 2
            if len(self._cycles) == cycles_before:
                # The exact solves found no new cycle, so the next
                # certification round would be identical for every
                # survivor; finish them exactly instead of looping.
                for row in survivors:
                    solve_scalar(row)
                break
            pending = survivors
        return ratios


# ----------------------------------------------------------------------
# Deadlock (zero-delay cycle) detection
# ----------------------------------------------------------------------
def _assert_no_zero_delay_cycle(
    vertex_count: int, edges: Sequence[RatioEdge]
) -> None:
    """A cycle of total delay zero must consist of delay-0 edges only."""
    adjacency: Dict[int, List[int]] = {}
    for edge in edges:
        if edge.transit == 0:
            adjacency.setdefault(edge.source, []).append(edge.target)
    WHITE, GRAY, BLACK = 0, 1, 2
    color = [WHITE] * vertex_count
    for root in adjacency:
        if color[root] != WHITE:
            continue
        stack: List[Tuple[int, int]] = [(root, 0)]
        color[root] = GRAY
        while stack:
            node, child_idx = stack[-1]
            children = adjacency.get(node, [])
            if child_idx < len(children):
                stack[-1] = (node, child_idx + 1)
                child = children[child_idx]
                if color[child] == GRAY:
                    raise DeadlockError(
                        "zero-delay cycle detected: the graph deadlocks "
                        f"(cycle passes through vertex {child})"
                    )
                if color[child] == WHITE:
                    color[child] = GRAY
                    stack.append((child, 0))
            else:
                color[node] = BLACK
                stack.pop()


# ----------------------------------------------------------------------
# Strongly connected components (Tarjan, iterative)
# ----------------------------------------------------------------------
def _strongly_connected_components(
    vertex_count: int, edges: Sequence[RatioEdge]
) -> List[List[int]]:
    adjacency: List[List[int]] = [[] for _ in range(vertex_count)]
    for edge in edges:
        adjacency[edge.source].append(edge.target)

    index_counter = 0
    indices = [-1] * vertex_count
    lowlink = [0] * vertex_count
    on_stack = [False] * vertex_count
    stack: List[int] = []
    components: List[List[int]] = []

    for root in range(vertex_count):
        if indices[root] != -1:
            continue
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            node, child_idx = work[-1]
            if child_idx == 0:
                indices[node] = index_counter
                lowlink[node] = index_counter
                index_counter += 1
                stack.append(node)
                on_stack[node] = True
            advanced = False
            while child_idx < len(adjacency[node]):
                child = adjacency[node][child_idx]
                child_idx += 1
                if indices[child] == -1:
                    work[-1] = (node, child_idx)
                    work.append((child, 0))
                    advanced = True
                    break
                if on_stack[child]:
                    lowlink[node] = min(lowlink[node], indices[child])
            if advanced:
                continue
            work.pop()
            if lowlink[node] == indices[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components


# ----------------------------------------------------------------------
# Howard's policy iteration (per SCC)
# ----------------------------------------------------------------------
_EPS = 1e-10
_MAX_HOWARD_ITERATIONS = 10_000


def _solve_howard(
    nodes: Sequence[int],
    out: Sequence[Sequence[Tuple[int, int, int]]],
    weights: Sequence[float],
    initial_policy: Optional[Sequence[int]] = None,
) -> Tuple[CycleRatioResult, Dict[int, int], Tuple[int, ...]]:
    """Max cycle ratio of one strongly-connected component.

    Classic two-phase policy iteration: every vertex selects one outgoing
    edge (the *policy*); the single cycle of the policy graph yields a
    candidate ratio and vertex potentials; edges that would improve the
    potential switch the policy.  Terminates when no edge improves.

    Operates on the pre-factored component representation of
    :class:`IncrementalMCRSolver` (which only registers components that
    carry at least one inner edge, so every vertex here has an outgoing
    edge): ``out[i]`` lists the outgoing edges of
    the ``i``-th component vertex as ``(edge id, local target, transit)``
    and ``weights`` maps edge id to the current weight, so a solve
    allocates no edge objects.  ``initial_policy`` (entry per *global*
    vertex id, ``-1`` = no preference) seeds each vertex's selected edge
    when it names a valid outgoing edge of that vertex, falling back to
    the classic highest-weight initialization otherwise.  Returns the
    result plus the converged ``{global vertex id: edge id}`` policy.
    """
    n = len(nodes)

    # Initial policy: the warm-start edge where one is given and still
    # valid, else the highest-weight edge out of every vertex.
    policy: List[Tuple[int, int, int]] = []
    for i, node in enumerate(nodes):
        chosen: Optional[Tuple[int, int, int]] = None
        if initial_policy is not None and 0 <= node < len(initial_policy):
            wanted = initial_policy[node]
            if wanted >= 0:
                for entry in out[i]:
                    if entry[0] == wanted:
                        chosen = entry
                        break
        if chosen is None:
            chosen = max(out[i], key=lambda entry: weights[entry[0]])
        policy.append(chosen)

    ratio = [0.0] * n
    value = [0.0] * n

    for _ in range(_MAX_HOWARD_ITERATIONS):
        _evaluate_policy(n, policy, weights, ratio, value)
        improved = False
        for i in range(n):
            for entry in out[i]:
                gid, j, transit = entry
                if ratio[j] > ratio[i] + _EPS:
                    policy[i] = entry
                    improved = True
                elif abs(ratio[j] - ratio[i]) <= _EPS:
                    candidate = (
                        weights[gid] - ratio[i] * transit + value[j]
                    )
                    if candidate > value[i] + _EPS:
                        policy[i] = entry
                        improved = True
        if not improved:
            break
    else:  # pragma: no cover - safety net
        raise AnalysisError("Howard's algorithm failed to converge")

    best_i = max(range(n), key=lambda i: ratio[i])
    cycle, cycle_edges = _policy_cycle(nodes, policy, best_i)
    converged = {node: policy[i][0] for i, node in enumerate(nodes)}
    return (
        CycleRatioResult(ratio=ratio[best_i], cycle=tuple(cycle)),
        converged,
        cycle_edges,
    )


def _evaluate_policy(
    n: int,
    policy: List[Tuple[int, int, int]],
    weights: Sequence[float],
    ratio: List[float],
    value: List[float],
) -> None:
    """Compute per-vertex cycle ratio and potentials under ``policy``.

    The policy graph is functional (out-degree one), so every vertex leads
    into exactly one cycle.  Each cycle's ratio is computed exactly from
    its members; potentials propagate backwards from an anchor on the
    cycle.
    """
    state = [0] * n  # 0 unvisited, 1 in progress, 2 done
    for start in range(n):
        if state[start] != 0:
            continue
        path: List[int] = []
        node = start
        while state[node] == 0:
            state[node] = 1
            path.append(node)
            node = policy[node][1]
        if state[node] == 1:
            # Found a new cycle: path[k:] where path[k] == node.
            k = path.index(node)
            cycle_nodes = path[k:]
            total_weight = sum(weights[policy[i][0]] for i in cycle_nodes)
            total_transit = sum(policy[i][2] for i in cycle_nodes)
            if total_transit == 0:
                # Guarded earlier by the zero-delay cycle check, but a
                # policy cycle is an actual graph cycle, so be safe.
                raise DeadlockError(
                    "policy cycle with zero total delay: graph deadlocks"
                )
            cycle_ratio = total_weight / total_transit
            anchor = node
            ratio[anchor] = cycle_ratio
            value[anchor] = 0.0
            # Walk the cycle backwards to set potentials consistently:
            # v(u) = w(u,pi(u)) - ratio * t(u,pi(u)) + v(pi(u)).
            ordered = cycle_nodes[cycle_nodes.index(anchor):] + cycle_nodes[
                : cycle_nodes.index(anchor)
            ]
            for u in reversed(ordered[1:]):
                gid, succ, transit = policy[u]
                ratio[u] = cycle_ratio
                value[u] = (
                    weights[gid] - cycle_ratio * transit + value[succ]
                )
            for u in cycle_nodes:
                state[u] = 2
        # Tree vertices hanging off the (now solved) cycle/path suffix.
        for u in reversed(path):
            if state[u] == 2:
                continue
            gid, succ, transit = policy[u]
            ratio[u] = ratio[succ]
            value[u] = (
                weights[gid] - ratio[u] * transit + value[succ]
            )
            state[u] = 2


def _policy_cycle(
    nodes: Sequence[int],
    policy: List[Tuple[int, int, int]],
    start_local: int,
) -> Tuple[List[int], Tuple[int, ...]]:
    """The (global-id) cycle reached from ``start_local``.

    Returns the cycle's vertices in order plus the global edge ids the
    policy follows along it (the representation
    :meth:`IncrementalMCRSolver.solve_many` evaluates candidates with).
    """
    seen: Dict[int, int] = {}
    order: List[int] = []
    node = start_local
    while node not in seen:
        seen[node] = len(order)
        order.append(node)
        node = policy[node][1]
    cycle_local = order[seen[node]:]
    return (
        [nodes[i] for i in cycle_local],
        tuple(policy[i][0] for i in cycle_local),
    )


# ----------------------------------------------------------------------
# Lawler's binary search
# ----------------------------------------------------------------------
def _solve_lawler(
    component: Sequence[int], edges: Sequence[RatioEdge]
) -> Optional[CycleRatioResult]:
    """Binary search on the ratio; Bellman–Ford tests each probe.

    A probe ``lam`` asks: is there a cycle with
    ``sum(w) - lam * sum(t) > 0``?  If yes the true ratio exceeds
    ``lam``.  The search narrows until the interval is tight, then the
    critical cycle is recovered from the final positive-cycle detection.
    """
    nodes = list(component)
    if len(nodes) == 1 and not edges:
        return None
    total_weight = sum(abs(e.weight) for e in edges) + 1.0
    low, high = 0.0, total_weight
    # A valid upper bound: any cycle ratio <= sum of all weights (transit
    # of a cycle is >= 1 after the zero-delay check).
    cycle: Tuple[int, ...] = ()
    found_any = False
    for _ in range(200):
        mid = 0.5 * (low + high)
        probe = _positive_cycle(nodes, edges, mid)
        if probe is not None:
            low = mid
            cycle = probe
            found_any = True
        else:
            high = mid
        if high - low <= 1e-12 * max(1.0, high):
            break
    if not found_any:
        probe = _positive_cycle(nodes, edges, -1.0)
        if probe is None:
            return None
        cycle = probe
    ratio = _ratio_of_cycle(cycle, edges)
    return CycleRatioResult(ratio=ratio, cycle=cycle)


def _positive_cycle(
    nodes: Sequence[int], edges: Sequence[RatioEdge], lam: float
) -> Optional[Tuple[int, ...]]:
    """Bellman–Ford positive-cycle detection on w' = w - lam*t."""
    local = {node: i for i, node in enumerate(nodes)}
    n = len(nodes)
    dist = [0.0] * n
    parent_edge: List[Optional[RatioEdge]] = [None] * n
    updated_vertex = -1
    for _ in range(n):
        updated_vertex = -1
        for edge in edges:
            u, v = local[edge.source], local[edge.target]
            candidate = dist[u] + edge.weight - lam * edge.transit
            if candidate > dist[v] + 1e-15:
                dist[v] = candidate
                parent_edge[v] = edge
                updated_vertex = v
        if updated_vertex == -1:
            return None
    # A vertex still updated after n rounds lies on / is reachable from a
    # positive cycle; walk parents n times to land inside the cycle.
    node = updated_vertex
    for _ in range(n):
        node = local[parent_edge[node].source]  # type: ignore[union-attr]
    cycle = []
    walk = node
    while True:
        cycle.append(nodes[walk])
        walk = local[parent_edge[walk].source]  # type: ignore[union-attr]
        if walk == node:
            break
    cycle.reverse()
    return tuple(cycle)


def _ratio_of_cycle(
    cycle: Sequence[int], edges: Sequence[RatioEdge]
) -> float:
    """Exact ratio of a specific vertex cycle (max over parallel edges
    is not needed: the cycle was produced edge-by-edge, so recover the
    best parallel edge between consecutive vertices)."""
    by_pair: Dict[Tuple[int, int], List[RatioEdge]] = {}
    for edge in edges:
        by_pair.setdefault((edge.source, edge.target), []).append(edge)
    weight = 0.0
    transit = 0
    m = len(cycle)
    for i in range(m):
        u, v = cycle[i], cycle[(i + 1) % m]
        candidates = by_pair.get((u, v))
        if not candidates:
            raise AnalysisError(f"cycle edge {u}->{v} not present in graph")
        # The binding parallel edge for a maximal cycle is the one with
        # the lowest transit (ties: highest weight).
        chosen = min(candidates, key=lambda e: (e.transit, -e.weight))
        weight += chosen.weight
        transit += chosen.transit
    if transit == 0:
        raise DeadlockError("cycle with zero total delay: graph deadlocks")
    return weight / transit


# ----------------------------------------------------------------------
# Brute force (Johnson's simple cycle enumeration)
# ----------------------------------------------------------------------
_BRUTE_FORCE_LIMIT = 200_000


def _solve_brute(
    component: Sequence[int], edges: Sequence[RatioEdge]
) -> Optional[CycleRatioResult]:
    """Enumerate every simple cycle and take the maximum ratio.

    Exponential; guarded by ``_BRUTE_FORCE_LIMIT`` enumerated cycles.
    Only intended as a test oracle for small graphs.
    """
    nodes = sorted(component)
    adjacency: Dict[int, List[RatioEdge]] = {node: [] for node in nodes}
    for edge in edges:
        adjacency[edge.source].append(edge)

    best_ratio = float("-inf")
    best_cycle: Tuple[int, ...] = ()
    count = 0

    # Simple DFS-based enumeration rooted at each vertex; cycles are only
    # reported when they return to the root and the root is the smallest
    # vertex on the cycle (canonical form, avoids duplicates).
    for root in nodes:
        stack: List[Tuple[int, float, int, Tuple[int, ...]]] = [
            (root, 0.0, 0, (root,))
        ]
        while stack:
            node, weight, transit, path = stack.pop()
            for edge in adjacency[node]:
                count += 1
                if count > _BRUTE_FORCE_LIMIT:
                    raise AnalysisError(
                        "brute-force cycle enumeration exceeded limit; "
                        "use method='howard' for graphs of this size"
                    )
                target = edge.target
                if target == root:
                    total_transit = transit + edge.transit
                    if total_transit == 0:
                        raise DeadlockError(
                            "cycle with zero total delay: graph deadlocks"
                        )
                    ratio = (weight + edge.weight) / total_transit
                    if ratio > best_ratio:
                        best_ratio = ratio
                        best_cycle = path
                elif target > root and target not in path:
                    stack.append(
                        (
                            target,
                            weight + edge.weight,
                            transit + edge.transit,
                            path + (target,),
                        )
                    )
    if best_cycle == () and best_ratio == float("-inf"):
        return None
    return CycleRatioResult(ratio=best_ratio, cycle=best_cycle)
