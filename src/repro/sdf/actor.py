"""Actor model for SDF graphs.

An actor (Definition 1 of the paper) is a task with a fixed execution time
``tau`` on the node it is mapped to.  The optional ``execution_time_model``
hook supports the paper's future-work extension to stochastic execution
times; the deterministic case simply stores an integer/float constant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import GraphError


@dataclass(frozen=True)
class Actor:
    """A vertex of an SDF graph.

    Parameters
    ----------
    name:
        Identifier, unique within its graph (e.g. ``"a0"``).
    execution_time:
        Time needed to complete one firing on the node the actor is
        mapped to (``tau(a)``, Definition 1).  Must be positive; zero is
        rejected because the probabilistic model divides by periods that
        would degenerate, and the DES engine would livelock on zero-length
        firings.
    processor_type:
        Free-form label used by heterogeneous platforms to restrict which
        processors can host the actor (``"risc"``, ``"dsp"``, ``"ip"`` ...).
        Purely informative for the analysis; the mapping layer checks it.
    """

    name: str
    execution_time: float
    processor_type: str = "proc"

    def __post_init__(self) -> None:
        if not self.name:
            raise GraphError("actor name must be a non-empty string")
        if self.execution_time <= 0:
            raise GraphError(
                f"actor {self.name!r}: execution time must be positive, "
                f"got {self.execution_time!r}"
            )

    def with_execution_time(self, execution_time: float) -> "Actor":
        """Return a copy of this actor with a different execution time.

        Used by the estimator to build *response-time* variants of a graph
        without mutating the original (waiting time + execution time).
        """
        return Actor(
            name=self.name,
            execution_time=execution_time,
            processor_type=self.processor_type,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}(tau={self.execution_time:g})"
