"""High-level period/throughput analysis (Definition 3 of the paper).

``period(graph)`` is the time one *iteration* of the graph takes on
average in self-timed execution on dedicated resources; ``throughput`` is
its inverse.  Two engines are available:

* ``AnalysisMethod.MCR`` (default) — expand to HSDF and compute the
  maximum cycle ratio with Howard's algorithm.  Fast and exact.
* ``AnalysisMethod.STATE_SPACE`` — execute self-timed until the state
  recurs.  Exact, independent implementation; the test suite insists both
  agree, which is the library's main defence against analysis bugs.

``period_with_response_times`` is the hook the probabilistic estimator
uses: it computes the period of the graph whose actor execution times have
been inflated to response times (execution + expected waiting), i.e. step
11 of the paper's Fig. 4 algorithm.  ``critical_cycle`` exposes *which*
actors bound the period — the diagnostic a designer reaches for when an
estimate misses its budget.

All functions here are *stateless* conveniences implemented on top of
:class:`repro.analysis_engine.AnalysisEngine` (constructed one-shot per
call).  Callers that analyse the same graph repeatedly — the estimator,
sweeps, admission control — should hold an engine instead: it caches the
HSDF expansion, the SCC decomposition and the converged Howard policy,
turning each repeat solve into a weight-only update.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.sdf.graph import SDFGraph


class AnalysisMethod(enum.Enum):
    """Which period engine to use."""

    MCR = "mcr"
    STATE_SPACE = "state_space"


def period(
    graph: SDFGraph,
    method: AnalysisMethod = AnalysisMethod.MCR,
    mcr_algorithm: str = "howard",
) -> float:
    """Average time per iteration of ``graph`` in isolation.

    Parameters
    ----------
    graph:
        Consistent, live SDF graph.
    method:
        Analysis engine (see :class:`AnalysisMethod`).
    mcr_algorithm:
        Algorithm for the MCR engine: ``"howard"``, ``"lawler"`` or
        ``"brute"``.
    """
    return _one_shot_engine(graph, method, mcr_algorithm).period()


def throughput(
    graph: SDFGraph,
    method: AnalysisMethod = AnalysisMethod.MCR,
) -> float:
    """Iterations per time unit: ``1 / period`` (Definition 3)."""
    return 1.0 / period(graph, method=method)


def period_with_response_times(
    graph: SDFGraph,
    response_times: Mapping[str, float],
    method: AnalysisMethod = AnalysisMethod.MCR,
) -> float:
    """Period of ``graph`` when actors take ``response_times`` to complete.

    Actors missing from the mapping keep their original execution time.
    The original graph is not modified.
    """
    return _one_shot_engine(graph, method).period(response_times)


@dataclass(frozen=True)
class CriticalCycle:
    """The cycle of firings that binds a graph's period.

    ``firings`` lists ``(actor, copy)`` pairs in cycle order; ``actors``
    collapses them to distinct actor names (insertion-ordered).  The
    cycle's ratio *is* the period.
    """

    ratio: float
    firings: Tuple[Tuple[str, int], ...]

    @property
    def actors(self) -> Tuple[str, ...]:
        seen: Dict[str, None] = {}
        for actor, _ in self.firings:
            seen.setdefault(actor)
        return tuple(seen)


def critical_cycle(graph: SDFGraph) -> CriticalCycle:
    """Which firings bound the period of ``graph`` (MCR diagnostics).

    A single-actor cycle means the actor itself is the bottleneck (its
    sequential firings fill the whole period); a multi-actor cycle names
    the dependency chain a designer would have to shorten or re-token.
    """
    return _one_shot_engine(graph, AnalysisMethod.MCR).critical_cycle()


def _one_shot_engine(
    graph: SDFGraph,
    method: AnalysisMethod,
    mcr_algorithm: str = "howard",
):
    """A throw-away engine for the stateless wrappers above.

    Imported lazily: ``repro.analysis_engine`` layers *above* this
    module (it imports :class:`AnalysisMethod` from here), so a
    module-level import would be circular.
    """
    from repro.analysis_engine.engine import AnalysisEngine

    return AnalysisEngine(graph, method=method, mcr_algorithm=mcr_algorithm)
