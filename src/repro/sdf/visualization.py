"""Graphviz DOT export for SDF and HSDF graphs.

Text-only (no graphviz dependency): the functions return DOT source that
renders with any graphviz installation.  Channels are annotated
``production/consumption`` with initial tokens as bullet marks, matching
the visual language of the paper's figures.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sdf.graph import SDFGraph
from repro.sdf.hsdf import HSDFGraph


def to_dot(
    graph: SDFGraph,
    include_execution_times: bool = True,
    rankdir: str = "LR",
) -> str:
    """DOT source for an SDF graph."""
    lines: List[str] = [
        f'digraph "{graph.name}" {{',
        f"  rankdir={rankdir};",
        '  node [shape=circle, fontsize=11];',
        '  edge [fontsize=9];',
    ]
    for actor in graph.actors:
        if include_execution_times:
            label = f"{actor.name}\\n{actor.execution_time:g}"
        else:
            label = actor.name
        lines.append(f'  "{actor.name}" [label="{label}"];')
    for channel in graph.channels:
        tokens = (
            " " + "&bull;" * min(channel.initial_tokens, 5)
            if channel.initial_tokens
            else ""
        )
        extra = (
            f"({channel.initial_tokens})"
            if channel.initial_tokens > 5
            else ""
        )
        label = (
            f"{channel.production_rate}/{channel.consumption_rate}"
            f"{tokens}{extra}"
        )
        lines.append(
            f'  "{channel.source}" -> "{channel.target}" '
            f'[label="{label}"];'
        )
    lines.append("}")
    return "\n".join(lines)


def hsdf_to_dot(hsdf: HSDFGraph, rankdir: str = "LR") -> str:
    """DOT source for an HSDF expansion (delays shown on edges)."""
    lines: List[str] = [
        f'digraph "{hsdf.name}_hsdf" {{',
        f"  rankdir={rankdir};",
        '  node [shape=box, fontsize=10];',
        '  edge [fontsize=9];',
    ]
    for vertex in hsdf.vertices:
        name = f"{vertex.actor}_{vertex.copy}"
        lines.append(
            f'  "{name}" [label="{vertex.actor}#{vertex.copy}\\n'
            f'{vertex.execution_time:g}"];'
        )
    for edge in hsdf.edges:
        src = f"{edge.source[0]}_{edge.source[1]}"
        dst = f"{edge.target[0]}_{edge.target[1]}"
        attributes = f'label="{edge.delay}"' if edge.delay else ""
        style = ' style=dashed' if edge.source[0] == edge.target[0] else ""
        lines.append(f'  "{src}" -> "{dst}" [{attributes}{style}];')
    lines.append("}")
    return "\n".join(lines)


def mapping_to_dot(
    graphs: List[SDFGraph],
    mapping,
    use_case: Optional[List[str]] = None,
) -> str:
    """DOT source showing actor-to-processor bindings as clusters."""
    active = (
        [g for g in graphs if g.name in set(use_case)]
        if use_case is not None
        else list(graphs)
    )
    lines = [
        "digraph mapping {",
        "  rankdir=TB;",
        "  node [shape=circle, fontsize=10];",
    ]
    by_processor: Dict[str, List[str]] = {}
    for graph in active:
        for actor in graph.actors:
            processor = mapping.processor_of(graph.name, actor.name)
            by_processor.setdefault(processor, []).append(
                f"{graph.name}.{actor.name}"
            )
    for i, (processor, residents) in enumerate(
        sorted(by_processor.items())
    ):
        lines.append(f"  subgraph cluster_{i} {{")
        lines.append(f'    label="{processor}";')
        for resident in residents:
            lines.append(f'    "{resident}";')
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines)
