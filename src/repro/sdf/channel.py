"""Channel (edge) model for SDF graphs.

A channel carries tokens from a producer actor to a consumer actor.  Every
firing of the producer appends ``production_rate`` tokens; a firing of the
consumer requires (and removes) ``consumption_rate`` tokens.  Channels may
hold ``initial_tokens`` before execution starts; initial tokens are what
break cyclic waits and pipeline the execution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import GraphError


@dataclass(frozen=True)
class Channel:
    """A directed, rate-annotated FIFO edge of an SDF graph."""

    source: str
    target: str
    production_rate: int = 1
    consumption_rate: int = 1
    initial_tokens: int = 0
    name: str = ""

    def __post_init__(self) -> None:
        if not self.source or not self.target:
            raise GraphError("channel endpoints must be non-empty actor names")
        if self.production_rate < 1:
            raise GraphError(
                f"channel {self.source}->{self.target}: production rate must "
                f"be >= 1, got {self.production_rate}"
            )
        if self.consumption_rate < 1:
            raise GraphError(
                f"channel {self.source}->{self.target}: consumption rate must "
                f"be >= 1, got {self.consumption_rate}"
            )
        if self.initial_tokens < 0:
            raise GraphError(
                f"channel {self.source}->{self.target}: initial tokens must "
                f"be >= 0, got {self.initial_tokens}"
            )
        if not self.name:
            # Frozen dataclass: assign through object.__setattr__ once.
            object.__setattr__(
                self, "name", f"{self.source}->{self.target}"
            )

    @property
    def is_self_loop(self) -> bool:
        """True when source and target are the same actor."""
        return self.source == self.target

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.source}[{self.production_rate}] -> "
            f"[{self.consumption_rate}]{self.target} "
            f"(d={self.initial_tokens})"
        )
