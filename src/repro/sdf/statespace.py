"""Self-timed state-space execution (exact period oracle).

This implements the state-space throughput analysis of Ghamarian et al.
(reference [5] of the paper): execute the SDF graph *self-timed* — every
actor fires as soon as its input tokens are available and the actor is not
already busy (auto-concurrency is disabled; actors model tasks bound to one
processor).  Self-timed execution of a consistent, live SDF graph is
eventually periodic, so recording the full execution state at event
boundaries and waiting for a state to recur yields the *exact* period:

    period = (time of recurrence - time of first visit)
           / (iterations completed in between)

The engine optionally runs on :class:`fractions.Fraction` time, which makes
recurrence detection exact even for rational execution times such as the
response times produced by the probabilistic estimator (e.g. 108 + 1/3).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Tuple, Union

from repro.exceptions import AnalysisError, DeadlockError
from repro.sdf.graph import SDFGraph
from repro.sdf.repetition import repetition_vector

Number = Union[int, float, Fraction]

_DEFAULT_MAX_FIRINGS = 2_000_000


def self_timed_period(
    graph: SDFGraph,
    exact: bool = True,
    max_firings: int = _DEFAULT_MAX_FIRINGS,
) -> float:
    """Exact average period of one graph iteration (Definition 3).

    Parameters
    ----------
    graph:
        Consistent, live SDF graph.
    exact:
        When True (default) execution times are converted to
        :class:`~fractions.Fraction`, making state recurrence detection
        exact for rational inputs.  When False, raw floats are used and
        remaining times are rounded to 1e-9 in the state key.
    max_firings:
        Safety bound on the number of actor firings explored before the
        analysis gives up (prevents unbounded transients from hanging).

    Raises
    ------
    DeadlockError
        When execution reaches a state where no actor is busy and none
        can fire.
    AnalysisError
        When no recurrence is found within ``max_firings``.
    """
    q = repetition_vector(graph)
    names = graph.actor_names
    channel_list = graph.channels

    if exact:
        times: Dict[str, Number] = {
            a.name: _to_fraction(a.execution_time) for a in graph.actors
        }
    else:
        times = {a.name: a.execution_time for a in graph.actors}

    in_edges: Dict[str, List[int]] = {a: [] for a in names}
    out_edges: Dict[str, List[int]] = {a: [] for a in names}
    for i, channel in enumerate(channel_list):
        in_edges[channel.target].append(i)
        out_edges[channel.source].append(i)

    tokens: List[int] = [c.initial_tokens for c in channel_list]
    busy_until: Dict[str, Optional[Number]] = {a: None for a in names}
    fire_counts: Dict[str, int] = {a: 0 for a in names}
    reference = names[0]
    reference_quota = q[reference]

    now: Number = 0 if exact else 0.0
    total_firings = 0
    seen_states: Dict[Tuple, Tuple[Number, int]] = {}

    def enabled(actor: str) -> bool:
        if busy_until[actor] is not None:
            return False
        return all(
            tokens[i] >= channel_list[i].consumption_rate
            for i in in_edges[actor]
        )

    def start_enabled() -> None:
        nonlocal total_firings
        started = True
        while started:
            started = False
            for actor in names:
                if enabled(actor):
                    for i in in_edges[actor]:
                        tokens[i] -= channel_list[i].consumption_rate
                    busy_until[actor] = now + times[actor]
                    total_firings += 1
                    started = True

    def state_key() -> Tuple:
        remaining = []
        for actor in names:
            until = busy_until[actor]
            if until is None:
                remaining.append(None)
            else:
                rem = until - now
                if not exact:
                    rem = round(rem, 9)
                remaining.append(rem)
        return (tuple(tokens), tuple(remaining))

    start_enabled()
    while total_firings <= max_firings:
        busy = [
            (until, actor)
            for actor, until in busy_until.items()
            if until is not None
        ]
        if not busy:
            raise DeadlockError(
                f"graph {graph.name!r} deadlocks during self-timed "
                "execution: no actor busy and none enabled"
            )
        now = min(until for until, _ in busy)
        for until, actor in busy:
            if until == now:
                busy_until[actor] = None
                fire_counts[actor] += 1
                for i in out_edges[actor]:
                    tokens[i] += channel_list[i].production_rate
        start_enabled()

        iterations = fire_counts[reference] // reference_quota
        key = state_key()
        if key in seen_states:
            first_time, first_iterations = seen_states[key]
            if iterations > first_iterations:
                period = (now - first_time) / (iterations - first_iterations)
                return float(period)
            # Same state revisited within one iteration (can happen while
            # the iteration counter has not advanced); keep going.
        else:
            seen_states[key] = (now, iterations)

    raise AnalysisError(
        f"graph {graph.name!r}: no periodic phase found within "
        f"{max_firings} firings"
    )


def self_timed_schedule(
    graph: SDFGraph,
    iterations: int,
    exact: bool = False,
) -> List[Tuple[float, float, str]]:
    """Gantt chart of self-timed execution on dedicated resources.

    Returns a list of ``(start, end, actor_name)`` triples covering
    ``iterations`` complete iterations of the graph.  Useful for examples
    and for validating the multi-processor simulator against the
    contention-free case.
    """
    q = repetition_vector(graph)
    names = graph.actor_names
    channel_list = graph.channels
    if exact:
        times: Dict[str, Number] = {
            a.name: _to_fraction(a.execution_time) for a in graph.actors
        }
    else:
        times = {a.name: a.execution_time for a in graph.actors}

    in_edges: Dict[str, List[int]] = {a: [] for a in names}
    out_edges: Dict[str, List[int]] = {a: [] for a in names}
    for i, channel in enumerate(channel_list):
        in_edges[channel.target].append(i)
        out_edges[channel.source].append(i)

    tokens: List[int] = [c.initial_tokens for c in channel_list]
    busy_until: Dict[str, Optional[Number]] = {a: None for a in names}
    fire_counts: Dict[str, int] = {a: 0 for a in names}
    target_counts = {a: q[a] * iterations for a in names}
    schedule: List[Tuple[float, float, str]] = []
    now: Number = 0 if exact else 0.0

    def enabled(actor: str) -> bool:
        if busy_until[actor] is not None:
            return False
        if fire_counts[actor] + _busy_count(busy_until, actor) >= target_counts[actor]:
            return False
        return all(
            tokens[i] >= channel_list[i].consumption_rate
            for i in in_edges[actor]
        )

    def _busy_count(busy: Dict[str, Optional[Number]], actor: str) -> int:
        return 1 if busy[actor] is not None else 0

    def start_enabled() -> None:
        started = True
        while started:
            started = False
            for actor in names:
                if enabled(actor):
                    for i in in_edges[actor]:
                        tokens[i] -= channel_list[i].consumption_rate
                    busy_until[actor] = now + times[actor]
                    schedule.append(
                        (float(now), float(now + times[actor]), actor)
                    )
                    started = True

    start_enabled()
    while any(fire_counts[a] < target_counts[a] for a in names):
        busy = [
            (until, actor)
            for actor, until in busy_until.items()
            if until is not None
        ]
        if not busy:
            raise DeadlockError(
                f"graph {graph.name!r} deadlocks during scheduled execution"
            )
        now = min(until for until, _ in busy)
        for until, actor in busy:
            if until == now:
                busy_until[actor] = None
                fire_counts[actor] += 1
                for i in out_edges[actor]:
                    tokens[i] += channel_list[i].production_rate
        start_enabled()
    return schedule


def _to_fraction(value: Number) -> Fraction:
    """Convert a time to an exact fraction.

    Floats are snapped to a rational with denominator <= 10^9, which is
    lossless for the rational response times the estimator produces
    (denominators there are small products of repetition-vector entries).
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    return Fraction(value).limit_denominator(10**9)
