"""Liveness (deadlock-freedom) analysis.

A consistent SDF graph is *live* when it can execute forever, which — by
the classic result of Lee & Messerschmitt (reference [10] of the paper) —
holds exactly when one complete iteration (every actor ``a`` firing
``q(a)`` times) can be executed from the initial token distribution.
Token counts return to their initial values after a full iteration, so
success of one iteration implies success of all.

The check below executes one iteration *untimed*: it repeatedly fires any
enabled actor that still owes firings.  For SDF this greedy strategy is
safe — firing an enabled actor can never disable another actor's eventual
firing (the model is deterministic and monotonic).
"""

from __future__ import annotations

from typing import Dict, List

from repro.exceptions import DeadlockError
from repro.sdf.graph import SDFGraph
from repro.sdf.repetition import repetition_vector


def is_live(graph: SDFGraph) -> bool:
    """True when the graph can execute one complete iteration."""
    return _stuck_actor(graph) is None


def assert_live(graph: SDFGraph) -> None:
    """Raise :class:`DeadlockError` when the graph deadlocks."""
    stuck = _stuck_actor(graph)
    if stuck is not None:
        raise DeadlockError(
            f"graph {graph.name!r} deadlocks: actor {stuck!r} can never "
            "complete its firings for one iteration (insufficient initial "
            "tokens on some cycle)"
        )


def _stuck_actor(graph: SDFGraph) -> str | None:
    """Name of an actor that cannot finish its iteration, or None."""
    q = repetition_vector(graph)
    remaining: Dict[str, int] = dict(q)
    tokens: Dict[int, int] = {
        i: c.initial_tokens for i, c in enumerate(graph.channels)
    }
    in_edges: Dict[str, List[int]] = {a: [] for a in graph.actor_names}
    out_edges: Dict[str, List[int]] = {a: [] for a in graph.actor_names}
    for i, channel in enumerate(graph.channels):
        in_edges[channel.target].append(i)
        out_edges[channel.source].append(i)

    def enabled(actor: str) -> bool:
        if remaining[actor] == 0:
            return False
        return all(
            tokens[i] >= graph.channels[i].consumption_rate
            for i in in_edges[actor]
        )

    # Worklist of candidate actors; greedy firing until the iteration
    # completes or no candidate is enabled.
    pending = [a for a in graph.actor_names if remaining[a] > 0]
    progress = True
    while progress:
        progress = False
        for actor in list(pending):
            while enabled(actor):
                for i in in_edges[actor]:
                    tokens[i] -= graph.channels[i].consumption_rate
                for i in out_edges[actor]:
                    tokens[i] += graph.channels[i].production_rate
                remaining[actor] -= 1
                progress = True
            if remaining[actor] == 0 and actor in pending:
                pending.remove(actor)
    for actor in graph.actor_names:
        if remaining[actor] > 0:
            return actor
    return None
