"""Graph (de)serialization.

Graphs round-trip through plain dictionaries (JSON-compatible), which the
experiment harness uses to persist the deterministic benchmark set and
which makes graphs easy to diff in golden tests.  The format is a direct
transcription of the graph structure::

    {
      "name": "A",
      "actors": [{"name": "a0", "execution_time": 100,
                  "processor_type": "proc"}, ...],
      "channels": [{"source": "a0", "target": "a1",
                    "production_rate": 2, "consumption_rate": 1,
                    "initial_tokens": 0}, ...]
    }
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.exceptions import GraphError
from repro.sdf.actor import Actor
from repro.sdf.channel import Channel
from repro.sdf.graph import SDFGraph


def graph_to_dict(graph: SDFGraph) -> Dict[str, Any]:
    """Plain-dict representation of ``graph`` (JSON compatible)."""
    return {
        "name": graph.name,
        "actors": [
            {
                "name": actor.name,
                "execution_time": actor.execution_time,
                "processor_type": actor.processor_type,
            }
            for actor in graph.actors
        ],
        "channels": [
            {
                "source": channel.source,
                "target": channel.target,
                "production_rate": channel.production_rate,
                "consumption_rate": channel.consumption_rate,
                "initial_tokens": channel.initial_tokens,
            }
            for channel in graph.channels
        ],
    }


def graph_from_dict(data: Dict[str, Any]) -> SDFGraph:
    """Rebuild a graph from :func:`graph_to_dict` output."""
    try:
        actors = [
            Actor(
                name=a["name"],
                execution_time=a["execution_time"],
                processor_type=a.get("processor_type", "proc"),
            )
            for a in data["actors"]
        ]
        channels = [
            Channel(
                source=c["source"],
                target=c["target"],
                production_rate=c.get("production_rate", 1),
                consumption_rate=c.get("consumption_rate", 1),
                initial_tokens=c.get("initial_tokens", 0),
            )
            for c in data["channels"]
        ]
        return SDFGraph(data["name"], actors, channels)
    except KeyError as missing:
        raise GraphError(f"graph dict is missing key {missing}") from None


def graph_to_json(graph: SDFGraph, indent: int = 2) -> str:
    """JSON text for ``graph``."""
    return json.dumps(graph_to_dict(graph), indent=indent)


def graph_from_json(text: str) -> SDFGraph:
    """Parse a graph from :func:`graph_to_json` output."""
    return graph_from_dict(json.loads(text))


def graphs_to_json(graphs: List[SDFGraph], indent: int = 2) -> str:
    """Serialize several graphs (a benchmark set) into one JSON document."""
    return json.dumps([graph_to_dict(g) for g in graphs], indent=indent)


def graphs_from_json(text: str) -> List[SDFGraph]:
    """Parse a list of graphs from :func:`graphs_to_json` output."""
    return [graph_from_dict(d) for d in json.loads(text)]
