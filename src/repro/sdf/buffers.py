"""Buffer (channel capacity) analysis.

Channels of an SDF graph are conceptually unbounded FIFOs; real hardware
gives each channel a finite buffer.  Following the classic modelling
trick (references [16] and [20] of the paper), a capacity ``c`` on
channel ``a -> b`` is expressed as a *reverse* channel ``b -> a`` carrying
"space" tokens: the producer consumes space before writing, the consumer
returns space after reading, and ``c - initial_tokens`` space tokens
exist initially.  Bounded-buffer effects (throughput loss, deadlock) then
fall out of the ordinary analyses.

Provided here:

* :func:`max_channel_occupancy` — peak tokens per channel during
  self-timed execution (a sufficient capacity assignment);
* :func:`with_buffer_capacities` — the reverse-channel transformation;
* :func:`minimal_capacities_preserving_period` — greedy shrink of the
  sufficient assignment that keeps the isolation period intact.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.exceptions import AnalysisError, DeadlockError
from repro.sdf.channel import Channel
from repro.sdf.graph import SDFGraph
from repro.sdf.liveness import is_live
from repro.sdf.statespace import self_timed_schedule

#: Name prefix of generated reverse (space) channels.
SPACE_PREFIX = "space:"


def max_channel_occupancy(
    graph: SDFGraph, iterations: int = 4
) -> Dict[str, int]:
    """Peak token count per channel during self-timed execution.

    Tokens are counted with the engine's semantics (consumed at firing
    start, produced at completion), so the peak is what a FIFO would
    actually have to hold.  Executing several iterations covers the
    pipelined steady state, not just the cold start.
    """
    return _peak_usage(graph, iterations, reservation=False)


def buffer_reservation_footprint(
    graph: SDFGraph, iterations: int = 8
) -> Dict[str, int]:
    """Peak *reserved* buffer space per channel (capacity requirement).

    The reverse-channel capacity model (see
    :func:`with_buffer_capacities`) claims space when the *producer
    starts* (it consumes space tokens before executing) and releases it
    when the *consumer completes* (space is produced at the end of its
    firing).  The footprint therefore exceeds the raw token occupancy by
    the data in flight on both sides; a capacity equal to this peak lets
    the bounded graph follow the unbounded self-timed schedule exactly,
    so it is sufficient to preserve the period.
    """
    return _peak_usage(graph, iterations, reservation=True)


def _peak_usage(
    graph: SDFGraph, iterations: int, reservation: bool
) -> Dict[str, int]:
    if iterations < 1:
        raise AnalysisError("iterations must be >= 1")
    schedule = self_timed_schedule(graph, iterations=iterations)
    # Event tuples: (time, tie_rank, direction, actor).  ``direction``
    # +1 adds usage (production), -1 removes it (consumption).  In token
    # mode production lands at firing end and consumption at start; in
    # reservation mode production *reserves* at start and consumption
    # *releases* at end.  At equal times, additions are ordered before
    # removals so the tracked peak is the safe (pessimistic) one.
    events: List[Tuple[float, int, int, str]] = []
    for start, end, actor in schedule:
        if reservation:
            events.append((start, 0, +1, actor))
            events.append((end, 1, -1, actor))
        else:
            events.append((end, 0, +1, actor))
            events.append((start, 1, -1, actor))
    events.sort(key=lambda e: (e[0], e[1]))

    usage = {c.name: c.initial_tokens for c in graph.channels}
    peak = dict(usage)
    in_of: Dict[str, List[Channel]] = {a: [] for a in graph.actor_names}
    out_of: Dict[str, List[Channel]] = {a: [] for a in graph.actor_names}
    for channel in graph.channels:
        in_of[channel.target].append(channel)
        out_of[channel.source].append(channel)

    for _, __, direction, actor in events:
        if direction == +1:
            for channel in out_of[actor]:
                usage[channel.name] += channel.production_rate
                peak[channel.name] = max(
                    peak[channel.name], usage[channel.name]
                )
        else:
            for channel in in_of[actor]:
                usage[channel.name] -= channel.consumption_rate
    return peak


def with_buffer_capacities(
    graph: SDFGraph, capacities: Dict[str, int]
) -> SDFGraph:
    """Return a graph whose channels are bounded by ``capacities``.

    Every channel named in ``capacities`` gets a reverse space channel;
    unnamed channels stay unbounded.  The reverse channel of
    ``a -(p,c,d)-> b`` with capacity ``cap`` is
    ``b -(c,p, cap - d)-> a`` named ``space:<original name>``.

    Raises
    ------
    AnalysisError
        If a capacity is smaller than the channel's initial tokens, or
        names an unknown channel.
    """
    by_name = {c.name: c for c in graph.channels}
    for name in capacities:
        if name not in by_name:
            raise AnalysisError(
                f"graph {graph.name!r} has no channel named {name!r}"
            )
    new_channels: List[Channel] = list(graph.channels)
    for name, capacity in capacities.items():
        channel = by_name[name]
        if capacity < channel.initial_tokens:
            raise AnalysisError(
                f"capacity {capacity} of channel {name!r} is below its "
                f"{channel.initial_tokens} initial tokens"
            )
        new_channels.append(
            Channel(
                source=channel.target,
                target=channel.source,
                production_rate=channel.consumption_rate,
                consumption_rate=channel.production_rate,
                initial_tokens=capacity - channel.initial_tokens,
                name=f"{SPACE_PREFIX}{name}",
            )
        )
    return SDFGraph(graph.name, graph.actors, new_channels)


def minimal_capacities_preserving_period(
    graph: SDFGraph,
    occupancy_iterations: int = 8,
) -> Dict[str, int]:
    """Greedy per-channel shrink of a sufficient capacity assignment.

    Starts from :func:`buffer_reservation_footprint` (period-preserving
    by construction) and lowers one channel at a time while the bounded
    graph stays live with an unchanged period.  Greedy, so not globally
    minimal — the classic trade-off space of [16] — but tight enough for
    sizing studies, and every returned assignment is *verified*
    feasible.
    """
    from repro.sdf.analysis import period as analytical_period

    reference = analytical_period(graph)
    capacities = dict(
        buffer_reservation_footprint(graph, occupancy_iterations)
    )

    def feasible(assignment: Dict[str, int]) -> bool:
        bounded = with_buffer_capacities(graph, assignment)
        if not is_live(bounded):
            return False
        try:
            return abs(analytical_period(bounded) - reference) <= (
                1e-9 * max(1.0, reference)
            )
        except DeadlockError:
            return False

    if not feasible(capacities):  # pragma: no cover - safety net
        raise AnalysisError(
            f"graph {graph.name!r}: occupancy-based capacities are not "
            "feasible; this indicates an engine inconsistency"
        )

    floors = {
        c.name: max(1, c.initial_tokens) for c in graph.channels
    }
    for name in sorted(capacities):
        while capacities[name] > floors[name]:
            trial = dict(capacities)
            trial[name] -= 1
            if feasible(trial):
                capacities[name] = trial[name]
            else:
                break
    return capacities
