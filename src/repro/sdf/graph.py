"""SDF graph container.

:class:`SDFGraph` owns a set of :class:`~repro.sdf.actor.Actor` vertices and
:class:`~repro.sdf.channel.Channel` edges and offers the structural queries
every analysis in the library needs (adjacency, strong connectivity,
execution-time overlays).  The container is *structurally immutable once
analysed*: all mutators return new graphs, which keeps cached repetition
vectors and periods trustworthy.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Tuple

from repro.exceptions import GraphError
from repro.sdf.actor import Actor
from repro.sdf.channel import Channel


class SDFGraph:
    """A named synchronous data-flow graph.

    Parameters
    ----------
    name:
        Application name (``"A"`` ... in the paper).
    actors:
        Iterable of actors; names must be unique.
    channels:
        Iterable of channels; endpoints must name existing actors.
    """

    def __init__(
        self,
        name: str,
        actors: Iterable[Actor],
        channels: Iterable[Channel],
    ) -> None:
        self.name = name
        self._actors: Dict[str, Actor] = {}
        for actor in actors:
            if actor.name in self._actors:
                raise GraphError(
                    f"graph {name!r}: duplicate actor {actor.name!r}"
                )
            self._actors[actor.name] = actor
        self._channels: List[Channel] = list(channels)
        for channel in self._channels:
            for endpoint in (channel.source, channel.target):
                if endpoint not in self._actors:
                    raise GraphError(
                        f"graph {name!r}: channel {channel.name!r} references "
                        f"unknown actor {endpoint!r}"
                    )
        self._out_edges: Dict[str, List[Channel]] = {a: [] for a in self._actors}
        self._in_edges: Dict[str, List[Channel]] = {a: [] for a in self._actors}
        for channel in self._channels:
            self._out_edges[channel.source].append(channel)
            self._in_edges[channel.target].append(channel)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def actors(self) -> Tuple[Actor, ...]:
        """All actors in insertion order."""
        return tuple(self._actors.values())

    @property
    def actor_names(self) -> Tuple[str, ...]:
        return tuple(self._actors.keys())

    @property
    def channels(self) -> Tuple[Channel, ...]:
        return tuple(self._channels)

    def actor(self, name: str) -> Actor:
        """Return the actor called ``name`` or raise :class:`GraphError`."""
        try:
            return self._actors[name]
        except KeyError:
            raise GraphError(
                f"graph {self.name!r} has no actor named {name!r}"
            ) from None

    def has_actor(self, name: str) -> bool:
        return name in self._actors

    def out_edges(self, actor_name: str) -> Tuple[Channel, ...]:
        """Channels produced by ``actor_name``."""
        self.actor(actor_name)
        return tuple(self._out_edges[actor_name])

    def in_edges(self, actor_name: str) -> Tuple[Channel, ...]:
        """Channels consumed by ``actor_name``."""
        self.actor(actor_name)
        return tuple(self._in_edges[actor_name])

    def execution_time(self, actor_name: str) -> float:
        """``tau(a)`` — Definition 1 of the paper."""
        return self.actor(actor_name).execution_time

    def execution_times(self) -> Dict[str, float]:
        """Mapping of actor name to execution time."""
        return {a.name: a.execution_time for a in self.actors}

    def __len__(self) -> int:
        return len(self._actors)

    def __iter__(self) -> Iterator[Actor]:
        return iter(self.actors)

    def __contains__(self, actor_name: object) -> bool:
        return actor_name in self._actors

    # ------------------------------------------------------------------
    # Structural queries
    # ------------------------------------------------------------------
    def successors(self, actor_name: str) -> Tuple[str, ...]:
        """Distinct names of actors fed by ``actor_name`` (dedup, ordered)."""
        seen: Dict[str, None] = {}
        for channel in self.out_edges(actor_name):
            seen.setdefault(channel.target)
        return tuple(seen)

    def predecessors(self, actor_name: str) -> Tuple[str, ...]:
        """Distinct names of actors feeding ``actor_name``."""
        seen: Dict[str, None] = {}
        for channel in self.in_edges(actor_name):
            seen.setdefault(channel.source)
        return tuple(seen)

    def is_strongly_connected(self) -> bool:
        """True when every actor can reach every other actor.

        Strong connectivity is what makes the period finite and well
        defined: the paper's benchmark graphs are all strongly connected
        components.  Implemented as a forward and a backward reachability
        sweep from an arbitrary root (two BFS passes).
        """
        if not self._actors:
            return False
        root = next(iter(self._actors))
        return (
            len(self._reachable(root, self._out_edges)) == len(self)
            and len(self._reachable(root, self._in_edges)) == len(self)
        )

    def _reachable(
        self, root: str, adjacency: Mapping[str, List[Channel]]
    ) -> set:
        seen = {root}
        stack = [root]
        while stack:
            node = stack.pop()
            for channel in adjacency[node]:
                other = (
                    channel.target
                    if channel.source == node
                    else channel.source
                )
                # adjacency is either out-edges (follow target) or
                # in-edges (follow source); the expression above picks the
                # far endpoint for both orientations.
                if other not in seen:
                    seen.add(other)
                    stack.append(other)
        return seen

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def with_execution_times(self, times: Mapping[str, float]) -> "SDFGraph":
        """Return a copy whose actors run with the given execution times.

        This is how the Fig.-4 estimator applies *response times*: waiting
        time is added to each actor's execution time and the period of the
        resulting graph is recomputed (steps 9–11 of the paper's
        algorithm).  Actors absent from ``times`` keep their original
        execution time.
        """
        new_actors = []
        for actor in self.actors:
            if actor.name in times:
                new_actors.append(actor.with_execution_time(times[actor.name]))
            else:
                new_actors.append(actor)
        return SDFGraph(self.name, new_actors, self._channels)

    def renamed(self, name: str) -> "SDFGraph":
        """Return a copy of the graph under a different application name."""
        return SDFGraph(name, self.actors, self._channels)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def total_initial_tokens(self) -> int:
        return sum(c.initial_tokens for c in self._channels)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SDFGraph({self.name!r}, actors={len(self._actors)}, "
            f"channels={len(self._channels)})"
        )
