"""Repetition vector and consistency analysis (Definition 2).

The repetition vector ``q`` of an SDF graph is the smallest positive integer
vector such that for every channel ``(a -> b, p, c)``::

    q[a] * p == q[b] * c          (the balance equation)

A graph whose balance equations admit only the zero solution is
*inconsistent*: it cannot run forever in bounded memory.  The solver
propagates exact rational firing ratios over the (undirected) channel
structure, scales each weakly-connected component to its smallest integer
vector, and then verifies every balance equation — including equations made
redundant by cycles, which is where inconsistencies hide.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Dict, NamedTuple

from repro.exceptions import InconsistentGraphError
from repro.sdf.graph import SDFGraph


class ConsistencyReport(NamedTuple):
    """Outcome of consistency analysis.

    Attributes
    ----------
    consistent:
        True when a repetition vector exists.
    repetition_vector:
        The minimal integer vector (empty when inconsistent).
    violated_channel:
        Name of a channel whose balance equation fails (``""`` when
        consistent), useful in error messages and tests.
    """

    consistent: bool
    repetition_vector: Dict[str, int]
    violated_channel: str


def consistency_report(graph: SDFGraph) -> ConsistencyReport:
    """Check the balance equations of ``graph`` and solve them if possible."""
    if len(graph) == 0:
        return ConsistencyReport(True, {}, "")

    vector: Dict[str, int] = {}
    solved: set = set()
    for component_root in graph.actor_names:
        if component_root in solved:
            continue
        # Solve one weakly-connected component, anchored at ratio 1.
        ratios: Dict[str, Fraction] = {component_root: Fraction(1)}
        stack = [component_root]
        while stack:
            node = stack.pop()
            for channel in graph.out_edges(node):
                implied = ratios[node] * Fraction(
                    channel.production_rate, channel.consumption_rate
                )
                if channel.target not in ratios:
                    ratios[channel.target] = implied
                    stack.append(channel.target)
                elif ratios[channel.target] != implied:
                    return ConsistencyReport(False, {}, channel.name)
            for channel in graph.in_edges(node):
                implied = ratios[node] * Fraction(
                    channel.consumption_rate, channel.production_rate
                )
                if channel.source not in ratios:
                    ratios[channel.source] = implied
                    stack.append(channel.source)
                elif ratios[channel.source] != implied:
                    return ConsistencyReport(False, {}, channel.name)
        vector.update(_scale_to_integers(ratios))
        solved.update(ratios)

    # Defensive re-check of every balance equation; cheap and catches any
    # solver bug outright.
    for channel in graph.channels:
        if (
            vector[channel.source] * channel.production_rate
            != vector[channel.target] * channel.consumption_rate
        ):
            return ConsistencyReport(False, {}, channel.name)
    return ConsistencyReport(True, vector, "")


def repetition_vector(graph: SDFGraph) -> Dict[str, int]:
    """Return the minimal repetition vector ``q`` of ``graph``.

    Raises
    ------
    InconsistentGraphError
        If the graph has no repetition vector.
    """
    report = consistency_report(graph)
    if not report.consistent:
        raise InconsistentGraphError(
            f"graph {graph.name!r} is inconsistent: balance equation of "
            f"channel {report.violated_channel!r} cannot be satisfied"
        )
    return report.repetition_vector


def iteration_workload(graph: SDFGraph) -> float:
    """Total busy time of one graph iteration: ``sum_a q(a) * tau(a)``.

    For a graph whose minimal-token schedule is fully sequential (like the
    paper's Fig. 2 applications) this equals the period; in general it is a
    lower bound on the *processor time* consumed per iteration and is used
    by the generator to budget execution times.
    """
    q = repetition_vector(graph)
    return sum(q[a.name] * a.execution_time for a in graph.actors)


def _scale_to_integers(ratios: Dict[str, Fraction]) -> Dict[str, int]:
    """Scale positive rationals to the smallest positive integer vector."""
    denominator_lcm = 1
    for value in ratios.values():
        denominator_lcm = _lcm(denominator_lcm, value.denominator)
    scaled = {
        name: int(value * denominator_lcm) for name, value in ratios.items()
    }
    overall_gcd = 0
    for value in scaled.values():
        overall_gcd = gcd(overall_gcd, value)
    if overall_gcd > 1:
        scaled = {name: value // overall_gcd for name, value in scaled.items()}
    return scaled


def _lcm(a: int, b: int) -> int:
    return a // gcd(a, b) * b
