"""Fluent builder for SDF graphs.

Writing graphs by listing :class:`Actor` and :class:`Channel` objects is
verbose; the builder reads like the figures in SDF papers::

    graph = (
        GraphBuilder("A")
        .actor("a0", 100)
        .actor("a1", 50)
        .actor("a2", 100)
        .channel("a0", "a1", production=2, consumption=1)
        .channel("a1", "a2", production=1, consumption=2)
        .channel("a2", "a0", initial_tokens=1)
        .build()
    )
"""

from __future__ import annotations

from typing import List

from repro.exceptions import GraphError
from repro.sdf.actor import Actor
from repro.sdf.channel import Channel
from repro.sdf.graph import SDFGraph


class GraphBuilder:
    """Accumulates actors and channels, then builds an :class:`SDFGraph`."""

    def __init__(self, name: str) -> None:
        self._name = name
        self._actors: List[Actor] = []
        self._channels: List[Channel] = []
        self._built = False

    def actor(
        self,
        name: str,
        execution_time: float,
        processor_type: str = "proc",
    ) -> "GraphBuilder":
        """Add one actor; returns self for chaining."""
        self._actors.append(Actor(name, execution_time, processor_type))
        return self

    def actors(self, *specs: tuple) -> "GraphBuilder":
        """Add several actors from ``(name, execution_time)`` tuples."""
        for spec in specs:
            self.actor(*spec)
        return self

    def channel(
        self,
        source: str,
        target: str,
        production: int = 1,
        consumption: int = 1,
        initial_tokens: int = 0,
        name: str = "",
    ) -> "GraphBuilder":
        """Add one channel; returns self for chaining."""
        self._channels.append(
            Channel(
                source=source,
                target=target,
                production_rate=production,
                consumption_rate=consumption,
                initial_tokens=initial_tokens,
                name=name,
            )
        )
        return self

    def cycle(
        self,
        *actor_names: str,
        initial_tokens_on_back_edge: int = 1,
    ) -> "GraphBuilder":
        """Connect the named actors in a single-rate ring.

        The final edge (back to the first actor) carries
        ``initial_tokens_on_back_edge`` tokens so the ring is live.
        """
        if len(actor_names) < 2:
            raise GraphError("a cycle needs at least two actors")
        for src, dst in zip(actor_names, actor_names[1:]):
            self.channel(src, dst)
        self.channel(
            actor_names[-1],
            actor_names[0],
            initial_tokens=initial_tokens_on_back_edge,
        )
        return self

    def build(self) -> SDFGraph:
        """Construct the graph.  The builder can only build once."""
        if self._built:
            raise GraphError("GraphBuilder.build() may only be called once")
        self._built = True
        return SDFGraph(self._name, self._actors, self._channels)
