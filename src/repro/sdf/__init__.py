"""Synchronous Data-Flow (SDF) graphs and their timing analysis.

This subpackage is the substrate the paper builds on (its role is played by
SDF3 in the original work):

* :mod:`repro.sdf.actor`, :mod:`repro.sdf.channel`, :mod:`repro.sdf.graph`
  — immutable-ish graph model with multi-rate channels and initial tokens.
* :mod:`repro.sdf.builder` — fluent construction helper.
* :mod:`repro.sdf.repetition` — repetition vector / consistency
  (Definition 2 of the paper).
* :mod:`repro.sdf.liveness` — deadlock detection.
* :mod:`repro.sdf.hsdf` — SDF to homogeneous-SDF expansion.
* :mod:`repro.sdf.mcm` — maximum cycle ratio (period) algorithms.
* :mod:`repro.sdf.statespace` — exact self-timed execution oracle.
* :mod:`repro.sdf.analysis` — high-level `period()` / `throughput()`
  façade (Definition 3).
"""

from repro.sdf.actor import Actor
from repro.sdf.analysis import (
    AnalysisMethod,
    period,
    period_with_response_times,
    throughput,
)
from repro.sdf.buffers import (
    buffer_reservation_footprint,
    max_channel_occupancy,
    minimal_capacities_preserving_period,
    with_buffer_capacities,
)
from repro.sdf.builder import GraphBuilder
from repro.sdf.channel import Channel
from repro.sdf.graph import SDFGraph
from repro.sdf.hsdf import HSDFGraph, to_hsdf
from repro.sdf.latency import (
    iteration_makespan,
    source_to_sink_latency,
)
from repro.sdf.liveness import assert_live, is_live
from repro.sdf.mcm import max_cycle_ratio
from repro.sdf.repetition import consistency_report, repetition_vector
from repro.sdf.statespace import self_timed_period
from repro.sdf.visualization import hsdf_to_dot, to_dot

__all__ = [
    "Actor",
    "AnalysisMethod",
    "Channel",
    "GraphBuilder",
    "HSDFGraph",
    "SDFGraph",
    "assert_live",
    "buffer_reservation_footprint",
    "consistency_report",
    "hsdf_to_dot",
    "is_live",
    "iteration_makespan",
    "max_channel_occupancy",
    "max_cycle_ratio",
    "minimal_capacities_preserving_period",
    "period",
    "period_with_response_times",
    "repetition_vector",
    "self_timed_period",
    "source_to_sink_latency",
    "throughput",
    "to_dot",
    "to_hsdf",
    "with_buffer_capacities",
]
