"""SDF to homogeneous-SDF (HSDF) expansion.

An HSDF graph has unit production/consumption rates everywhere; every actor
``a`` of the SDF graph becomes ``q(a)`` vertices (one per firing within an
iteration) and every channel becomes precedence edges annotated with
*delays* (the number of iterations a dependency spans — the HSDF analogue
of initial tokens).  The period of the SDF graph equals the maximum cycle
ratio of its HSDF expansion, which is how :func:`repro.sdf.analysis.period`
computes Definition 3 analytically.

The construction follows Sriram & Bhattacharyya (reference [14] of the
paper).  For a channel ``a -(p,c,d)-> b``, the ``n``-th firing of ``b``
(0-based, within an iteration) consumes tokens ``n*c .. n*c + c - 1`` in
FIFO order.  Token ``t`` is an initial token when ``t < d``; otherwise it
is the ``(t-d)``-th token produced, i.e. produced by the *absolute* firing
``J = (t - d) // p`` of ``a``.  Absolute firing ``J`` lives in iteration
``J // q(a)`` and maps to vertex copy ``J % q(a)``; the edge delay is the
number of iterations the dependency crosses, ``-(J // q(a))``.

Because actors model software tasks bound to one processor, each actor also
receives a *sequencing cycle* through its copies (copy k -> copy k+1, with
one delay token on the wrap-around edge).  This disables auto-concurrency:
the two firings of ``a1`` in the paper's Fig. 2 example execute back to
back, which is what makes ``Per(A) = 300``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.exceptions import GraphError
from repro.sdf.graph import SDFGraph
from repro.sdf.repetition import repetition_vector


@dataclass(frozen=True)
class HSDFVertex:
    """One firing of an SDF actor within an iteration."""

    actor: str
    copy: int
    execution_time: float

    @property
    def key(self) -> Tuple[str, int]:
        return (self.actor, self.copy)


@dataclass(frozen=True)
class HSDFEdge:
    """A unit-rate precedence edge with an iteration-crossing delay."""

    source: Tuple[str, int]
    target: Tuple[str, int]
    delay: int


@dataclass
class HSDFGraph:
    """Homogeneous SDF graph produced by :func:`to_hsdf`."""

    name: str
    vertices: List[HSDFVertex] = field(default_factory=list)
    edges: List[HSDFEdge] = field(default_factory=list)

    def vertex_index(self) -> Dict[Tuple[str, int], int]:
        """Dense integer ids for the vertices, in insertion order."""
        return {v.key: i for i, v in enumerate(self.vertices)}

    def execution_time_of(self, key: Tuple[str, int]) -> float:
        for vertex in self.vertices:
            if vertex.key == key:
                return vertex.execution_time
        raise GraphError(f"HSDF graph {self.name!r} has no vertex {key!r}")

    @property
    def vertex_count(self) -> int:
        return len(self.vertices)

    @property
    def edge_count(self) -> int:
        return len(self.edges)


def to_hsdf(
    graph: SDFGraph,
    auto_concurrency: bool = False,
) -> HSDFGraph:
    """Expand ``graph`` into its homogeneous equivalent.

    Parameters
    ----------
    graph:
        A consistent SDF graph.
    auto_concurrency:
        When False (default, and what the paper assumes) an actor's
        firings are serialized with a sequencing cycle through its copies.
        When True, distinct firings of one actor may overlap in time.

    Notes
    -----
    Parallel edges between the same pair of vertices are deduplicated
    keeping only the *minimum* delay: for maximum-cycle-ratio analysis a
    higher-delay parallel edge can never be the binding constraint.
    """
    q = repetition_vector(graph)
    vertices = [
        HSDFVertex(actor.name, k, actor.execution_time)
        for actor in graph.actors
        for k in range(q[actor.name])
    ]

    # (source_key, target_key) -> minimal delay seen so far
    best_delay: Dict[Tuple[Tuple[str, int], Tuple[str, int]], int] = {}

    def add_edge(src: Tuple[str, int], dst: Tuple[str, int], delay: int) -> None:
        if delay < 0:
            raise GraphError(
                f"HSDF expansion of {graph.name!r} produced negative delay "
                f"{delay} on {src}->{dst}; this indicates a construction bug"
            )
        key = (src, dst)
        if key not in best_delay or delay < best_delay[key]:
            best_delay[key] = delay

    for channel in graph.channels:
        p = channel.production_rate
        c = channel.consumption_rate
        d = channel.initial_tokens
        q_src = q[channel.source]
        q_dst = q[channel.target]
        for n in range(q_dst):
            for slot in range(c):
                token = n * c + slot
                # Absolute producer firing index (may be negative when the
                # token is an initial token produced "before time zero").
                producer = (token - d) // p
                copy = producer % q_src
                delay = -(producer // q_src)
                add_edge((channel.source, copy), (channel.target, n), delay)

    if not auto_concurrency:
        for actor in graph.actors:
            copies = q[actor.name]
            if copies == 1:
                add_edge((actor.name, 0), (actor.name, 0), 1)
            else:
                for k in range(copies):
                    nxt = (k + 1) % copies
                    add_edge(
                        (actor.name, k),
                        (actor.name, nxt),
                        1 if nxt == 0 else 0,
                    )

    edges = [
        HSDFEdge(src, dst, delay)
        for (src, dst), delay in best_delay.items()
    ]
    return HSDFGraph(name=graph.name, vertices=vertices, edges=edges)
