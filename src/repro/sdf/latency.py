"""Latency analysis of SDF graphs.

The paper positions throughput (period) as the headline metric but notes
SDFGs "allow one to analyze a system in terms of throughput and other
performance properties, e.g. latency" (Section 1, citing [16, 20]).  This
module adds the two latency notions a media pipeline cares about, both
derived from the exact self-timed schedule:

* **iteration makespan** — how long one complete iteration takes from a
  cold start (e.g. time-to-first-frame);
* **source-to-sink latency** — the delay between the k-th firing of a
  source actor and the k-th firing of a sink actor in steady state
  (e.g. capture-to-display delay).
"""

from __future__ import annotations

from typing import Dict, List

from repro.exceptions import AnalysisError
from repro.sdf.graph import SDFGraph
from repro.sdf.repetition import repetition_vector
from repro.sdf.statespace import self_timed_schedule


def iteration_makespan(graph: SDFGraph, iterations: int = 1) -> float:
    """Completion time of ``iterations`` full iterations from time zero.

    Self-timed execution on dedicated resources; for one iteration this
    is the cold-start latency of the pipeline.
    """
    if iterations < 1:
        raise AnalysisError("iterations must be >= 1")
    schedule = self_timed_schedule(graph, iterations=iterations)
    return max(end for _, end, __ in schedule)


def source_to_sink_latency(
    graph: SDFGraph,
    source: str,
    sink: str,
    measure_iterations: int = 10,
    warmup_iterations: int = 3,
) -> float:
    """Steady-state delay from ``source`` firing k to ``sink`` firing k.

    Both actors are indexed by *iteration*: the delay is measured from
    the start of the source's first firing of an iteration to the end of
    the sink's last firing of the same iteration, averaged over
    ``measure_iterations`` steady-state iterations.

    Raises
    ------
    AnalysisError
        On unknown actor names or a degenerate measurement window.
    """
    for name in (source, sink):
        if not graph.has_actor(name):
            raise AnalysisError(
                f"graph {graph.name!r} has no actor {name!r}"
            )
    if measure_iterations < 1 or warmup_iterations < 0:
        raise AnalysisError("invalid measurement window")
    q = repetition_vector(graph)
    total = warmup_iterations + measure_iterations
    schedule = self_timed_schedule(graph, iterations=total)

    source_starts = sorted(
        start for start, _, actor in schedule if actor == source
    )
    sink_ends = sorted(
        end for _, end, actor in schedule if actor == sink
    )
    latencies: List[float] = []
    for iteration in range(warmup_iterations, total):
        first_source = source_starts[iteration * q[source]]
        last_sink = sink_ends[(iteration + 1) * q[sink] - 1]
        latencies.append(last_sink - first_source)
    return sum(latencies) / len(latencies)


def actor_start_times(
    graph: SDFGraph, iterations: int = 1
) -> Dict[str, List[float]]:
    """Start times of every firing per actor over ``iterations``.

    Convenience for tests and examples that assert schedule structure.
    """
    schedule = self_timed_schedule(graph, iterations=iterations)
    starts: Dict[str, List[float]] = {a: [] for a in graph.actor_names}
    for start, _, actor in schedule:
        starts[actor].append(start)
    for values in starts.values():
        values.sort()
    return starts
