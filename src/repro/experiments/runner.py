"""The use-case sweep: the engine room of every evaluation artefact.

For each selected use-case the runner (a) simulates the use-case with the
discrete-event engine (the paper's POOSL reference numbers) and
(b) estimates every application's period with each analysis technique.
Table 1, Figure 6 and the timing comparison are all different summaries
of one :class:`SweepResult`.

The paper sweeps all 2^10 = 1024 use-cases with 500 000-cycle
simulations; exhaustive mode (``samples_per_size=None``) reproduces that,
while the default samples a deterministic subset per use-case size so the
benches complete in CI time.

Estimation runs through the batched
:meth:`~repro.core.estimator.ProbabilisticEstimator.estimate_many` API
on :mod:`repro.analysis_engine` engines (one set per waiting model so
the per-method timing comparison stays fair): the HSDF expansions and
solver structures are built once per method per sweep, and every
per-use-case estimate is a warm-started, weight-only solve.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis_engine import build_engines
from repro.core.estimator import EstimationResult, ProbabilisticEstimator
from repro.exceptions import ExperimentError
from repro.experiments.setup import BenchmarkSuite
from repro.platform.usecase import (
    DEFAULT_SWEEP_SEED,
    UseCase,
    sampled_use_cases_by_size,
)
from repro.simulation.engine import SimulationConfig, Simulator


@dataclass(frozen=True)
class SweepConfig:
    """Parameters of a use-case sweep.

    Attributes
    ----------
    methods:
        Waiting-model specifications (see
        :func:`repro.core.waiting.make_waiting_model`) to evaluate; the
        default is the paper's four techniques.
    target_iterations:
        Simulated iterations per application per use-case (the paper's
        500 000 cycles correspond to hundreds of iterations; 60 keeps the
        default sweep fast while the measured periods are stable to a few
        percent).
    samples_per_size:
        Use-cases sampled per cardinality (``None`` = exhaustive 2^N).
    seed:
        Seed for use-case sampling.
    fixed_point_iterations:
        Fig.-4 passes per estimate (1 = the paper's algorithm).
    arbitration:
        Simulator arbitration policy.
    warmup_fraction:
        Fraction of simulated iterations discarded before measuring.
    """

    methods: Tuple[str, ...] = (
        "worst_case",
        "composability",
        "fourth_order",
        "second_order",
    )
    target_iterations: int = 60
    samples_per_size: Optional[int] = 12
    seed: int = DEFAULT_SWEEP_SEED
    fixed_point_iterations: int = 1
    arbitration: str = "fcfs"
    warmup_fraction: float = 0.25


@dataclass(frozen=True)
class UseCaseRecord:
    """Everything measured for one use-case.

    ``simulated`` / ``simulated_worst`` map application name to the mean
    / worst observed period; ``estimates`` maps method name to the
    per-application period estimates; ``*_seconds`` carry wall-clock
    costs for the timing comparison.
    """

    use_case: UseCase
    simulated: Dict[str, float]
    simulated_worst: Dict[str, float]
    estimates: Dict[str, Dict[str, float]]
    isolation: Dict[str, float]
    simulation_seconds: float
    estimation_seconds: Dict[str, float]


@dataclass
class SweepResult:
    """All records of one sweep plus the configuration that made them."""

    records: List[UseCaseRecord]
    methods: Tuple[str, ...]
    config: SweepConfig

    def records_of_size(self, size: int) -> List[UseCaseRecord]:
        return [r for r in self.records if r.use_case.size == size]

    @property
    def use_case_count(self) -> int:
        return len(self.records)

    def total_simulation_seconds(self) -> float:
        return sum(r.simulation_seconds for r in self.records)

    def total_estimation_seconds(self, method: str) -> float:
        return sum(r.estimation_seconds[method] for r in self.records)


def select_use_cases(
    application_names: Sequence[str],
    samples_per_size: Optional[int],
    seed: int,
) -> List[UseCase]:
    """The use-cases of a sweep: exhaustive or per-size samples."""
    return sampled_use_cases_by_size(
        application_names, samples_per_size=samples_per_size, seed=seed
    )


def run_sweep(
    suite: BenchmarkSuite,
    config: Optional[SweepConfig] = None,
    use_cases: Optional[Sequence[UseCase]] = None,
) -> SweepResult:
    """Simulate and estimate every selected use-case.

    Parameters
    ----------
    suite:
        The benchmark suite (applications + platform + mapping).
    config:
        Sweep parameters (default :class:`SweepConfig`).
    use_cases:
        Explicit use-case list; overrides the sampling configuration.
    """
    cfg = config if config is not None else SweepConfig()
    if not cfg.methods:
        raise ExperimentError("sweep needs at least one estimation method")
    names = suite.application_names
    selected = (
        list(use_cases)
        if use_cases is not None
        else select_use_cases(names, cfg.samples_per_size, cfg.seed)
    )

    # One engine set per waiting model: engines could be shared across
    # methods, but the timing table compares per-method estimation cost,
    # and a shared response-time memo would bill every overlap to
    # whichever method ran first.  Per-method engines keep the
    # comparison fair while each method stays incremental across its
    # own use-cases.
    estimators = {
        method: ProbabilisticEstimator(
            list(suite.graphs),
            mapping=suite.mapping,
            waiting_model=method,
            engines=build_engines(list(suite.graphs)),
        )
        for method in cfg.methods
    }
    isolation = suite.isolation_periods()

    # Batched estimation first (the cheap part), simulation per record
    # afterwards; each EstimationResult carries its own wall-clock.
    estimates_by_method: Dict[str, List[EstimationResult]] = {
        method: estimator.estimate_many(
            selected, iterations=cfg.fixed_point_iterations
        )
        for method, estimator in estimators.items()
    }

    records: List[UseCaseRecord] = []
    for index, use_case in enumerate(selected):
        active = use_case.select(list(suite.graphs))
        sim_started = _time.perf_counter()
        result = Simulator(
            active,
            mapping=suite.mapping,
            config=SimulationConfig(
                arbitration=cfg.arbitration,
                target_iterations=cfg.target_iterations,
                warmup_fraction=cfg.warmup_fraction,
            ),
        ).run()
        sim_seconds = _time.perf_counter() - sim_started

        estimates: Dict[str, Dict[str, float]] = {}
        estimation_seconds: Dict[str, float] = {}
        for method in cfg.methods:
            estimate = estimates_by_method[method][index]
            estimation_seconds[method] = estimate.analysis_seconds
            estimates[method] = dict(estimate.periods)

        records.append(
            UseCaseRecord(
                use_case=use_case,
                simulated={
                    name: result.period_of(name) for name in use_case
                },
                simulated_worst={
                    name: result.worst_period_of(name) for name in use_case
                },
                estimates=estimates,
                isolation={name: isolation[name] for name in use_case},
                simulation_seconds=sim_seconds,
                estimation_seconds=estimation_seconds,
            )
        )
    return SweepResult(records=records, methods=cfg.methods, config=cfg)
