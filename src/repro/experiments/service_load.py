"""Seeded async load generator for the estimation service.

Answers the serving layer's two operational questions — how many
queries per second does one server sustain, and what latency do clients
see — with a fully in-process, reproducible experiment: an
:class:`~repro.service.server.EstimationServer` on an ephemeral local
port, ``clients`` concurrent :class:`~repro.service.client
.ServiceClient` connections, each issuing ``queries_per_client``
questions drawn from a per-client seeded RNG over the gallery's
non-empty use-cases.  Every query's wall-clock latency is recorded;
the report carries throughput, latency percentiles and the server-side
micro-batching/cache/shedding counters, so one run shows *why* the
throughput number is what it is.

Usage (module or CLI)::

    from repro.experiments.service_load import LoadConfig, run_load
    print(run_load(LoadConfig(clients=16)).render())

    PYTHONPATH=src python -m repro.experiments.service_load --clients 16
"""

from __future__ import annotations

import argparse
import asyncio
import random
import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ExperimentError, ServiceError
from repro.experiments.reporting import render_table
from repro.runtime.service import GallerySpec
from repro.service.cache import ResultCache
from repro.service.client import ServiceClient
from repro.service.pool import EnginePool
from repro.service.server import EstimationServer


@dataclass(frozen=True)
class LoadConfig:
    """One load-generation scenario (fully deterministic per seed,
    modulo wall-clock noise in the measured latencies)."""

    clients: int = 8
    queries_per_client: int = 32
    seed: int = 7
    gallery: GallerySpec = field(default_factory=GallerySpec)
    model: str = "second_order"
    method: str = "mcr"
    batch_window: float = 0.002
    max_batch: int = 128
    max_pending: int = 1024
    shed_policy: str = "reject"
    cache_entries: int = 4096
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ExperimentError(f"clients must be >= 1, got {self.clients}")
        if self.queries_per_client < 1:
            raise ExperimentError(
                f"queries_per_client must be >= 1, "
                f"got {self.queries_per_client}"
            )


@dataclass(frozen=True)
class LoadReport:
    """What the generator measured, client- and server-side."""

    queries: int
    errors: int
    elapsed_seconds: float
    queries_per_second: float
    latency_p50_ms: float
    latency_p90_ms: float
    latency_p99_ms: float
    mean_batch: float
    max_batch: int
    cache_hits: int
    shed: int
    degraded: int
    config: LoadConfig

    def render(self) -> str:
        rows = [
            ["clients", self.config.clients],
            ["queries", self.queries],
            ["errors", self.errors],
            ["elapsed", f"{self.elapsed_seconds * 1e3:.0f} ms"],
            ["queries/sec", f"{self.queries_per_second:.0f}"],
            ["latency p50", f"{self.latency_p50_ms:.2f} ms"],
            ["latency p90", f"{self.latency_p90_ms:.2f} ms"],
            ["latency p99", f"{self.latency_p99_ms:.2f} ms"],
            ["mean batch", f"{self.mean_batch:.1f}"],
            ["max batch", self.max_batch],
            ["cache hits", self.cache_hits],
            ["shed", self.shed],
            ["degraded", self.degraded],
        ]
        return render_table(
            ["metric", "value"],
            rows,
            title=(
                f"Service load ({self.config.model}, gallery "
                f"{self.config.gallery.label()}, seed "
                f"{self.config.seed})"
            ),
        )


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not samples:
        raise ExperimentError("percentile of an empty sample set")
    if not 0.0 <= fraction <= 1.0:
        raise ExperimentError(f"fraction must be within [0, 1], got {fraction}")
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[rank]


def _client_plan(config: LoadConfig, client_index: int) -> List[Tuple[str, ...]]:
    """The seeded use-case sequence one client will ask about."""
    names = config.gallery.application_names()
    rng = random.Random(f"{config.seed}:{client_index}")
    plan: List[Tuple[str, ...]] = []
    for _ in range(config.queries_per_client):
        size = rng.randint(1, len(names))
        plan.append(tuple(sorted(rng.sample(names, size))))
    return plan


async def _run_client(
    config: LoadConfig,
    address: Tuple[str, int],
    client_index: int,
    latencies: List[float],
    errors: List[str],
) -> None:
    gallery = {
        "kind": config.gallery.kind,
        "seed": config.gallery.seed,
        "applications": config.gallery.application_count,
    }
    client = await ServiceClient.connect(address[0], address[1])
    try:
        for use_case in _client_plan(config, client_index):
            started = _time.perf_counter()
            try:
                await client.estimate(
                    use_case,
                    gallery=gallery,
                    model=config.model,
                    method=config.method,
                )
            except ServiceError as error:
                errors.append(str(error))
                continue
            latencies.append(_time.perf_counter() - started)
    finally:
        await client.aclose()


async def _run(config: LoadConfig) -> LoadReport:
    server = EstimationServer(
        pool=EnginePool(backend=config.backend),
        cache=ResultCache(config.cache_entries),
        batch_window=config.batch_window,
        max_batch=config.max_batch,
        max_pending=config.max_pending,
        shed_policy=config.shed_policy,
    )
    address = await server.start()
    latencies: List[float] = []
    errors: List[str] = []
    started = _time.perf_counter()
    try:
        await asyncio.gather(
            *[
                _run_client(config, address, index, latencies, errors)
                for index in range(config.clients)
            ]
        )
        elapsed = _time.perf_counter() - started
        stats = server.snapshot()
    finally:
        await server.aclose()
    queries = len(latencies)
    cache: Dict[str, object] = stats["cache"]  # type: ignore[assignment]

    def latency_ms(fraction: float) -> float:
        # All-error runs have no latencies; the report must still come
        # back (errors=N is the finding, not a crash).
        return percentile(latencies, fraction) * 1e3 if latencies else 0.0

    return LoadReport(
        queries=queries,
        errors=len(errors),
        elapsed_seconds=elapsed,
        queries_per_second=queries / elapsed if elapsed > 0 else 0.0,
        latency_p50_ms=latency_ms(0.50),
        latency_p90_ms=latency_ms(0.90),
        latency_p99_ms=latency_ms(0.99),
        mean_batch=float(stats["mean_batch"]),  # type: ignore[arg-type]
        max_batch=int(stats["max_batch"]),  # type: ignore[arg-type]
        cache_hits=int(cache["hits"]),  # type: ignore[arg-type]
        shed=int(stats["shed"]),  # type: ignore[arg-type]
        degraded=int(stats["degraded"]),  # type: ignore[arg-type]
        config=config,
    )


def run_load(config: Optional[LoadConfig] = None) -> LoadReport:
    """Run one scenario end to end (spawns its own event loop)."""
    return asyncio.run(_run(config if config is not None else LoadConfig()))


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="seeded async load generator for 'repro serve'"
    )
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--queries", type=int, default=32)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--applications", type=int, default=6)
    parser.add_argument("--model", default="second_order")
    parser.add_argument("--batch-window", type=float, default=2.0, metavar="MS")
    parser.add_argument("--cache-size", type=int, default=4096)
    parser.add_argument(
        "--shed-policy",
        choices=("reject", "evict", "downgrade"),
        default="reject",
    )
    parser.add_argument("--backend", choices=("auto", "numpy", "python"), default=None)
    arguments = parser.parse_args(argv)
    report = run_load(
        LoadConfig(
            clients=arguments.clients,
            queries_per_client=arguments.queries,
            seed=arguments.seed,
            gallery=GallerySpec(
                application_count=arguments.applications
            ),
            model=arguments.model,
            batch_window=arguments.batch_window / 1e3,
            cache_entries=arguments.cache_size,
            shed_policy=arguments.shed_policy,
            backend=arguments.backend,
        )
    )
    print(report.render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
