"""Seeded async load generator for the estimation service.

Answers the serving layer's two operational questions — how many
queries per second does one server sustain, and what latency do clients
see — with a fully in-process, reproducible experiment: an
:class:`~repro.service.server.EstimationServer` on an ephemeral local
port, ``clients`` concurrent :class:`~repro.service.client
.ServiceClient` connections, each issuing ``queries_per_client``
questions drawn from a per-client seeded RNG over the gallery's
non-empty use-cases.  Client-observed latencies land in a telemetry
:class:`~repro.telemetry.Histogram` (the same instrument family the
server exposes), so the latency percentiles of the report, the
``metrics`` exposition and any scrape all read one source of truth.
The report carries throughput, latency percentiles and the server-side
micro-batching/cache/shedding counters, so one run shows *why* the
throughput number is what it is.

Observability hooks mirror ``repro serve``: ``metrics_port`` exposes
the merged exposition over HTTP ``GET /metrics`` while the run is
live (and the report keeps the text a real scrape returned),
``trace_export`` writes the server's span timeline as Chrome-trace
JSON, ``span_log`` streams finished spans as JSON lines, and
``metrics_output`` saves the final exposition to a file.

Usage (module or CLI)::

    from repro.experiments.service_load import LoadConfig, run_load
    print(run_load(LoadConfig(clients=16)).render())

    PYTHONPATH=src python -m repro.experiments.service_load --clients 16
"""

from __future__ import annotations

import argparse
import asyncio
import random
import time as _time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ExperimentError, ServiceError
from repro.experiments.reporting import render_table
from repro.runtime.service import GallerySpec
from repro.service.cache import ResultCache
from repro.service.client import ServiceClient
from repro.service.pool import EnginePool
from repro.service.server import EstimationServer
from repro.telemetry import (
    Histogram,
    JsonLinesSpanSink,
    MetricsRegistry,
    Tracer,
    log_buckets,
    start_metrics_endpoint,
    write_chrome_trace,
)

#: Client-side latency bounds: 10 µs .. 10 s, four buckets per decade —
#: tight enough that nearest-rank quantiles off the buckets track the
#: exact-sample percentiles the report used to hand-roll.
LATENCY_BUCKETS = log_buckets(1e-5, 10.0)


@dataclass(frozen=True)
class LoadConfig:
    """One load-generation scenario (fully deterministic per seed,
    modulo wall-clock noise in the measured latencies)."""

    clients: int = 8
    queries_per_client: int = 32
    seed: int = 7
    gallery: GallerySpec = field(default_factory=GallerySpec)
    model: str = "second_order"
    method: str = "mcr"
    batch_window: float = 0.002
    max_batch: int = 128
    max_pending: int = 1024
    shed_policy: str = "reject"
    cache_entries: int = 4096
    backend: Optional[str] = None
    metrics_port: Optional[int] = None
    trace_export: Optional[str] = None
    span_log: Optional[str] = None
    metrics_output: Optional[str] = None

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ExperimentError(f"clients must be >= 1, got {self.clients}")
        if self.queries_per_client < 1:
            raise ExperimentError(
                f"queries_per_client must be >= 1, "
                f"got {self.queries_per_client}"
            )


@dataclass(frozen=True)
class LoadReport:
    """What the generator measured, client- and server-side."""

    queries: int
    errors: int
    elapsed_seconds: float
    queries_per_second: float
    latency_p50_ms: float
    latency_p90_ms: float
    latency_p99_ms: float
    mean_batch: float
    max_batch: int
    cache_hits: int
    shed: int
    degraded: int
    config: LoadConfig
    telemetry: Dict[str, object] = field(default_factory=dict)
    exposition: str = ""
    scraped_exposition: Optional[str] = None

    def render(self) -> str:
        rows = [
            ["clients", self.config.clients],
            ["queries", self.queries],
            ["errors", self.errors],
            ["elapsed", f"{self.elapsed_seconds * 1e3:.0f} ms"],
            ["queries/sec", f"{self.queries_per_second:.0f}"],
            ["latency p50", f"{self.latency_p50_ms:.2f} ms"],
            ["latency p90", f"{self.latency_p90_ms:.2f} ms"],
            ["latency p99", f"{self.latency_p99_ms:.2f} ms"],
            ["mean batch", f"{self.mean_batch:.1f}"],
            ["max batch", self.max_batch],
            ["cache hits", self.cache_hits],
            ["shed", self.shed],
            ["degraded", self.degraded],
        ]
        return render_table(
            ["metric", "value"],
            rows,
            title=(
                f"Service load ({self.config.model}, gallery "
                f"{self.config.gallery.label()}, seed "
                f"{self.config.seed})"
            ),
        )


def _client_plan(config: LoadConfig, client_index: int) -> List[Tuple[str, ...]]:
    """The seeded use-case sequence one client will ask about."""
    names = config.gallery.application_names()
    rng = random.Random(f"{config.seed}:{client_index}")
    plan: List[Tuple[str, ...]] = []
    for _ in range(config.queries_per_client):
        size = rng.randint(1, len(names))
        plan.append(tuple(sorted(rng.sample(names, size))))
    return plan


async def _run_client(
    config: LoadConfig,
    address: Tuple[str, int],
    client_index: int,
    latency: Histogram,
    errors: List[str],
) -> None:
    gallery = {
        "kind": config.gallery.kind,
        "seed": config.gallery.seed,
        "applications": config.gallery.application_count,
    }
    client = await ServiceClient.connect(address[0], address[1])
    try:
        for query_index, use_case in enumerate(
            _client_plan(config, client_index)
        ):
            started = _time.perf_counter()
            try:
                await client.estimate(
                    use_case,
                    gallery=gallery,
                    model=config.model,
                    method=config.method,
                    trace=f"load-{config.seed}-{client_index}-{query_index}",
                )
            except ServiceError as error:
                errors.append(str(error))
                continue
            latency.observe(_time.perf_counter() - started)
    finally:
        await client.aclose()


async def _scrape_http(host: str, port: int) -> str:
    """One in-loop ``GET /metrics`` against the HTTP endpoint — what an
    external scraper would see, fetched without blocking the loop."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            b"GET /metrics HTTP/1.0\r\nHost: " + host.encode() + b"\r\n\r\n"
        )
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        await writer.wait_closed()
    head, _, body = raw.partition(b"\r\n\r\n")
    status = head.split(b"\r\n", 1)[0]
    if b"200" not in status:
        raise ExperimentError(
            f"metrics endpoint answered {status.decode(errors='replace')!r}"
        )
    return body.decode("utf-8")


async def _run(config: LoadConfig) -> LoadReport:
    registry = MetricsRegistry(enabled=True)
    tracer = Tracer()
    span_sink = None
    if config.span_log:
        span_sink = JsonLinesSpanSink(config.span_log)
        tracer.set_sink(span_sink)
    # The client-side latency histogram lives in the *server's* registry
    # on purpose: one exposition then carries the whole story — what
    # clients saw next to what the batcher did.
    latency = registry.histogram(
        "repro_load_latency_seconds",
        "Client-observed estimate latency of the load generator",
        buckets=LATENCY_BUCKETS,
        always=True,
    )
    server = EstimationServer(
        pool=EnginePool(backend=config.backend, registry=registry),
        cache=ResultCache(config.cache_entries, registry=registry),
        batch_window=config.batch_window,
        max_batch=config.max_batch,
        max_pending=config.max_pending,
        shed_policy=config.shed_policy,
        registry=registry,
        tracer=tracer,
    )
    address = await server.start()
    metrics_server = None
    scraped: Optional[str] = None
    errors: List[str] = []
    try:
        if config.metrics_port is not None:
            metrics_server, metrics_address = await start_metrics_endpoint(
                server.render_metrics, port=config.metrics_port
            )
        started = _time.perf_counter()
        await asyncio.gather(
            *[
                _run_client(config, address, index, latency, errors)
                for index in range(config.clients)
            ]
        )
        elapsed = _time.perf_counter() - started
        if metrics_server is not None:
            scraped = await _scrape_http(*metrics_address)
        stats = server.snapshot()
        telemetry = server.metrics_snapshot()
        exposition = server.render_metrics()
    finally:
        await server.aclose()
        if metrics_server is not None:
            metrics_server.close()
            await metrics_server.wait_closed()
        if config.trace_export:
            write_chrome_trace(config.trace_export, spans=server.tracer.spans())
        if span_sink is not None:
            span_sink.close()
    if config.metrics_output:
        Path(config.metrics_output).write_text(
            scraped if scraped is not None else exposition,
            encoding="utf-8",
        )
    queries = latency.count
    cache: Dict[str, object] = stats["cache"]  # type: ignore[assignment]

    def latency_ms(fraction: float) -> float:
        # All-error runs have no latencies; the report must still come
        # back (errors=N is the finding, not a crash).
        return latency.quantile(fraction) * 1e3 if queries else 0.0

    return LoadReport(
        queries=queries,
        errors=len(errors),
        elapsed_seconds=elapsed,
        queries_per_second=queries / elapsed if elapsed > 0 else 0.0,
        latency_p50_ms=latency_ms(0.50),
        latency_p90_ms=latency_ms(0.90),
        latency_p99_ms=latency_ms(0.99),
        mean_batch=float(stats["mean_batch"]),  # type: ignore[arg-type]
        max_batch=int(stats["max_batch"]),  # type: ignore[arg-type]
        cache_hits=int(cache["hits"]),  # type: ignore[arg-type]
        shed=int(stats["shed"]),  # type: ignore[arg-type]
        degraded=int(stats["degraded"]),  # type: ignore[arg-type]
        config=config,
        telemetry=telemetry,
        exposition=exposition,
        scraped_exposition=scraped,
    )


def run_load(config: Optional[LoadConfig] = None) -> LoadReport:
    """Run one scenario end to end (spawns its own event loop)."""
    return asyncio.run(_run(config if config is not None else LoadConfig()))


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="seeded async load generator for 'repro serve'"
    )
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--queries", type=int, default=32)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--applications", type=int, default=6)
    parser.add_argument("--model", default="second_order")
    parser.add_argument("--batch-window", type=float, default=2.0, metavar="MS")
    parser.add_argument("--cache-size", type=int, default=4096)
    parser.add_argument(
        "--shed-policy",
        choices=("reject", "evict", "downgrade"),
        default="reject",
    )
    parser.add_argument("--backend", choices=("auto", "numpy", "python"), default=None)
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="expose HTTP GET /metrics during the run (0 = ephemeral)",
    )
    parser.add_argument(
        "--trace-export",
        default=None,
        metavar="PATH",
        help="write the server's spans as Chrome-trace JSON",
    )
    parser.add_argument(
        "--span-log",
        default=None,
        metavar="PATH",
        help="stream finished spans to PATH as JSON lines",
    )
    parser.add_argument(
        "--metrics-output",
        default=None,
        metavar="PATH",
        help="save the final Prometheus exposition to PATH",
    )
    arguments = parser.parse_args(argv)
    report = run_load(
        LoadConfig(
            clients=arguments.clients,
            queries_per_client=arguments.queries,
            seed=arguments.seed,
            gallery=GallerySpec(
                application_count=arguments.applications
            ),
            model=arguments.model,
            batch_window=arguments.batch_window / 1e3,
            cache_entries=arguments.cache_size,
            shed_policy=arguments.shed_policy,
            backend=arguments.backend,
            metrics_port=arguments.metrics_port,
            trace_export=arguments.trace_export,
            span_log=arguments.span_log,
            metrics_output=arguments.metrics_output,
        )
    )
    print(report.render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
